"""Wire-format generation 2: delta-gossip codecs and cross-version rules.

Generation 2 added the delta-gossip family (``DeltaSnapshot``,
``DeltaGossipMsg``, ``TableGossipAck``).  The compatibility contract pinned
here, spelled out in ``docs/WIRE_FORMAT.md``:

* generation-1 messages still encode as byte-identical generation-1 frames,
  so a generation-1 decoder keeps accepting them;
* generation-2 messages announce themselves with version byte 2 and are
  rejected by a generation-1 decoder (``decode(..., max_version=1)``) with
  :class:`UnsupportedVersionError` — dropped like a lost message by the
  realexec transport, which is what makes rolling upgrades safe;
* a generation-1 frame carrying a generation-2 tag is corruption, not a
  valid message;
* round-trips hold for every new payload, and the analytic ``wire_size()``
  model stays an upper bound on the encoded bytes within the documented
  name-length limits.
"""

import random

import pytest

from repro import wire
from repro.core.encoding import PathCode
from repro.core.work_report import BestSolution, DeltaSnapshot, table_digest
from repro.distributed.messages import DeltaGossipMsg, TableGossipAck
from repro.realexec.transport import Envelope, decode_envelope, encode_envelope
from repro.wire.frame import FRAME_VERSION, FRAME_VERSION_V1, Tag


def rand_code(rng, max_depth=20, max_var=4000):
    depth = rng.randrange(0, max_depth)
    return PathCode(tuple((rng.randrange(max_var), rng.randrange(2)) for _ in range(depth)))


def rand_delta(rng, n_codes=None):
    n = rng.randrange(0, 25) if n_codes is None else n_codes
    codes = frozenset(rand_code(rng) for _ in range(n))
    return DeltaSnapshot(
        sender=f"worker-{rng.randrange(100):02d}",
        codes=codes,
        full_digest=table_digest(codes),
        sequence=rng.randrange(1 << 16),
        best=BestSolution(value=rng.uniform(-1e6, 1e6), origin=f"w{rng.randrange(10)}")
        if rng.random() < 0.5
        else BestSolution(),
    )


def rand_ack(rng):
    return TableGossipAck(
        sender=f"worker-{rng.randrange(100):02d}",
        digest=rng.getrandbits(64),
        table_digest=rng.getrandbits(64),
        best=BestSolution(value=rng.uniform(-1e6, 1e6)) if rng.random() < 0.5 else BestSolution(),
    )


class TestGeneration2RoundTrips:
    @pytest.mark.parametrize("seed", range(40))
    def test_delta_snapshot_round_trip(self, seed):
        rng = random.Random(seed)
        delta = rand_delta(rng)
        data = wire.encode(delta)
        assert data[1] == 2  # generation-2 frame
        decoded = wire.decode(data)
        assert decoded == delta
        assert decoded.full_digest == delta.full_digest

    @pytest.mark.parametrize("seed", range(20))
    def test_delta_gossip_msg_and_ack_round_trip(self, seed):
        rng = random.Random(1000 + seed)
        for msg in (DeltaGossipMsg(rand_delta(rng)), rand_ack(rng)):
            assert wire.decode(wire.encode(msg)) == msg

    def test_empty_and_adversarial_deltas(self):
        rng = random.Random(7)
        empty = DeltaSnapshot(sender="w", codes=frozenset())
        assert wire.decode(wire.encode(empty)) == empty
        deep = DeltaSnapshot(
            sender="w",
            codes=frozenset({PathCode(tuple((i, i % 2) for i in range(200)))}),
            full_digest=(1 << 64) - 1,
        )
        assert wire.decode(wire.encode(deep)) == deep

    @pytest.mark.parametrize("seed", range(20))
    def test_model_upper_bound_for_short_names(self, seed):
        """Documented bound: encoded ≤ analytic model (names ≤ 21 bytes)."""
        rng = random.Random(2000 + seed)
        delta = rand_delta(rng)
        assert wire.encoded_size(delta) <= delta.wire_size()
        ack = rand_ack(rng)
        assert wire.encoded_size(ack) <= ack.wire_size()
        msg = DeltaGossipMsg(delta)
        assert wire.encoded_size(msg) <= msg.wire_size()


class TestCrossVersionRules:
    def test_generation1_messages_still_stamp_version_1(self):
        from repro.core.work_report import CompletedTableSnapshot, WorkReport
        from repro.distributed.messages import WorkRequest

        rng = random.Random(3)
        for msg in (
            WorkRequest(requester="w1"),
            WorkReport(sender="w1", codes=frozenset({rand_code(rng)})),
            CompletedTableSnapshot(sender="w1", codes=frozenset()),
        ):
            data = wire.encode(msg)
            assert data[1] == FRAME_VERSION_V1
            # A generation-1 decoder accepts them unchanged.
            assert wire.decode(data, max_version=1) == msg

    def test_generation1_decoder_rejects_generation2_frames(self):
        rng = random.Random(4)
        for msg in (rand_delta(rng), rand_ack(rng), DeltaGossipMsg(rand_delta(rng))):
            data = wire.encode(msg)
            assert wire.decode(data) == msg  # current decoder: fine
            with pytest.raises(wire.UnsupportedVersionError):
                wire.decode(data, max_version=1)

    def test_future_generation_rejected(self):
        data = bytearray(wire.encode(TableGossipAck(sender="w", digest=1)))
        data[1] = FRAME_VERSION + 1
        with pytest.raises(wire.UnsupportedVersionError):
            wire.decode(bytes(data))

    def test_v1_frame_with_v2_tag_is_corruption(self):
        """Downgrading only the version byte must not smuggle a v2 message."""
        data = bytearray(wire.encode(TableGossipAck(sender="w", digest=9)))
        data[1] = FRAME_VERSION_V1
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(data))

    def test_tag_values_are_frozen(self):
        """Generation-2 tags sit in the reserved core range, below 16."""
        assert int(Tag.DELTA_SNAPSHOT) == 13
        assert int(Tag.DELTA_GOSSIP_MSG) == 14
        assert int(Tag.TABLE_GOSSIP_ACK) == 15
        assert int(Tag.EXTENSION_BASE) == 16


class TestMixedVersionEnvelopes:
    """The realexec envelope is generation 1, so routing works across
    generations; only the *nested payload* is version-gated."""

    def test_v1_payload_reaches_v1_and_v2_receivers(self):
        from repro.distributed.messages import WorkRequest

        envelope = Envelope("a", "b", WorkRequest(requester="a"))
        data = encode_envelope(envelope)
        for max_version in (1, FRAME_VERSION):
            decoded = decode_envelope(data, max_version=max_version)
            assert decoded.payload == envelope.payload

    def test_v2_payload_rejected_by_v1_receiver_only(self):
        rng = random.Random(5)
        envelope = Envelope("a", "b", DeltaGossipMsg(rand_delta(rng, n_codes=3)))
        data = encode_envelope(envelope)
        assert decode_envelope(data).payload == envelope.payload
        with pytest.raises(wire.UnsupportedVersionError):
            decode_envelope(data, max_version=1)

    def test_routing_header_readable_regardless_of_payload_generation(self):
        from repro.realexec.transport import envelope_route

        rng = random.Random(6)
        envelope = Envelope("sender-x", "dest-y", rand_delta(rng, n_codes=2))
        assert envelope_route(encode_envelope(envelope)) == ("sender-x", "dest-y")
