"""Validation of the analytic ``wire_size()`` model against real encodings.

The simulator's latency and traffic accounting charge every payload its
analytic ``wire_size()``; the ``realexec`` backend ships the same payloads
through the :mod:`repro.wire` codec.  These tests pin the documented
relationship between the two (see ``docs/WIRE_FORMAT.md``, "Relation to the
analytic byte model"):

1. **Upper bound** — for every B&B protocol message whose sender/origin
   names are at most 21 UTF-8 bytes and whose variable indices are below
   2**13, the framed encoding is never larger than the analytic model:
   ``encoded_size(msg) <= msg.wire_size()``.  The model is conservative, so
   simulated latencies and traffic totals over-charge, never under-charge.
2. **Tracking bound** — for *prefix-sparse* payloads (random codes, little
   front-coding reuse) the model is within a constant factor of reality:
   ``msg.wire_size() <= 4 * encoded_size(msg) + 64``.
3. **Front-coding dividend** — for sibling-dense tables (the paper's
   contracted completed tables) the real encoding beats the model by a wide
   margin; the model stays an upper bound but is *not* tight there, which is
   the conservative direction.
"""

import random

import pytest

from repro import wire
from repro.core.codeset import CodeSet
from repro.core.encoding import ROOT, PathCode
from repro.core.work_report import BestSolution, CompletedTableSnapshot, WorkReport
from repro.distributed.messages import (
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from repro.gossip.gossip_server import ViewGossip
from repro.gossip.membership import MembershipView
from repro.wire import codec

#: Documented limits under which the upper bound holds.
MAX_NAME_BYTES = 21
MAX_VARIABLE = 2**13
#: Documented tracking-bound constants for prefix-sparse payloads.
TRACK_FACTOR = 4
TRACK_SLACK = 64


def rand_code(rng, max_depth=50):
    depth = rng.randrange(0, max_depth)
    return PathCode(tuple((rng.randrange(MAX_VARIABLE), rng.randrange(2)) for _ in range(depth)))


def sample_messages(seed):
    rng = random.Random(seed)
    best = BestSolution(value=rng.uniform(-1e6, 1e6), origin=f"w{rng.randrange(100):02d}")
    report = WorkReport(
        sender=f"worker-{rng.randrange(100):02d}",
        codes=frozenset(rand_code(rng) for _ in range(rng.randrange(0, 50))),
        best=best,
        sequence=rng.randrange(1000),
    )
    snapshot = CompletedTableSnapshot(
        sender=f"w{rng.randrange(100)}",
        codes=frozenset(rand_code(rng) for _ in range(rng.randrange(0, 150))),
        best=best,
    )
    return [
        report,
        snapshot,
        WorkReportMsg(report),
        TableGossipMsg(snapshot),
        WorkRequest(requester="worker-00", best=best),
        WorkGrant(donor="worker-01", codes=tuple(rand_code(rng) for _ in range(5)), best=best),
        WorkDenied(donor="worker-02", best=best),
        WorkRequest(requester="w"),  # minimal message, empty incumbent
        WorkReport(sender="w", codes=frozenset()),  # empty report
        WorkReport(sender="w", codes=frozenset([ROOT])),  # termination report
    ]


class TestModelUpperBound:
    @pytest.mark.parametrize("seed", range(10))
    def test_encoded_never_exceeds_model(self, seed):
        for msg in sample_messages(seed):
            assert wire.encoded_size(msg) <= msg.wire_size(), msg

    def test_path_code_body_within_model(self):
        # Bare codes are compared at body level (the analytic model has no
        # per-message frame concept for a lone code).
        rng = random.Random(5)
        codes = [ROOT] + [rand_code(rng, max_depth=120) for _ in range(200)]
        for code in codes:
            body = bytearray()
            codec.write_path_code(body, code)
            assert len(body) <= code.wire_size()

    def test_view_gossip_within_model_for_short_names(self):
        # The digest model charges 14 bytes per entry (it assumes hashed
        # names); the real codec ships full names, so the bound is documented
        # for names of at most 4 UTF-8 bytes.
        view = MembershipView("s0", now=0.0, is_gossip_server=True)
        for i in range(30):
            view.heard_from(f"w{i}", now=float(i))
        gossip = ViewGossip("s0", view.digest())
        assert wire.encoded_size(gossip) <= gossip.wire_size()
        assert wire.encoded_size(gossip.digest) <= view.digest_wire_size()


class TestModelTrackingBound:
    @pytest.mark.parametrize("seed", range(10))
    def test_model_within_constant_factor_for_prefix_sparse(self, seed):
        for msg in sample_messages(seed):
            encoded = wire.encoded_size(msg)
            assert msg.wire_size() <= TRACK_FACTOR * encoded + TRACK_SLACK, msg


class TestFrontCodingDividend:
    def test_sibling_dense_snapshot_beats_model(self):
        # A contracted frontier of a perfect depth-8 subtree: 256 sibling
        # codes that differ only in their last keys.  Front-coding collapses
        # the shared prefixes; the analytic model (3 bytes per decision)
        # over-charges by at least 3x.
        depth = 8
        codes = [
            PathCode(tuple((level, (index >> level) & 1) for level in range(depth)))
            for index in range(2**depth)
        ]
        snapshot = CompletedTableSnapshot(sender="w0", codes=frozenset(codes))
        encoded = wire.encoded_size(snapshot)
        assert encoded * 3 <= snapshot.wire_size()

    def test_contracted_table_round_trips_through_snapshot(self):
        # End-to-end: a real contracted table, snapshotted, encoded, decoded,
        # rebuilt — the rebuilt table must cover exactly the same codes.
        rng = random.Random(12)
        table = CodeSet()
        frontier = [ROOT]
        for _ in range(300):
            node = frontier.pop(rng.randrange(len(frontier)))
            if node.depth < 12 and rng.random() < 0.7:
                frontier.append(node.child(node.depth, 0))
                frontier.append(node.child(node.depth, 1))
            else:
                table.add(node)
            if not frontier:
                break
        snapshot = CompletedTableSnapshot(sender="w", codes=table.codes())
        decoded = wire.decode(wire.encode(snapshot))
        rebuilt = CodeSet(decoded.codes)
        assert rebuilt.codes() == table.codes()


class TestAnalysisWireColumns:
    def test_wire_comparison_rows_columns_and_ratios(self):
        from repro.analysis.tables import WIRE_COLUMNS, format_wire_table, wire_comparison_rows

        msgs = sample_messages(3)[:4]
        rows = wire_comparison_rows(msgs)
        assert len(rows) == 4
        for row in rows:
            assert set(WIRE_COLUMNS) <= set(row.keys())
            assert row["encoded_bytes"] <= row["model_bytes"]
            # Pickle hauls class metadata and per-object overhead; the codec
            # must beat it on every protocol payload.
            assert row["pickle_over_encoded"] > 1.0
        rows = wire_comparison_rows(msgs[:1], labels=["my-report"])
        assert rows[0]["payload"] == "my-report"
        text = format_wire_table(msgs)
        assert "encoded_bytes" in text and "pickle_bytes" in text

    def test_message_kind_labels(self):
        from repro.analysis.tables import wire_comparison_rows

        rows = wire_comparison_rows(
            [WorkReportMsg(WorkReport(sender="w", codes=frozenset()))]
        )
        assert rows[0]["payload"] == "work_report"
