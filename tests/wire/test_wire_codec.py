"""Property tests for the binary wire codec: round trips and rejection.

Seeded random generators build protocol payloads (including adversarially
deep, empty and wide-variable codes) and assert ``decode(encode(x)) == x``;
a second family of tests asserts that truncated or corrupted frames are
always rejected with :class:`~repro.wire.WireFormatError`, never decoded
into a wrong message or an unhandled low-level exception.
"""

import random

import pytest

from repro import wire
from repro.core.encoding import ROOT, PathCode
from repro.core.work_report import BestSolution, CompletedTableSnapshot, WorkReport
from repro.distributed.messages import (
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from repro.gossip.gossip_server import JoinAnnouncement, ViewGossip
from repro.wire import varint
from repro.wire.frame import FRAME_MAGIC, Tag


# ---------------------------------------------------------------------- #
# Seeded payload generators
# ---------------------------------------------------------------------- #
def rand_code(rng, max_depth=60, max_var=5000):
    depth = rng.randrange(0, max_depth)
    return PathCode(tuple((rng.randrange(max_var), rng.randrange(2)) for _ in range(depth)))


def rand_best(rng):
    choice = rng.randrange(4)
    if choice == 0:
        return BestSolution()
    if choice == 1:
        return BestSolution(value=rng.uniform(-1e9, 1e9))
    if choice == 2:
        return BestSolution(value=None, origin=f"w{rng.randrange(100)}")
    return BestSolution(value=rng.uniform(-1e9, 1e9), origin=f"worker-{rng.randrange(100)}")


def rand_report(rng, n_codes=None):
    n = rng.randrange(0, 40) if n_codes is None else n_codes
    return WorkReport(
        sender=f"worker-{rng.randrange(100):02d}",
        codes=frozenset(rand_code(rng) for _ in range(n)),
        best=rand_best(rng),
        sequence=rng.randrange(1 << 20),
    )


def rand_snapshot(rng):
    return CompletedTableSnapshot(
        sender=f"w{rng.randrange(100)}",
        codes=frozenset(rand_code(rng) for _ in range(rng.randrange(0, 120))),
        best=rand_best(rng),
    )


def rand_digest(rng):
    return tuple(
        (f"member-{i}", rng.uniform(0, 1e6), rng.random() < 0.3)
        for i in range(rng.randrange(0, 20))
    )


def assert_round_trip(msg):
    data = wire.encode(msg)
    back = wire.decode(data)
    assert back == msg
    assert type(back) is type(msg)
    return data


# ---------------------------------------------------------------------- #
# Varint primitives
# ---------------------------------------------------------------------- #
class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 129, 16383, 16384, 2**21 - 1, 2**32, 2**63 - 1]
    )
    def test_uvarint_round_trip_boundaries(self, value):
        out = bytearray()
        varint.write_uvarint(out, value)
        assert len(out) == varint.uvarint_size(value)
        decoded, pos = varint.read_uvarint(out, 0)
        assert decoded == value and pos == len(out)

    def test_uvarint_seeded_round_trips(self):
        rng = random.Random(11)
        out = bytearray()
        values = [rng.randrange(1 << rng.randrange(1, 63)) for _ in range(500)]
        for value in values:
            varint.write_uvarint(out, value)
        pos = 0
        for value in values:
            decoded, pos = varint.read_uvarint(out, pos)
            assert decoded == value
        assert pos == len(out)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(ValueError):
            varint.write_uvarint(bytearray(), -1)

    def test_uvarint_rejects_overlong_encoding(self):
        with pytest.raises(varint.MalformedVarintError):
            varint.read_uvarint(b"\x80\x00", 0)

    def test_uvarint_rejects_unterminated(self):
        with pytest.raises(varint.MalformedVarintError):
            varint.read_uvarint(b"\xff" * 11, 0)

    def test_uvarint_truncated(self):
        with pytest.raises(varint.TruncatedValueError):
            varint.read_uvarint(b"\x80", 0)

    @pytest.mark.parametrize("value", [0, -1, 1, -(2**40), 2**40, -(2**62), 2**62])
    def test_svarint_round_trip(self, value):
        out = bytearray()
        varint.write_svarint(out, value)
        decoded, pos = varint.read_svarint(out, 0)
        assert decoded == value and pos == len(out)

    @pytest.mark.parametrize("value", [0.0, -0.0, 1.5, -1e300, float("inf"), float("-inf")])
    def test_float64_round_trip_exact(self, value):
        out = bytearray()
        varint.write_float64(out, value)
        decoded, _ = varint.read_float64(out, 0)
        assert decoded == value

    def test_string_unicode_round_trip(self):
        out = bytearray()
        varint.write_string(out, "wörker-λ-0")
        text, pos = varint.read_string(out, 0)
        assert text == "wörker-λ-0" and pos == len(out)

    def test_bool_rejects_other_bytes(self):
        with pytest.raises(varint.MalformedVarintError):
            varint.read_bool(b"\x02", 0)


# ---------------------------------------------------------------------- #
# Round trips
# ---------------------------------------------------------------------- #
class TestRoundTrips:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_path_codes(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            assert_round_trip(rand_code(rng))

    def test_adversarial_codes(self):
        assert_round_trip(ROOT)
        deep = PathCode(tuple((i, i & 1) for i in range(500)))
        assert_round_trip(deep)
        wide = PathCode(((2**40, 1), (0, 0), (2**20, 1)))
        assert_round_trip(wide)
        # Decoded codes must behave like originals (hash/equality/relations).
        decoded = wire.decode(wire.encode(deep))
        assert hash(decoded) == hash(deep)
        assert decoded.parent() == deep.parent()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_reports(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(10):
            assert_round_trip(rand_report(rng))

    def test_empty_report_and_root_report(self):
        assert_round_trip(WorkReport(sender="w", codes=frozenset()))
        data = assert_round_trip(WorkReport(sender="w", codes=frozenset([ROOT])))
        decoded = wire.decode(data)
        assert decoded.contains_root()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_snapshots(self, seed):
        rng = random.Random(200 + seed)
        assert_round_trip(rand_snapshot(rng))

    def test_load_balancing_messages(self):
        rng = random.Random(3)
        assert_round_trip(WorkRequest(requester="w-07", best=rand_best(rng)))
        assert_round_trip(WorkDenied(donor="w-08"))
        grant = WorkGrant(
            donor="w-09",
            codes=tuple(rand_code(rng) for _ in range(6)),
            best=rand_best(rng),
        )
        data = assert_round_trip(grant)
        # Grant code order is semantic (donation order) and must survive.
        assert wire.decode(data).codes == grant.codes

    def test_wrapped_messages(self):
        rng = random.Random(4)
        assert_round_trip(WorkReportMsg(rand_report(rng)))
        assert_round_trip(TableGossipMsg(rand_snapshot(rng)))

    @pytest.mark.parametrize("seed", range(5))
    def test_view_digests_and_gossip(self, seed):
        rng = random.Random(300 + seed)
        digest = rand_digest(rng)
        assert_round_trip(digest)
        assert_round_trip(ViewGossip(sender=f"s{seed}", digest=digest))

    def test_join_announcement(self):
        assert_round_trip(JoinAnnouncement(member="newcomer-17"))

    def test_best_solution_values(self):
        assert_round_trip(BestSolution())
        assert_round_trip(BestSolution(value=float("inf")))
        assert_round_trip(BestSolution(value=-1234.5678e-9, origin="w"))
        assert_round_trip(BestSolution(origin="only-origin"))

    def test_set_encoding_is_order_independent(self):
        rng = random.Random(9)
        codes = [rand_code(rng) for _ in range(30)]
        a = WorkReport(sender="w", codes=frozenset(codes))
        b = WorkReport(sender="w", codes=frozenset(reversed(codes)))
        assert wire.encode(a) == wire.encode(b)

    def test_unregistered_type_rejected(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode(object())


# ---------------------------------------------------------------------- #
# Truncation and corruption rejection
# ---------------------------------------------------------------------- #
class TestRejection:
    def _sample_frames(self):
        rng = random.Random(42)
        return [
            wire.encode(msg)
            for msg in (
                rand_code(rng),
                rand_best(rng),
                rand_report(rng, n_codes=12),
                rand_snapshot(rng),
                WorkGrant(donor="d", codes=tuple(rand_code(rng) for _ in range(3))),
                ViewGossip("s", rand_digest(rng)),
            )
        ]

    def test_every_truncation_rejected(self):
        for frame in self._sample_frames():
            for cut in range(len(frame)):
                with pytest.raises(wire.WireFormatError):
                    wire.decode(frame[:cut])

    def test_bad_magic_rejected(self):
        frame = bytearray(wire.encode(ROOT))
        frame[0] ^= 0xFF
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(frame))

    def test_unsupported_version_rejected(self):
        frame = bytearray(wire.encode(ROOT))
        frame[1] = 99
        with pytest.raises(wire.UnsupportedVersionError):
            wire.decode(bytes(frame))

    def test_unknown_tag_rejected(self):
        out = bytearray((FRAME_MAGIC, 1))
        varint.write_uvarint(out, 200)  # no such tag
        varint.write_uvarint(out, 0)
        with pytest.raises(wire.UnknownMessageTagError):
            wire.decode(bytes(out))

    def test_trailing_bytes_rejected(self):
        frame = wire.encode(ROOT) + b"\x00"
        with pytest.raises(wire.WireFormatError):
            wire.decode(frame)

    def test_declared_length_mismatch_rejected(self):
        # Re-frame a valid body with an inflated declared length and padding:
        # the body reader must notice it did not consume the declared bytes.
        body = bytearray()
        from repro.wire import codec

        codec.write_path_code(body, ROOT.child(3, 1))
        out = bytearray((FRAME_MAGIC, 1))
        varint.write_uvarint(out, int(Tag.PATH_CODE))
        varint.write_uvarint(out, len(body) + 2)
        out += body + b"\x00\x00"
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(out))

    def test_random_bit_flips_never_crash(self):
        # Any single corrupted byte must yield either a clean WireFormatError
        # or a decoded message (when the flip hits e.g. a float's mantissa) —
        # never an unhandled exception type.
        rng = random.Random(77)
        frame = wire.encode(rand_report(rng, n_codes=8))
        for _ in range(300):
            corrupted = bytearray(frame)
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
            try:
                wire.decode(bytes(corrupted))
            except wire.WireFormatError:
                pass

    def test_front_coding_prefix_overflow_rejected(self):
        # Hand-build a code sequence whose second entry claims more prefix
        # reuse than the first entry has keys.
        body = bytearray()
        varint.write_uvarint(body, 2)  # two codes
        varint.write_uvarint(body, 1)  # first: depth 1
        varint.write_uvarint(body, (7 << 1) | 1)
        varint.write_uvarint(body, 5)  # second: reuse 5 > depth 1
        varint.write_uvarint(body, 0)
        out = bytearray((FRAME_MAGIC, 1))
        varint.write_uvarint(out, int(Tag.WORK_GRANT))
        inner = bytearray()
        varint.write_string(inner, "donor")
        inner.append(0)  # empty best
        inner += body
        varint.write_uvarint(out, len(inner))
        out += inner
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes(out))
