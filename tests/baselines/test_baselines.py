"""Tests for the centralised and DIB-style baselines."""

import pytest

from repro.baselines.central import run_central_simulation
from repro.baselines.dib import run_dib_simulation
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.bnb.tree_problem import TreeReplayProblem
from repro.simulation.failures import CrashEvent


@pytest.fixture(scope="module")
def workload():
    tree = generate_random_tree(
        RandomTreeSpec(nodes=151, mean_node_time=0.05, seed=17, name="baseline-tree")
    )
    problem = TreeReplayProblem(tree, prune=False)
    return tree, problem


def correct(value, tree):
    optimum = tree.optimal_value()
    return value is not None and abs(value - optimum) <= 1e-9 * max(1.0, abs(optimum))


class TestCentralBaseline:
    def test_failure_free_run(self, workload):
        tree, problem = workload
        result = run_central_simulation(problem, 3, seed=1, max_sim_time=500.0)
        assert result.terminated
        assert correct(result.best_value, tree)
        assert result.nodes_expanded >= len(tree) - 1
        assert not result.manager_crashed
        assert result.total_bytes_sent > 0

    def test_worker_crash_recovered_by_manager(self, workload):
        tree, problem = workload
        result = run_central_simulation(
            problem,
            3,
            seed=1,
            failures=[CrashEvent(1.0, "cworker-01")],
            max_sim_time=500.0,
        )
        assert result.terminated
        assert correct(result.best_value, tree)
        assert result.crashed_workers == ["cworker-01"]

    def test_manager_crash_is_fatal(self, workload):
        tree, problem = workload
        result = run_central_simulation(
            problem,
            3,
            seed=1,
            failures=[CrashEvent(1.0, "manager")],
            max_sim_time=15.0,
        )
        assert result.manager_crashed
        assert not result.terminated

    def test_single_worker(self, workload):
        tree, problem = workload
        result = run_central_simulation(problem, 1, seed=2, max_sim_time=500.0)
        assert result.terminated
        assert correct(result.best_value, tree)

    def test_invalid_worker_count(self, workload):
        _tree, problem = workload
        with pytest.raises(ValueError):
            run_central_simulation(problem, 0)


class TestDibBaseline:
    def test_failure_free_run(self, workload):
        tree, problem = workload
        result = run_dib_simulation(problem, 3, seed=1, max_sim_time=500.0)
        assert result.terminated
        assert correct(result.best_value, tree)
        assert result.nodes_expanded >= len(tree) - 1
        assert not result.root_machine_crashed

    def test_worker_crash_recovered_by_responsible_machine(self, workload):
        tree, problem = workload
        result = run_dib_simulation(
            problem,
            3,
            seed=1,
            failures=[CrashEvent(1.0, "dworker-01")],
            max_sim_time=500.0,
            redo_timeout=2.0,
        )
        assert result.terminated
        assert correct(result.best_value, tree)
        assert "dworker-01" in result.crashed_workers

    def test_root_machine_crash_prevents_termination(self, workload):
        """DIB's structural weakness: the responsibility root must survive."""
        tree, problem = workload
        result = run_dib_simulation(
            problem,
            3,
            seed=1,
            failures=[CrashEvent(1.0, "dworker-00")],
            max_sim_time=15.0,
        )
        assert result.root_machine_crashed
        assert not result.terminated

    def test_single_machine(self, workload):
        tree, problem = workload
        result = run_dib_simulation(problem, 1, seed=3, max_sim_time=500.0)
        assert result.terminated
        assert correct(result.best_value, tree)

    def test_invalid_worker_count(self, workload):
        _tree, problem = workload
        with pytest.raises(ValueError):
            run_dib_simulation(problem, 0)
