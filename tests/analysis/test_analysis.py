"""Tests for the experiment builders, table formatting and timeline digests."""

import pytest

from repro.analysis.figures import (
    compression_ablation,
    default_config,
    fault_tolerance_comparison,
    figure3_breakdown,
    figure3_tree,
    figure4_series,
    figure56_scenario,
    granularity_sweep,
    reporting_ablation,
    table1_rows,
    table1_tree,
    tiny_tree,
)
from repro.analysis.tables import format_kv, format_table
from repro.analysis.timeline import activity_summary, recovery_evidence


class TestWorkloadBuilders:
    def test_figure3_tree_scaling(self):
        small = figure3_tree(scale=0.1)
        full = figure3_tree(scale=1.0)
        assert len(small) < len(full)
        assert 3300 <= len(full) <= 3700
        assert small.mean_node_time() == pytest.approx(0.01, rel=0.3)

    def test_table1_tree_scaling(self):
        tree = table1_tree(scale=0.02)
        assert len(tree) >= 1001
        assert tree.mean_node_time() == pytest.approx(3.47, rel=0.3)

    def test_tiny_tree(self):
        assert len(tiny_tree()) < 300

    def test_default_config_overrides(self):
        config = default_config(report_threshold=4)
        assert config.report_threshold == 4


class TestTableFormatting:
    def test_format_table(self):
        rows = [
            {"a": 1, "b": 2.5, "c": None},
            {"a": 10, "b": 0.125, "c": True},
        ]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "a" in text.splitlines()[1]
        assert "yes" in text
        assert "-" in text  # None rendering

    def test_format_table_empty_and_column_selection(self):
        assert "(no rows)" in format_table([])
        rows = [{"x": 1, "y": 2}]
        only_x = format_table(rows, columns=["x"])
        assert "y" not in only_x.splitlines()[0]

    def test_format_kv(self):
        text = format_kv({"alpha": 1.5, "beta": None}, title="kv")
        assert "kv" in text and "alpha" in text and "-" in text


class TestExperimentBuilders:
    """Small-scale smoke runs of every experiment builder (fast settings)."""

    def test_figure3_breakdown_rows(self):
        rows = figure3_breakdown(processor_counts=(1, 2), scale=0.05)
        assert len(rows) == 2
        assert rows[0]["processors"] == 1
        for row in rows:
            assert row["solved_correctly"]
            assert row["makespan_s"] > 0
            assert "bb_s_per_proc" in row
        # More processors means shorter makespan on this workload.
        assert rows[1]["makespan_s"] < rows[0]["makespan_s"]

    def test_table1_rows_and_figure4(self):
        rows = table1_rows(processor_counts=(2, 4), scale=0.01)
        assert len(rows) == 2
        for row in rows:
            assert row["solved_correctly"]
            assert row["bb_time_pct"] > 0
        series = figure4_series(rows)
        assert len(series["execution_time_h"]) == 2
        assert len(series["comm_mb_per_hour_per_proc"]) == 2
        # Execution time decreases with processors.
        assert series["execution_time_h"][1][1] <= series["execution_time_h"][0][1]

    def test_figure56_scenario(self):
        scenario = figure56_scenario(n_workers=3, crash_fraction=0.6)
        no_failure = scenario["no_failure"]
        with_failures = scenario["with_failures"]
        assert no_failure.solved_correctly
        assert with_failures.solved_correctly
        assert set(with_failures.crashed_workers) == set(scenario["victims"])
        assert "worker-00" in scenario["no_failure_gantt"]
        evidence = recovery_evidence(with_failures)
        assert evidence["all_survivors_terminated"]
        assert evidence["solved_correctly"]
        assert evidence["surviving_workers"] == ["worker-00"]
        summary = activity_summary(with_failures.trace)
        assert any(row["process"] == "worker-00" for row in summary)

    def test_granularity_sweep(self):
        rows = granularity_sweep(factors=(0.5, 2.0), n_workers=3, scale=0.05)
        assert len(rows) == 2
        assert all(row["solved_correctly"] for row in rows)
        assert rows[1]["makespan_s"] > rows[0]["makespan_s"]

    def test_reporting_ablation(self):
        rows = reporting_ablation(thresholds=(1, 20), fanouts=(1,), n_workers=3, scale=0.05)
        assert len(rows) == 2
        assert all(row["solved_correctly"] for row in rows)
        frequent, rare = rows[0], rows[1]
        assert frequent["messages_sent"] >= rare["messages_sent"]

    def test_compression_ablation(self):
        rows = compression_ablation(n_workers=3, scale=0.05)
        assert len(rows) == 2
        on = next(r for r in rows if r["compress_reports"])
        off = next(r for r in rows if not r["compress_reports"])
        assert on["solved_correctly"] and off["solved_correctly"]
        assert off["bytes_sent_mb"] >= on["bytes_sent_mb"]

    def test_fault_tolerance_comparison(self):
        rows = fault_tolerance_comparison(n_workers=3, scale=1.0)
        scenarios = {row["scenario"] for row in rows}
        assert {"no failures", "all but one crash", "critical node crash"} <= scenarios
        for row in rows:
            # The paper's mechanism always terminates correctly.
            assert row["ours_terminated"]
            assert row["ours_correct"]
        critical = next(r for r in rows if r["scenario"] == "critical node crash")
        # The baselines lose their critical node and cannot terminate.
        assert not critical["dib_terminated"]
        assert not critical["central_terminated"]
