"""Tests for the recovery policy and termination detection."""

import pytest

from repro.core.completion import CompletionTracker
from repro.core.encoding import ROOT, PathCode
from repro.core.recovery import RecoveryPolicy
from repro.core.termination import TerminationDetector, is_root_report, make_root_report
from repro.core.work_report import BestSolution, WorkReport


class TestRecoveryPolicy:
    def test_requires_positive_threshold(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(failed_request_threshold=0)

    def test_no_recovery_before_threshold(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        policy = RecoveryPolicy(failed_request_threshold=3)
        policy.note_request_failed(1.0)
        policy.note_request_failed(1.5)
        decision = policy.evaluate(tracker, 2.0)
        assert decision.code is None
        assert decision.reason == "not-starved"

    def test_recovery_after_threshold(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        policy = RecoveryPolicy(failed_request_threshold=2)
        policy.note_request_failed(1.0)
        policy.note_request_failed(1.2)
        decision = policy.evaluate(tracker, 1.5)
        assert decision.code is not None
        assert decision.reason == "starvation"
        assert not tracker.table.covers(decision.code)

    def test_obtaining_work_resets_failures(self):
        policy = RecoveryPolicy(failed_request_threshold=2)
        policy.note_request_failed(1.0)
        policy.note_work_obtained()
        assert policy.consecutive_failures == 0
        assert not policy.should_suspect_loss(2.0)

    def test_idle_time_threshold(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        policy = RecoveryPolicy(failed_request_threshold=1, idle_time_threshold=5.0)
        policy.note_request_failed(1.0)
        assert policy.evaluate(tracker, 2.0).code is None
        assert policy.evaluate(tracker, 7.0).code is not None

    def test_tree_complete_means_no_recovery(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT, now=0.0)
        policy = RecoveryPolicy(failed_request_threshold=1)
        policy.note_request_failed(1.0)
        decision = policy.evaluate(tracker, 2.0)
        assert decision.code is None
        assert decision.reason == "tree-complete"

    def test_active_recoveries_are_excluded(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        policy = RecoveryPolicy(failed_request_threshold=1)
        policy.note_request_failed(1.0)
        first = policy.evaluate(tracker, 2.0).code
        policy.note_recovery_started(first)
        # Starting recovery resets starvation; fail again to re-trigger.
        policy.note_request_failed(3.0)
        second = policy.evaluate(tracker, 4.0).code
        assert second is None or second != first

    def test_abort_and_finish_bookkeeping(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        policy = RecoveryPolicy(failed_request_threshold=1)
        policy.note_request_failed(1.0)
        code = policy.evaluate(tracker, 2.0).code
        policy.note_recovery_started(code)
        assert code in policy.active_recoveries
        assert not policy.should_abort(tracker, code)
        tracker.merge_report(WorkReport.build("peer", [code]))
        assert policy.should_abort(tracker, code)
        policy.note_recovery_aborted(code, time_spent=0.5)
        assert code not in policy.active_recoveries
        assert policy.stats.aborted_recoveries == 1
        assert policy.stats.redundant_time == pytest.approx(0.5)

    def test_finish_redundant_recovery(self):
        policy = RecoveryPolicy()
        code = ROOT.child(0, 1)
        policy.note_recovery_started(code)
        policy.note_recovery_finished(code, redundant=True, time_spent=1.0)
        assert policy.stats.redundant_recoveries == 1
        stats = policy.stats.as_dict()
        assert stats["activations"] == 1


class TestTermination:
    def test_root_report_helpers(self):
        report = make_root_report("w", best=BestSolution(4.0))
        assert is_root_report(report)
        assert not is_root_report(WorkReport.build("w", [ROOT.child(0, 0)]))

    def test_local_detection(self):
        tracker = CompletionTracker("w")
        detector = TerminationDetector(tracker)
        assert not detector.terminated
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        assert detector.check_local(1.0) is False
        tracker.record_completed(ROOT.child(0, 1), now=1.5)
        assert detector.check_local(2.0) is True
        assert detector.terminated
        assert detector.detected_via == "local"
        assert detector.detected_at == 2.0
        # Only the first detection returns True.
        assert detector.check_local(3.0) is False

    def test_detection_via_root_report(self):
        tracker = CompletionTracker("w")
        detector = TerminationDetector(tracker)
        newly = detector.observe_report(make_root_report("peer"), now=5.0)
        assert newly
        assert detector.detected_via == "root_report"
        assert tracker.is_tree_complete()
        assert not detector.needs_root_broadcast()

    def test_detection_via_ordinary_report(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        detector = TerminationDetector(tracker)
        report = WorkReport.build("peer", [ROOT.child(0, 1)])
        # The caller (the worker) merges the report into its table first and
        # then lets the detector re-evaluate it.
        tracker.merge_report(report)
        assert detector.observe_report(report, now=2.0)
        assert detector.detected_via == "local"
        assert detector.needs_root_broadcast()
        detector.mark_root_broadcast_sent()
        assert not detector.needs_root_broadcast()

    def test_duplicate_root_reports_do_not_re_trigger(self):
        tracker = CompletionTracker("w")
        detector = TerminationDetector(tracker)
        assert detector.observe_report(make_root_report("a"), now=1.0)
        assert not detector.observe_report(make_root_report("b"), now=2.0)
        assert detector.detected_at == 1.0
