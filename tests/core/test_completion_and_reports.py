"""Tests for the completion tracker, work reports and table snapshots."""

import pytest

from repro.core.codeset import CodeSet
from repro.core.completion import CompletionTracker
from repro.core.encoding import ROOT, PathCode
from repro.core.work_report import (
    BestSolution,
    CompletedTableSnapshot,
    WorkReport,
    compress_report_codes,
)


class TestBestSolution:
    def test_comparison_minimise(self):
        a = BestSolution(5.0, "a")
        b = BestSolution(7.0, "b")
        none = BestSolution()
        assert a.is_better_than(b, minimize=True)
        assert not b.is_better_than(a, minimize=True)
        assert b.is_better_than(a, minimize=False)
        assert a.is_better_than(none, minimize=True)
        assert not none.is_better_than(a, minimize=True)

    def test_wire_size(self):
        assert BestSolution().wire_size() == 0
        assert BestSolution(1.0).wire_size() > 0


class TestCompressReportCodes:
    def test_sibling_pairs_collapse(self):
        left = ROOT.child(1, 0)
        right = ROOT.child(1, 1)
        assert compress_report_codes([left, right]) == frozenset({ROOT})

    def test_known_table_suppresses_codes(self):
        table = CodeSet([ROOT.child(1, 0)])
        codes = [ROOT.child(1, 0).child(2, 0), ROOT.child(1, 1)]
        compressed = compress_report_codes(codes, known_table=table)
        assert compressed == frozenset({ROOT.child(1, 1)})


class TestWorkReport:
    def test_build_compresses(self):
        report = WorkReport.build("w1", [ROOT.child(1, 0), ROOT.child(1, 1)])
        assert report.codes == frozenset({ROOT})
        assert report.contains_root()
        assert report.sender == "w1"

    def test_empty_report(self):
        report = WorkReport.build("w1", [])
        assert report.is_empty
        assert report.wire_size() > 0  # header still counts

    def test_wire_size_scales_with_codes(self):
        small = WorkReport.build("w", [ROOT.child(1, 0)])
        big = WorkReport.build(
            "w", [ROOT.child(1, 0).child(2, 0).child(3, 0), ROOT.child(4, 1)]
        )
        assert big.wire_size() > small.wire_size()


class TestCompletedTableSnapshot:
    def test_from_table_and_as_report(self):
        table = CodeSet([ROOT.child(1, 0)])
        snapshot = CompletedTableSnapshot.from_table("w2", table, best=BestSolution(3.0))
        assert snapshot.codes == table.codes()
        report = snapshot.as_report()
        assert report.sender == "w2"
        assert report.codes == snapshot.codes
        assert snapshot.wire_size() >= report.best.wire_size()


class TestCompletionTracker:
    def test_requires_positive_threshold(self):
        with pytest.raises(ValueError):
            CompletionTracker("w", report_threshold=0)

    def test_record_and_threshold_trigger(self):
        tracker = CompletionTracker("w", report_threshold=3)
        tracker.record_completed(ROOT.child(0, 0).child(1, 0), now=0.0)
        tracker.record_completed(ROOT.child(0, 0).child(1, 1), now=0.1)
        assert not tracker.should_send_report(now=0.1)
        tracker.record_completed(ROOT.child(0, 1).child(2, 0), now=0.2)
        assert tracker.should_send_report(now=0.2)

    def test_staleness_trigger(self):
        tracker = CompletionTracker("w", report_threshold=100, report_staleness=1.0)
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        assert not tracker.should_send_report(now=0.5)
        assert tracker.should_send_report(now=1.5)

    def test_no_report_when_nothing_pending(self):
        tracker = CompletionTracker("w", report_threshold=1, report_staleness=0.1)
        assert not tracker.should_send_report(now=100.0)

    def test_build_report_clears_pending_and_compresses(self):
        tracker = CompletionTracker("w", report_threshold=2)
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        tracker.record_completed(ROOT.child(0, 1), now=0.0)
        report = tracker.build_report(now=0.0)
        assert report.codes == frozenset({ROOT})
        assert tracker.pending_report_size == 0

    def test_build_report_uncompressed(self):
        tracker = CompletionTracker("w", report_threshold=2)
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        tracker.record_completed(ROOT.child(0, 1), now=0.0)
        report = tracker.build_report(now=0.0, compress=False)
        assert report.codes == frozenset({ROOT.child(0, 0), ROOT.child(0, 1)})

    def test_merge_report_updates_table_and_counters(self):
        tracker = CompletionTracker("w")
        report = WorkReport.build("peer", [ROOT.child(0, 0)])
        assert tracker.merge_report(report) is True
        assert tracker.merge_report(report) is False
        assert tracker.codes_received == 2
        assert tracker.redundant_codes_received == 1
        assert tracker.table.covers(ROOT.child(0, 0).child(1, 1))

    def test_merge_snapshot(self):
        tracker = CompletionTracker("w")
        snapshot = CompletedTableSnapshot("peer", frozenset({ROOT.child(0, 1)}))
        assert tracker.merge_snapshot(snapshot)
        assert tracker.table.covers(ROOT.child(0, 1))

    def test_is_tree_complete_via_local_and_remote(self):
        tracker = CompletionTracker("w", report_threshold=10)
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        assert not tracker.is_tree_complete()
        tracker.merge_report(WorkReport.build("peer", [ROOT.child(0, 1)]))
        assert tracker.is_tree_complete()

    def test_missing_subtrees_and_recovery_choice(self):
        tracker = CompletionTracker("w")
        tracker.record_completed(ROOT.child(0, 0).child(1, 0), now=0.0)
        missing = tracker.missing_subtrees()
        assert ROOT.child(0, 1) in missing
        choice = tracker.choose_recovery_problem()
        assert choice in missing
        tracker.table.add(ROOT)
        assert tracker.choose_recovery_problem() is None

    def test_storage_accounting(self):
        tracker = CompletionTracker("w")
        assert tracker.storage_bytes() == 0
        tracker.record_completed(ROOT.child(0, 0), now=0.0)
        local_only = tracker.storage_bytes()
        assert local_only > 0
        assert tracker.remote_information_share() == 0.0
        tracker.merge_report(WorkReport.build("peer", [ROOT.child(5, 1)]))
        assert tracker.remote_information_share() > 0.0

    def test_last_completed_is_tracked(self):
        tracker = CompletionTracker("w")
        code = ROOT.child(0, 0)
        tracker.record_completed(code, now=1.0)
        assert tracker.last_completed == code
        assert tracker.codes_completed_locally == 1

    def test_record_completed_many(self):
        tracker = CompletionTracker("w")
        tracker.record_completed_many([ROOT.child(0, 0), ROOT.child(0, 1)], now=0.0)
        assert tracker.is_tree_complete()
