"""Tests for complement computation and recovery-candidate selection."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codeset import CodeSet
from repro.core.complement import (
    SelectionStrategy,
    complement_covers_tree,
    complement_frontier,
    minimal_complement,
    select_recovery_candidate,
)
from repro.core.encoding import ROOT, PathCode


def leaf_codes(depth):
    return [
        PathCode(tuple((level, bit) for level, bit in enumerate(bits)))
        for bits in itertools.product((0, 1), repeat=depth)
    ]


class TestComplementFrontier:
    def test_empty_table_misses_everything(self):
        assert complement_frontier(CodeSet()) == {ROOT}

    def test_complete_table_misses_nothing(self):
        assert complement_frontier(CodeSet([ROOT])) == set()

    def test_single_deep_code(self):
        cs = CodeSet([ROOT.child(0, 0).child(1, 0)])
        assert complement_frontier(cs) == {
            ROOT.child(0, 0).child(1, 1),
            ROOT.child(0, 1),
        }

    def test_minimal_complement_accepts_iterables(self):
        frontier = minimal_complement([ROOT.child(0, 1)])
        assert frontier == {ROOT.child(0, 0)}

    def test_invariant_checker(self):
        cs = CodeSet([ROOT.child(0, 0)])
        frontier = sorted(complement_frontier(cs))
        assert complement_covers_tree(cs, frontier)
        # A frontier containing a covered code violates the invariant.
        assert not complement_covers_tree(cs, [ROOT.child(0, 0).child(1, 1)])
        # Overlapping frontier codes violate the invariant.
        assert not complement_covers_tree(cs, [ROOT.child(0, 1), ROOT.child(0, 1).child(1, 0)])


class TestSelection:
    def make_table(self):
        return CodeSet([ROOT.child(0, 0).child(1, 0).child(2, 0)])

    def test_deepest_and_shallowest(self):
        table = self.make_table()
        deepest = select_recovery_candidate(table, strategy=SelectionStrategy.DEEPEST)
        shallowest = select_recovery_candidate(table, strategy=SelectionStrategy.SHALLOWEST)
        assert deepest.depth >= shallowest.depth
        assert deepest == ROOT.child(0, 0).child(1, 0).child(2, 1)
        assert shallowest == ROOT.child(0, 1)

    def test_random_is_deterministic_with_seed(self):
        table = self.make_table()
        a = select_recovery_candidate(
            table, strategy=SelectionStrategy.RANDOM, rng=random.Random(3)
        )
        b = select_recovery_candidate(
            table, strategy=SelectionStrategy.RANDOM, rng=random.Random(3)
        )
        assert a == b
        assert a in complement_frontier(table)

    def test_near_last_completed(self):
        table = self.make_table()
        last = ROOT.child(0, 0).child(1, 0).child(2, 0)
        candidate = select_recovery_candidate(
            table,
            strategy=SelectionStrategy.NEAR_LAST_COMPLETED,
            last_completed=last,
        )
        # The candidate sharing the longest prefix with the last completed
        # problem is its direct sibling.
        assert candidate == ROOT.child(0, 0).child(1, 0).child(2, 1)

    def test_near_last_completed_without_hint_falls_back(self):
        table = self.make_table()
        candidate = select_recovery_candidate(
            table, strategy=SelectionStrategy.NEAR_LAST_COMPLETED, last_completed=None
        )
        assert candidate in complement_frontier(table)

    def test_exclusion(self):
        table = CodeSet([ROOT.child(0, 0)])
        only = ROOT.child(0, 1)
        assert select_recovery_candidate(table, exclude=[only]) is None
        assert select_recovery_candidate(table) == only

    def test_complete_table_returns_none(self):
        assert select_recovery_candidate(CodeSet([ROOT])) is None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            select_recovery_candidate(CodeSet(), strategy="bogus")  # type: ignore[arg-type]


@st.composite
def completed_leaf_subset(draw, max_depth=5):
    depth = draw(st.integers(min_value=1, max_value=max_depth))
    leaves = leaf_codes(depth)
    subset = draw(st.lists(st.sampled_from(leaves), max_size=len(leaves), unique=True))
    return depth, subset


class TestComplementProperties:
    @given(completed_leaf_subset())
    @settings(max_examples=200, deadline=None)
    def test_frontier_partitions_the_tree(self, case):
        """Every leaf is covered by the table XOR by the complement frontier."""
        depth, completed = case
        table = CodeSet(completed)
        frontier = complement_frontier(table)
        assert complement_covers_tree(table, sorted(frontier))
        for leaf in leaf_codes(depth):
            covered = table.covers(leaf)
            in_frontier = any(f == leaf or f.is_ancestor_of(leaf) for f in frontier)
            assert covered != in_frontier

    @given(completed_leaf_subset())
    @settings(max_examples=100, deadline=None)
    def test_selected_candidate_is_never_covered(self, case):
        _depth, completed = case
        table = CodeSet(completed)
        for strategy in SelectionStrategy:
            candidate = select_recovery_candidate(
                table, strategy=strategy, rng=random.Random(0), last_completed=None
            )
            if table.is_complete():
                assert candidate is None
            else:
                assert candidate is not None
                assert not table.covers(candidate)

    @given(completed_leaf_subset())
    @settings(max_examples=100, deadline=None)
    def test_solving_frontier_completes_tree(self, case):
        """Recovering every frontier subtree drives the table to the root."""
        _depth, completed = case
        table = CodeSet(completed)
        # Guard against pathological emptiness: recovering ROOT completes it.
        for _ in range(200):
            if table.is_complete():
                break
            frontier = complement_frontier(table)
            assert frontier
            table.add(sorted(frontier)[0])
        assert table.is_complete()
