"""Seeded property suite pinning the trie arena to the nested-dict CodeSet.

The nested-dict :class:`~repro.core.codeset.CodeSet` is the correctness
oracle; :class:`~repro.core.arena.ArenaCodeSet` (and the arena shadow
attached to a plain ``CodeSet``) must be observationally identical over
randomized insert / cover / merge / digest / frontier streams — including
the per-``add`` :class:`~repro.core.codeset.ContractionStats` deltas, which
the simulation charges contraction time from.

The suites run well over 1,000 distinct seeded streams in total; the main
insert-stream pin alone covers 1,000.
"""

import random

import pytest

from repro.core.arena import DONE, EMPTY, ArenaCodeSet, TrieArena
from repro.core.codeset import CodeSet
from repro.core.completion import CompletionTracker
from repro.core.encoding import ROOT, PathCode
from repro.core.work_report import WorkReport, table_digest


def random_code(rng: random.Random, max_depth: int = 7) -> PathCode:
    """A random code; mixed-variable paths exercise >2-entry trie nodes."""
    depth = rng.randint(0, max_depth)
    if rng.random() < 0.25:
        # Arbitrary branching variables: several variables can branch at the
        # same trie level, producing nodes with more than two entries (the
        # subsumption / merge-with-extra-entries edge cases).
        pairs = tuple((rng.randint(0, 3), rng.randint(0, 1)) for _ in range(depth))
        return PathCode(pairs)
    return PathCode.from_bits(rng.randint(0, 1) for _ in range(depth))


def random_stream(seed: int, length: int = None):
    rng = random.Random(seed)
    if length is None:
        length = rng.randint(1, 30)
    return rng, [random_code(rng) for _ in range(length)]


def assert_observably_equal(ref: CodeSet, cut: CodeSet, rng: random.Random):
    __tracebackhide__ = True
    assert cut.codes() == ref.codes()
    assert len(cut) == len(ref)
    assert bool(cut) == bool(ref)
    assert cut.is_complete() == ref.is_complete()
    assert cut.wire_size() == ref.wire_size()
    assert cut.max_depth() == ref.max_depth()
    assert set(cut) == set(ref)
    assert cut == ref and ref == cut
    assert table_digest(cut.codes()) == table_digest(ref.codes())
    assert cut.missing_frontier() == ref.missing_frontier()
    assert set(cut.missing_frontier_reference()) == ref.missing_frontier_reference()
    assert cut.uncovered_siblings() == ref.uncovered_siblings()
    for _ in range(10):
        probe = random_code(rng)
        assert cut.covers(probe) == ref.covers(probe)
        assert (probe in cut) == (probe in ref)
    assert sorted(cut._iter_completed_keys()) == sorted(ref._iter_completed_keys())


class TestArenaCodeSetVsReference:
    def test_insert_streams_identical_results_and_stats(self):
        """1,000 seeded insert streams: same results, same per-add stats."""
        arena = TrieArena()  # shared across streams, as in production
        for seed in range(1000):
            rng, stream = random_stream(seed)
            ref = CodeSet()
            cut = ArenaCodeSet(arena)
            for code in stream:
                assert cut.add(code) == ref.add(code), (seed, code)
                assert cut.stats.snapshot() == ref.stats.snapshot(), (seed, code)
            assert_observably_equal(ref, cut, rng)

    def test_equal_content_interns_to_equal_node_id(self):
        arena = TrieArena()
        for seed in range(150):
            _rng, stream = random_stream(seed)
            a = ArenaCodeSet(arena)
            b = ArenaCodeSet(arena)
            for code in stream:
                a.add(code)
            for code in reversed(stream):
                b.add(code)
            # Contraction is a unique normal form, so any insertion order
            # lands on the same interned node.
            assert a._nid == b._nid
            assert a.codes() is b.codes()

    def test_merge_matches_reference(self):
        arena = TrieArena()
        for seed in range(300):
            rng, stream_a = random_stream(seed * 2 + 1)
            _rng2, stream_b = random_stream(seed * 2 + 2)
            ref_a, ref_b = CodeSet(stream_a), CodeSet(stream_b)
            cut_a, cut_b = ArenaCodeSet(arena, stream_a), ArenaCodeSet(arena, stream_b)
            assert cut_a.merge(cut_b) == ref_a.merge(ref_b)
            assert_observably_equal(ref_a, cut_a, rng)
            # Merging again is a no-op both ways.
            assert cut_a.merge(cut_b) == ref_a.merge(ref_b) == False  # noqa: E712

    def test_update_with_arena_frozenset_is_pointer_fast_path(self):
        arena = TrieArena()
        for seed in range(150):
            rng, stream_a = random_stream(seed * 2 + 1)
            _rng2, stream_b = random_stream(seed * 2 + 2)
            ref_a, ref_b = CodeSet(stream_a), CodeSet(stream_b)
            cut_a, cut_b = ArenaCodeSet(arena, stream_a), ArenaCodeSet(arena, stream_b)
            codes_b = cut_b.codes()
            assert arena.node_for_codes(codes_b) == cut_b._nid
            assert cut_a.update(codes_b) == ref_a.update(ref_b.codes())
            assert_observably_equal(ref_a, cut_a, rng)

    def test_update_with_foreign_frozenset_falls_back_per_code(self):
        arena = TrieArena()
        for seed in range(100):
            rng, stream_a = random_stream(seed * 2 + 1)
            _rng2, stream_b = random_stream(seed * 2 + 2)
            ref = CodeSet(stream_a)
            cut = ArenaCodeSet(arena, stream_a)
            foreign = frozenset(stream_b)  # not an arena codes() object
            assert arena.node_for_codes(foreign) is None
            assert cut.update(foreign) == ref.update(foreign)
            assert_observably_equal(ref, cut, rng)

    def test_copy_and_frozen_view_are_snapshots(self):
        arena = TrieArena()
        for seed in range(100):
            rng, stream = random_stream(seed, length=20)
            ref = CodeSet(stream[:10])
            cut = ArenaCodeSet(arena, stream[:10])
            ref_snap, cut_snap = ref.frozen_view(), cut.frozen_view()
            ref_copy, cut_copy = ref.copy(), cut.copy()
            for code in stream[10:]:
                ref.add(code)
                cut.add(code)
            assert cut_snap.codes() == ref_snap.codes()
            assert cut_copy.codes() == ref_copy.codes()
            assert_observably_equal(ref, cut, rng)

    def test_adopt_from_arena_and_reference_sources(self):
        arena = TrieArena()
        for seed in range(100):
            rng, stream = random_stream(seed)
            ref_src = CodeSet(stream)
            cut_src = ArenaCodeSet(arena, stream)
            ref_dst, cut_dst = CodeSet(), ArenaCodeSet(arena)
            assert cut_dst.adopt_from(cut_src) == ref_dst.adopt_from(ref_src)
            assert_observably_equal(ref_dst, cut_dst, rng)
            with pytest.raises(ValueError):
                cut_dst.adopt_from(cut_src)
            # Adoption from a non-arena source rebuilds via raw keys.
            other = ArenaCodeSet(arena)
            other.adopt_from(ref_src)
            assert other.codes() == ref_src.codes()

    def test_clear_resets_to_empty(self):
        arena = TrieArena()
        cut = ArenaCodeSet(arena, [PathCode.from_bits([0, 1]), PathCode.from_bits([1])])
        assert len(cut)
        cut.clear()
        assert cut._nid == EMPTY
        assert not cut and cut.codes() == frozenset()

    def test_root_completion_collapses_to_done(self):
        arena = TrieArena()
        ref, cut = CodeSet(), ArenaCodeSet(arena)
        for code in (PathCode.from_bits([0]), PathCode.from_bits([1])):
            assert cut.add(code) == ref.add(code)
            assert cut.stats.snapshot() == ref.stats.snapshot()
        assert cut.is_complete() and ref.is_complete()
        assert cut._nid == DONE
        assert cut.add(ROOT) == ref.add(ROOT) == False  # noqa: E712


class TestCodeSetArenaShadow:
    """A plain CodeSet with an attached arena mirrors itself exactly."""

    def test_shadow_tracks_all_mutations(self):
        # Reading the shadow after every add forces a flush per insertion
        # (batch size 1 — the single-insert path of the lazy mirror).
        arena = TrieArena()
        for seed in range(200):
            _rng, stream = random_stream(seed)
            plain = CodeSet()
            shadowed = CodeSet()
            shadowed.attach_arena(arena)
            for code in stream:
                assert shadowed.add(code) == plain.add(code)
                assert shadowed.stats.snapshot() == plain.stats.snapshot()
                assert arena.codes_at(shadowed.arena_id()) == plain.codes()
            assert shadowed.codes() == plain.codes()
            assert shadowed.codes() is arena.codes_at(shadowed.arena_id())

    def test_shadow_batches_between_reads(self):
        # Reading only occasionally exercises the batched flush: pending
        # insertions are interned as one small trie and merged in a single
        # step, and the result must still equal the authoritative trie.
        arena = TrieArena()
        for seed in range(200):
            rng, stream = random_stream(seed)
            plain = CodeSet()
            shadowed = CodeSet()
            shadowed.attach_arena(arena)
            for i, code in enumerate(stream):
                assert shadowed.add(code) == plain.add(code)
                if rng.random() < 0.1:
                    assert arena.codes_at(shadowed.arena_id()) == plain.codes()
                    assert arena.digest(shadowed.arena_id()) == arena.digest(
                        arena.node_from_codes(plain.codes())
                    )
            assert shadowed.codes() == plain.codes()
            assert shadowed.structural_digest() == plain.structural_digest()

    def test_attach_to_populated_set(self):
        arena = TrieArena()
        for seed in range(100):
            _rng, stream = random_stream(seed)
            cs = CodeSet(stream)
            expected = cs.codes()
            cs.attach_arena(arena)
            assert arena.codes_at(cs._anid) == expected

    def test_shadow_survives_copy_clear_and_adopt(self):
        arena = TrieArena()
        src = CodeSet([PathCode.from_bits([0, 0]), PathCode.from_bits([1, 1, 0])])
        src.attach_arena(arena)
        clone = src.copy()
        assert clone._arena is arena and clone._anid == src._anid
        clone.clear()
        assert clone._anid == EMPTY
        dst = CodeSet()
        dst.attach_arena(arena)
        dst.adopt_from(src.frozen_view(), src.codes())
        assert dst.codes() == src.codes()
        assert arena.codes_at(dst._anid) == src.codes()


class TestTrackerWithArena:
    """CompletionTracker behaviour is unchanged by a shared arena."""

    def _drive(self, tracker: CompletionTracker, seed: int):
        rng = random.Random(seed)
        digests = []
        deltas = []
        for step in range(rng.randint(5, 25)):
            action = rng.random()
            if action < 0.5:
                tracker.record_completed(random_code(rng), now=float(step))
            elif action < 0.8:
                codes = frozenset(random_code(rng) for _ in range(rng.randint(1, 5)))
                report = WorkReport(sender="peer", codes=codes)
                tracker.merge_report(report)
                tracker.note_peer_covers("peer", codes)
            else:
                delta = tracker.build_delta_snapshot("peer")
                deltas.append(frozenset(delta.codes))
                digests.append(delta.full_digest)
            digests.append(tracker.table_digest_now())
        deltas.append(frozenset(tracker.build_delta_snapshot("other").codes))
        return digests, deltas

    def test_digest_and_delta_streams_match_reference(self):
        arena = TrieArena()
        for seed in range(200):
            plain = CompletionTracker("w", report_threshold=4)
            shared = CompletionTracker("w", report_threshold=4, arena=arena)
            assert self._drive(plain, seed) == self._drive(shared, seed)
            assert plain.table.codes() == shared.table.codes()
            assert plain.table.stats.snapshot() == shared.table.stats.snapshot()
            assert plain.missing_subtrees() == shared.missing_subtrees()

    def test_ack_flow_advances_arena_backed_view(self):
        arena = TrieArena()
        tracker = CompletionTracker("w", arena=arena)
        for code in (PathCode.from_bits([0, 0]), PathCode.from_bits([0, 1, 0])):
            tracker.record_completed(code)
        delta = tracker.build_delta_snapshot("peer")
        assert delta.codes == tracker.table.codes()
        assert tracker.note_snapshot_ack("peer", delta.full_digest)
        view = tracker.peer_view("peer")
        assert isinstance(view.known, ArenaCodeSet)
        assert view.known.codes() == tracker.table.codes()
        # Converged: the next delta is empty and not remembered.
        follow_up = tracker.build_delta_snapshot("peer")
        assert follow_up.is_empty

    def test_note_peer_converged_uses_pointer_merge(self):
        arena = TrieArena()
        tracker = CompletionTracker("w", arena=arena)
        for seed in range(50):
            tracker.record_completed(random_code(random.Random(seed)))
        tracker.note_peer_converged("peer")
        assert tracker.peer_view("peer").known._nid == tracker.table._anid
