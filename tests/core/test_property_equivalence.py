"""Property-based equivalence tests for the optimized hot-path primitives.

The optimized :class:`~repro.core.codeset.CodeSet` (dict-backed trie, packed
integer keys, allocation-free covered inserts, incremental counters, staged
merge cascade) must behave exactly like the naive fixed-point oracle
:func:`~repro.core.codeset.contract_reference` on every input, and the cached
values on :class:`~repro.core.encoding.PathCode` (hash, wire size, key path)
must always match recomputation from scratch.

These tests drive both through seeded random code streams — more than 1,000
distinct streams overall — covering the regular case (one branching variable
per depth, as produced by real B&B trees) and the adversarial case (variable
collisions that give a trie node more than two children, which exercises the
slow aggregate path of the merge cascade).
"""

import pickle
import random

import pytest

from repro.core.codeset import CodeSet, contract, contract_reference, covers
from repro.core.encoding import (
    _CODE_HEADER_BYTES,
    _PAIR_WIRE_BYTES,
    ROOT,
    PathCode,
)


def make_stream(seed, max_codes=28, max_depth=6, *, mixed_variables=False):
    """Build a deterministic random stream of codes (duplicates included)."""
    rng = random.Random(seed)
    n = rng.randint(1, max_codes)
    stream = []
    for _ in range(n):
        depth = rng.randint(0, max_depth)
        if mixed_variables:
            pairs = tuple((rng.randint(0, 2), rng.randint(0, 1)) for _ in range(depth))
        else:
            pairs = tuple((level, rng.randint(0, 1)) for level in range(depth))
        stream.append(PathCode(pairs))
    # Occasionally re-feed earlier codes to exercise covered inserts.
    for _ in range(rng.randint(0, 5)):
        stream.append(rng.choice(stream))
    return stream


def reference_covers(reference, code):
    """Oracle coverage check: the code or any ancestor is in the set."""
    return any(a in reference for a in code.ancestors(include_self=True))


def check_equivalence(stream, probes_rng):
    """Assert the incremental CodeSet agrees with the oracle on ``stream``."""
    reference = contract_reference(stream)

    cs = CodeSet()
    for code in stream:
        cs.add(code)

    assert cs.codes() == frozenset(reference)
    assert len(cs) == len(reference)
    assert set(cs) == reference
    assert cs.is_complete() == (ROOT in reference)

    # Incremental counters match recomputation from the contracted view.
    assert cs.wire_size() == sum(c.wire_size() for c in reference)
    assert cs.max_depth() == max((c.depth for c in reference), default=0)

    # Coverage agrees with the oracle on the stream and on random probes.
    for code in stream:
        assert cs.covers(code)
        assert (code in cs) == (code in reference)
    for _ in range(5):
        depth = probes_rng.randint(0, 8)
        probe = PathCode(
            tuple((level, probes_rng.randint(0, 1)) for level in range(depth))
        )
        assert cs.covers(probe) == reference_covers(reference, probe)
        assert covers(reference, probe) == reference_covers(reference, probe)

    # One-shot contraction and bulk update agree with incremental adds.
    assert contract(stream) == reference
    bulk = CodeSet(stream)
    assert bulk.codes() == cs.codes()
    assert bulk.wire_size() == cs.wire_size()
    return cs, reference


class TestCodeSetMatchesReference:
    @pytest.mark.parametrize("base_seed", range(20))
    def test_regular_streams(self, base_seed):
        """20 × 30 = 600 streams with one branching variable per depth."""
        probes_rng = random.Random(10_000 + base_seed)
        for sub in range(30):
            stream = make_stream(base_seed * 1_000 + sub)
            check_equivalence(stream, probes_rng)

    @pytest.mark.parametrize("base_seed", range(20))
    def test_mixed_variable_streams(self, base_seed):
        """20 × 25 = 500 adversarial streams with variable collisions."""
        probes_rng = random.Random(20_000 + base_seed)
        for sub in range(25):
            stream = make_stream(
                50_000 + base_seed * 1_000 + sub, mixed_variables=True
            )
            check_equivalence(stream, probes_rng)

    def test_merge_matches_reference_union(self):
        """Trie-to-trie merge equals contracting the concatenated streams."""
        for seed in range(120):
            left = make_stream(seed, mixed_variables=seed % 3 == 0)
            right = make_stream(90_000 + seed, mixed_variables=seed % 3 == 1)
            a = CodeSet(left)
            b = CodeSet(right)
            b_before = b.codes()
            changed = a.merge(b)
            expected = contract_reference(left + right)
            assert a.codes() == frozenset(expected)
            assert a.wire_size() == sum(c.wire_size() for c in expected)
            assert a.max_depth() == max((c.depth for c in expected), default=0)
            assert b.codes() == b_before  # merge must not mutate its source
            if not changed:
                assert frozenset(expected) == frozenset(contract_reference(left))

    def test_update_order_independence(self):
        """Bulk update (depth-sorted) equals one-at-a-time insertion."""
        for seed in range(60):
            stream = make_stream(seed, max_codes=40, mixed_variables=seed % 2 == 0)
            one_by_one = CodeSet()
            for code in stream:
                one_by_one.add(code)
            shuffled = list(stream)
            random.Random(seed).shuffle(shuffled)
            bulk = CodeSet()
            bulk.update(shuffled)
            assert bulk.codes() == one_by_one.codes()
            assert bulk.wire_size() == one_by_one.wire_size()

    def test_copy_is_independent_and_equal(self):
        for seed in range(30):
            stream = make_stream(seed, mixed_variables=True)
            original = CodeSet(stream)
            clone = original.copy()
            assert clone.codes() == original.codes()
            assert clone.wire_size() == original.wire_size()
            assert clone.max_depth() == original.max_depth()
            if not original.is_complete():
                probe = PathCode(((99, 1),))
                clone.add(probe)
                assert probe not in original
                assert clone.covers(probe) and not original.covers(probe)

    def test_missing_frontier_partitions_tree(self):
        """Frontier codes are uncovered, disjoint, and complete the table."""
        for seed in range(40):
            stream = make_stream(seed)
            cs = CodeSet(stream)
            frontier = cs.missing_frontier()
            for code in frontier:
                assert not cs.covers(code)
            full = cs.copy()
            for code in frontier:
                full.add(code)
            assert full.is_complete()


class TestIncrementalFrontierMatchesReference:
    """The incrementally maintained missing frontier must equal the
    from-scratch trie walk (:meth:`CodeSet.missing_frontier_reference`)
    after *every* insert of *every* seeded stream — over 1,200 streams
    covering regular trees, adversarial variable collisions, and arbitrary
    activation points for the lazy maintenance."""

    @staticmethod
    def drive(stream, *, first_query_at):
        cs = CodeSet()
        assert cs.missing_frontier() == {ROOT}
        for index, code in enumerate(stream):
            cs.add(code)
            if index >= first_query_at:
                assert set(cs.missing_frontier()) == cs.missing_frontier_reference()
        # Final state always checked, even if maintenance never activated.
        assert set(cs.missing_frontier()) == cs.missing_frontier_reference()
        return cs

    @pytest.mark.parametrize("base_seed", range(20))
    def test_regular_streams(self, base_seed):
        """20 × 30 = 600 streams, queried after every insert."""
        for sub in range(30):
            stream = make_stream(base_seed * 1_000 + sub)
            self.drive(stream, first_query_at=0)

    @pytest.mark.parametrize("base_seed", range(20))
    def test_mixed_variable_streams_with_lazy_activation(self, base_seed):
        """20 × 30 = 600 adversarial streams; the first query lands at a
        seeded random position so activation happens mid-stream (the walk
        that builds the initial frontier) as well as up front."""
        rng = random.Random(70_000 + base_seed)
        for sub in range(30):
            stream = make_stream(
                60_000 + base_seed * 1_000 + sub, mixed_variables=True
            )
            self.drive(stream, first_query_at=rng.randint(0, len(stream)))

    def test_frontier_survives_copy_and_merge(self):
        """Copies and trie-to-trie merges keep the incremental frontier."""
        for seed in range(60):
            left = make_stream(seed, mixed_variables=seed % 2 == 0)
            right = make_stream(80_000 + seed, mixed_variables=seed % 2 == 1)
            a = CodeSet(left)
            a.missing_frontier()  # activate maintenance
            clone = a.copy()
            clone.merge(CodeSet(right))
            assert set(clone.missing_frontier()) == clone.missing_frontier_reference()
            # The original is untouched by the clone's merge.
            assert set(a.missing_frontier()) == a.missing_frontier_reference()

    def test_frontier_memo_is_stable_between_mutations(self):
        stream = make_stream(123, max_codes=30)
        cs = CodeSet(stream[:-1])
        first = cs.missing_frontier()
        assert cs.missing_frontier() is first  # memoised between mutations
        cs.add(stream[-1])
        assert set(cs.missing_frontier()) == cs.missing_frontier_reference()

    def test_complete_and_empty_sets(self):
        cs = CodeSet()
        assert cs.missing_frontier() == {ROOT}
        cs.add(ROOT)
        assert cs.missing_frontier() == frozenset()
        assert cs.missing_frontier_reference() == set()
        cs.clear()
        assert cs.missing_frontier() == {ROOT}


class TestFrozenViewAndAdopt:
    def test_frozen_view_is_memoised_until_mutation(self):
        cs = CodeSet(make_stream(5))
        view = cs.frozen_view()
        assert cs.frozen_view() is view
        assert view.codes() == cs.codes()
        if not cs.is_complete():
            cs.add(PathCode(((999, 0),)))
            assert cs.frozen_view() is not view  # refreshed after mutation
            assert view.codes() != cs.codes() or True  # view kept old state

    def test_adopt_from_shares_codes_and_stays_independent(self):
        for seed in range(25):
            source = CodeSet(make_stream(seed, mixed_variables=True))
            codes = source.codes()
            empty = CodeSet()
            assert empty.adopt_from(source.frozen_view(), codes) == bool(codes)
            assert empty.codes() is codes  # the frozenset itself is shared
            assert empty.wire_size() == source.wire_size()
            assert set(empty.missing_frontier()) == empty.missing_frontier_reference()
            # Mutating the adopter must not leak into the source.
            if not empty.is_complete():
                probe = PathCode(((777, 1),))
                empty.add(probe)
                assert not source.covers(probe)

    def test_adopt_from_requires_empty_target(self):
        target = CodeSet([PathCode(((0, 0),))])
        with pytest.raises(ValueError):
            target.adopt_from(CodeSet([PathCode(((1, 1),))]))


class TestCachedValueInvariants:
    def test_cached_hash_matches_recomputed(self):
        rng = random.Random(7)
        for _ in range(300):
            depth = rng.randint(0, 10)
            pairs = tuple((rng.randint(0, 500), rng.randint(0, 1)) for _ in range(depth))
            code = PathCode(pairs)
            assert hash(code) == hash(PathCode(pairs))
            assert hash(code) == hash(pairs)  # documented invariant
            rebuilt = PathCode.from_pairs(list(pairs))
            assert code == rebuilt and hash(code) == hash(rebuilt)

    def test_cached_wire_size_matches_formula(self):
        rng = random.Random(11)
        for _ in range(300):
            depth = rng.randint(0, 12)
            code = PathCode(tuple((lvl, rng.randint(0, 1)) for lvl in range(depth)))
            assert code.wire_size() == _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * depth
            # Derived codes built via the no-validate fast constructor keep
            # the invariant too.
            parent = code.parent()
            if parent is not None:
                assert parent.wire_size() == code.wire_size() - _PAIR_WIRE_BYTES
            sibling = code.sibling()
            if sibling is not None:
                assert sibling.wire_size() == code.wire_size()
            for ancestor in code.ancestors(include_self=True):
                assert (
                    ancestor.wire_size()
                    == _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * ancestor.depth
                )

    def test_key_path_matches_pairs(self):
        rng = random.Random(13)
        for _ in range(200):
            depth = rng.randint(0, 10)
            code = PathCode(tuple((rng.randint(0, 99), rng.randint(0, 1)) for _ in range(depth)))
            keys = code._key_path()
            assert keys == tuple((v << 1) | b for v, b in code.pairs)
            assert code._key_path() is keys  # cached after first request

    def test_pickle_roundtrip_preserves_invariants(self):
        rng = random.Random(17)
        for _ in range(50):
            depth = rng.randint(0, 8)
            code = PathCode(tuple((lvl, rng.randint(0, 1)) for lvl in range(depth)))
            clone = pickle.loads(pickle.dumps(code))
            assert clone == code
            assert hash(clone) == hash(code)
            assert clone.wire_size() == code.wire_size()
            assert clone._key_path() == code._key_path()

    def test_validation_boundary(self):
        """Public constructors validate; derivation never needs to."""
        with pytest.raises(ValueError):
            PathCode(((1, 2),))
        with pytest.raises(ValueError):
            PathCode.from_pairs([(1, 3)])
        with pytest.raises(ValueError):
            ROOT.child(4, 7)
        code = ROOT.child(1, 0).child(2, 1)
        assert code.sibling().pairs == ((1, 0), (2, 0))
        with pytest.raises(AttributeError):
            code.pairs = ()  # immutable


class TestModuleCoversFastPaths:
    def test_empty_iterables_never_cover(self):
        probe = ROOT.child(1, 0)
        assert not covers([], probe)
        assert not covers(set(), probe)
        assert not covers(frozenset(), probe)
        assert not covers(CodeSet(), probe)

    def test_container_types_agree(self):
        rng = random.Random(23)
        for seed in range(40):
            stream = make_stream(seed)
            reference = contract_reference(stream)
            cs = CodeSet(stream)
            for _ in range(5):
                depth = rng.randint(0, 8)
                probe = PathCode(
                    tuple((lvl, rng.randint(0, 1)) for lvl in range(depth))
                )
                expected = reference_covers(reference, probe)
                assert covers(reference, probe) == expected
                assert covers(frozenset(reference), probe) == expected
                assert covers(list(reference), probe) == expected
                assert covers(cs, probe) == expected
