"""Unit tests for the subproblem path encoding."""

import pytest

from repro.core.encoding import ROOT, PathCode, common_prefix_length


class TestConstruction:
    def test_root_is_empty(self):
        assert ROOT.depth == 0
        assert ROOT.is_root
        assert PathCode.root() == ROOT

    def test_child_appends_decision(self):
        code = ROOT.child(5, 1)
        assert code.pairs == ((5, 1),)
        assert code.depth == 1
        assert code.last_variable == 5
        assert code.last_value == 1

    def test_invalid_branch_value_rejected(self):
        with pytest.raises(ValueError):
            ROOT.child(3, 2)
        with pytest.raises(ValueError):
            PathCode(((1, 5),))

    def test_from_pairs_and_bits(self):
        a = PathCode.from_pairs([(1, 0), (4, 1)])
        assert a.pairs == ((1, 0), (4, 1))
        b = PathCode.from_bits([0, 1], variables=[1, 4])
        assert a == b
        c = PathCode.from_bits([1, 1, 0])
        assert c.variables() == (0, 1, 2)

    def test_from_bits_length_mismatch(self):
        with pytest.raises(ValueError):
            PathCode.from_bits([0, 1], variables=[3])

    def test_children_pair(self):
        left, right = ROOT.children(7)
        assert left.last_value == 0
        assert right.last_value == 1
        assert left.parent() == right.parent() == ROOT


class TestRelations:
    def test_parent_of_root_is_none(self):
        assert ROOT.parent() is None
        assert ROOT.sibling() is None

    def test_sibling_flips_last_value(self):
        code = ROOT.child(2, 0).child(5, 1)
        sib = code.sibling()
        assert sib.pairs == ((2, 0), (5, 0))
        assert sib.sibling() == code

    def test_ancestor_descendant(self):
        a = ROOT.child(1, 0)
        b = a.child(2, 1)
        c = b.child(3, 0)
        assert a.is_ancestor_of(c)
        assert c.is_descendant_of(a)
        assert not c.is_ancestor_of(a)
        assert not a.is_ancestor_of(a)  # strict by default
        assert a.is_ancestor_of(a, strict=False)

    def test_disjoint_subtrees(self):
        a = ROOT.child(1, 0)
        b = ROOT.child(1, 1)
        assert not a.is_ancestor_of(b)
        assert not b.is_ancestor_of(a)
        assert a.relation_to(b) == "disjoint"
        assert a.relation_to(a) == "equal"
        assert ROOT.relation_to(a) == "ancestor"
        assert a.relation_to(ROOT) == "descendant"

    def test_ancestors_iteration(self):
        code = ROOT.child(1, 0).child(2, 1).child(3, 0)
        ancestors = list(code.ancestors())
        assert ancestors == [
            ROOT.child(1, 0).child(2, 1),
            ROOT.child(1, 0),
            ROOT,
        ]
        with_self = list(code.ancestors(include_self=True))
        assert with_self[0] == code

    def test_common_prefix_length(self):
        a = ROOT.child(1, 0).child(2, 1).child(3, 0)
        b = ROOT.child(1, 0).child(2, 1).child(4, 1)
        assert common_prefix_length(a, b) == 2
        assert common_prefix_length(a, ROOT) == 0
        assert common_prefix_length(a, a) == 3


class TestEncodingAndSize:
    def test_encode_decode_roundtrip(self):
        code = ROOT.child(12, 0).child(3, 1).child(7, 1)
        assert PathCode.decode(code.encode()) == code
        assert PathCode.decode("()") == ROOT
        assert ROOT.encode() == "()"

    def test_wire_size_grows_with_depth(self):
        shallow = ROOT.child(1, 0)
        deep = shallow.child(2, 1).child(3, 0)
        assert deep.wire_size() > shallow.wire_size() > ROOT.wire_size()

    def test_ordering_is_total_and_deterministic(self):
        codes = [ROOT.child(1, 1), ROOT, ROOT.child(1, 0), ROOT.child(0, 1)]
        assert sorted(codes) == sorted(codes, key=lambda c: c.pairs)

    def test_hashable_and_usable_in_sets(self):
        a = ROOT.child(1, 0)
        b = PathCode(((1, 0),))
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_len_and_iter(self):
        code = ROOT.child(1, 0).child(2, 1)
        assert len(code) == 2
        assert list(code) == [(1, 0), (2, 1)]

    def test_bits_and_variables(self):
        code = ROOT.child(4, 1).child(2, 0)
        assert code.bits() == (1, 0)
        assert code.variables() == (4, 2)

    def test_last_variable_of_root_raises(self):
        with pytest.raises(ValueError):
            _ = ROOT.last_variable
        with pytest.raises(ValueError):
            _ = ROOT.last_value
