"""Unit and property-based tests for code sets and contraction."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codeset import CodeSet, contract, contract_reference, covers
from repro.core.encoding import ROOT, PathCode


def leaf_codes(depth):
    """All leaf codes of a perfect binary tree branching on variable=depth."""
    return [
        PathCode(tuple((level, bit) for level, bit in enumerate(bits)))
        for bits in itertools.product((0, 1), repeat=depth)
    ]


# --------------------------------------------------------------------------- #
# Unit tests
# --------------------------------------------------------------------------- #
class TestContractBasics:
    def test_two_siblings_merge_to_parent(self):
        left = ROOT.child(1, 0)
        right = ROOT.child(1, 1)
        assert contract([left, right]) == {ROOT}

    def test_descendant_subsumed_by_ancestor(self):
        parent = ROOT.child(1, 0)
        child = parent.child(2, 1)
        assert contract([parent, child]) == {parent}
        assert contract([child, parent]) == {parent}

    def test_cascade_to_root(self):
        codes = leaf_codes(3)
        assert contract(codes) == {ROOT}

    def test_partial_tree_does_not_reach_root(self):
        codes = leaf_codes(2)[:3]  # one leaf missing
        result = contract(codes)
        assert ROOT not in result
        # Three leaves of a depth-2 tree contract to one depth-1 node + one leaf.
        assert len(result) == 2

    def test_empty_input(self):
        assert contract([]) == set()

    def test_root_swallows_everything(self):
        codes = [ROOT, ROOT.child(1, 0), ROOT.child(1, 0).child(2, 1)]
        assert contract(codes) == {ROOT}

    def test_duplicates_are_harmless(self):
        a = ROOT.child(1, 0)
        assert contract([a, a, a]) == {a}


class TestCovers:
    def test_covers_self_and_descendants(self):
        a = ROOT.child(1, 0)
        assert covers([a], a)
        assert covers([a], a.child(2, 0))
        assert not covers([a], a.sibling())
        assert not covers([a], ROOT)

    def test_covers_accepts_codeset(self):
        cs = CodeSet([ROOT.child(1, 0)])
        assert covers(cs, ROOT.child(1, 0).child(5, 1))


class TestCodeSet:
    def test_add_returns_change_flag(self):
        cs = CodeSet()
        a = ROOT.child(1, 0)
        assert cs.add(a) is True
        assert cs.add(a) is False
        assert cs.add(a.child(2, 0)) is False  # covered by ancestor

    def test_sibling_merge_on_add(self):
        cs = CodeSet()
        cs.add(ROOT.child(1, 0))
        assert not cs.is_complete()
        cs.add(ROOT.child(1, 1))
        assert cs.is_complete()
        assert cs.codes() == frozenset({ROOT})

    def test_len_tracks_contracted_size(self):
        cs = CodeSet()
        cs.add(ROOT.child(1, 0).child(2, 0))
        cs.add(ROOT.child(1, 1))
        assert len(cs) == 2
        cs.add(ROOT.child(1, 0).child(2, 1))
        # left subtree merges, then merges with the right child -> root
        assert len(cs) == 1
        assert cs.is_complete()

    def test_update_and_merge(self):
        cs1 = CodeSet([ROOT.child(1, 0)])
        cs2 = CodeSet([ROOT.child(1, 1)])
        changed = cs1.merge(cs2)
        assert changed
        assert cs1.is_complete()

    def test_contains_is_exact_membership(self):
        a = ROOT.child(1, 0)
        cs = CodeSet([a])
        assert a in cs
        assert a.child(2, 0) not in cs  # covered, but not an element
        assert cs.covers(a.child(2, 0))

    def test_copy_is_independent(self):
        cs = CodeSet([ROOT.child(1, 0)])
        clone = cs.copy()
        clone.add(ROOT.child(1, 1))
        assert clone.is_complete()
        assert not cs.is_complete()

    def test_clear(self):
        cs = CodeSet([ROOT.child(1, 0)])
        cs.clear()
        assert len(cs) == 0
        assert not cs.is_complete()

    def test_equality_with_sets(self):
        a = ROOT.child(1, 0)
        assert CodeSet([a]) == {a}
        assert CodeSet([a]) == CodeSet([a])
        assert CodeSet([a]) != CodeSet([a.sibling()])

    def test_wire_size_and_max_depth(self):
        cs = CodeSet([ROOT.child(1, 0).child(2, 1), ROOT.child(1, 1)])
        assert cs.wire_size() > 0
        assert cs.max_depth() == 2
        assert CodeSet().max_depth() == 0

    def test_stats_count_operations(self):
        cs = CodeSet()
        cs.add(ROOT.child(1, 0))
        cs.add(ROOT.child(1, 1))
        assert cs.stats.insertions == 2
        assert cs.stats.merges == 1
        assert cs.stats.elementary_operations() >= 3
        snapshot = cs.stats.snapshot()
        assert snapshot["merges"] == 1

    def test_subsumption_removes_descendants(self):
        cs = CodeSet()
        deep = ROOT.child(1, 0).child(2, 0).child(3, 1)
        cs.add(deep)
        cs.add(ROOT.child(1, 0))
        assert cs.codes() == frozenset({ROOT.child(1, 0)})
        assert cs.stats.subsumptions >= 1

    def test_uncovered_siblings(self):
        cs = CodeSet([ROOT.child(1, 0).child(2, 0)])
        assert cs.uncovered_siblings() == {ROOT.child(1, 0).child(2, 1)}
        assert CodeSet([ROOT]).uncovered_siblings() == set()

    def test_missing_frontier_simple(self):
        cs = CodeSet([ROOT.child(1, 0).child(2, 0)])
        assert cs.missing_frontier() == {
            ROOT.child(1, 0).child(2, 1),
            ROOT.child(1, 1),
        }
        assert CodeSet().missing_frontier() == {ROOT}
        assert CodeSet([ROOT]).missing_frontier() == set()

    def test_bool(self):
        assert not CodeSet()
        assert CodeSet([ROOT.child(0, 0)])


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def arbitrary_codes(draw, max_depth=6, max_var=3):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    pairs = tuple(
        (draw(st.integers(min_value=0, max_value=max_var)), draw(st.integers(min_value=0, max_value=1)))
        for _ in range(depth)
    )
    return PathCode(pairs)


@st.composite
def tree_codes(draw, max_depth=6):
    """Codes from a consistent tree (variable at depth d is d)."""
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    bits = draw(st.lists(st.integers(min_value=0, max_value=1), min_size=depth, max_size=depth))
    return PathCode(tuple((level, bit) for level, bit in enumerate(bits)))


class TestContractionProperties:
    @given(st.lists(tree_codes(), max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_incremental_matches_reference(self, codes):
        """The trie-backed CodeSet equals the naive fixed-point oracle."""
        cs = CodeSet()
        for code in codes:
            cs.add(code)
        assert cs.codes() == frozenset(contract_reference(codes))
        assert contract(codes) == contract_reference(codes)

    @given(st.lists(arbitrary_codes(), max_size=15))
    @settings(max_examples=150, deadline=None)
    def test_incremental_matches_reference_arbitrary_variables(self, codes):
        cs = CodeSet(codes)
        assert cs.codes() == frozenset(contract_reference(codes))

    @given(st.lists(tree_codes(), max_size=20), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_order_independence(self, codes, rnd):
        shuffled = list(codes)
        rnd.shuffle(shuffled)
        assert CodeSet(codes).codes() == CodeSet(shuffled).codes()

    @given(st.lists(tree_codes(), max_size=20))
    @settings(max_examples=150, deadline=None)
    def test_contraction_is_idempotent(self, codes):
        once = contract(codes)
        twice = contract(once)
        assert once == twice

    @given(st.lists(tree_codes(max_depth=5), max_size=15), tree_codes(max_depth=5))
    @settings(max_examples=200, deadline=None)
    def test_coverage_preserved_by_contraction(self, codes, probe):
        """Contraction never changes which subproblems are covered."""
        naive_cover = any(
            c == probe or c.is_ancestor_of(probe) for c in codes
        )
        cs = CodeSet(codes)
        # Contraction may *add* coverage (sibling merges assert the parent),
        # but must never lose it.
        if naive_cover:
            assert cs.covers(probe)

    @given(st.lists(tree_codes(max_depth=5), max_size=15))
    @settings(max_examples=150, deadline=None)
    def test_contracted_invariant(self, codes):
        """No element is sibling, ancestor or descendant of another element."""
        result = CodeSet(codes).codes()
        for a in result:
            for b in result:
                if a is b or a == b:
                    continue
                assert not a.is_ancestor_of(b)
                assert a.sibling() != b

    @given(st.integers(min_value=1, max_value=5), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_all_leaves_contract_to_root(self, depth, rnd):
        codes = leaf_codes(depth)
        rnd.shuffle(codes)
        cs = CodeSet()
        for i, code in enumerate(codes):
            cs.add(code)
            if i < len(codes) - 1:
                assert not cs.is_complete()
        assert cs.is_complete()
        assert cs.codes() == frozenset({ROOT})

    @given(st.lists(tree_codes(max_depth=5), min_size=1, max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_wire_size_never_grows_under_contraction(self, codes):
        raw = sum(c.wire_size() for c in set(codes))
        assert CodeSet(codes).wire_size() <= raw
