"""Tests for the real multiprocessing execution backend."""

import sys

import pytest

from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.realexec.driver import LocalCluster, run_local_cluster
from repro.realexec.transport import Envelope, PipeRouter


@pytest.fixture(scope="module")
def small_tree():
    return generate_random_tree(
        RandomTreeSpec(nodes=61, mean_node_time=0.0, seed=23, name="real-exec-tree")
    )


class TestPipeRouter:
    def test_routing_between_workers(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            end_a.send(Envelope("a", "b", "hello"))
            assert end_b.poll(2.0)
            envelope = end_b.recv()
            assert envelope.payload == "hello"
            assert envelope.sender == "a"
        finally:
            router.stop()
        assert router.forwarded == 1

    def test_unknown_destination_dropped(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        router.start()
        try:
            end_a.send(Envelope("a", "ghost", "lost"))
            import time

            deadline = time.monotonic() + 2.0
            while router.dropped == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            router.stop()
        assert router.dropped == 1

    def test_duplicate_worker_rejected(self):
        router = PipeRouter()
        router.add_worker("a")
        with pytest.raises(ValueError):
            router.add_worker("a")


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestLocalCluster:
    def test_single_process_run(self, small_tree):
        result = run_local_cluster(small_tree, 1, prune=False, max_seconds=30.0)
        assert result.surviving_terminated
        assert result.solved_correctly
        outcome = result.outcomes["rworker-00"]
        assert outcome.nodes_expanded >= len(small_tree) - 1

    def test_three_process_run(self, small_tree):
        result = run_local_cluster(small_tree, 3, prune=False, max_seconds=40.0)
        assert result.surviving_terminated
        assert result.solved_correctly

    def test_killed_worker_is_survivable(self, small_tree):
        # Slow the nodes down so the cluster is still working when the kill
        # fires; otherwise the run may legitimately finish first.
        cluster = LocalCluster(small_tree, 3, prune=False, max_seconds=60.0, node_sleep=0.02)
        result = cluster.run(kill=["rworker-02"], kill_after=0.1)
        if not result.killed:
            pytest.skip("cluster finished before the kill could be injected")
        assert "rworker-02" in result.killed
        assert result.surviving_terminated
        assert result.solved_correctly

    def test_invalid_worker_count(self, small_tree):
        with pytest.raises(ValueError):
            LocalCluster(small_tree, 0)
