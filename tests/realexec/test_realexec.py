"""Tests for the real multiprocessing execution backend."""

import sys
import time
from contextlib import contextmanager

import pytest

from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.core.work_report import BestSolution
from repro.distributed.messages import WorkRequest
from repro.realexec.driver import LocalCluster, run_local_cluster
from repro.realexec.node import WorkerOutcome
from repro.realexec.transport import (
    Envelope,
    PipeRouter,
    decode_envelope,
    encode_envelope,
    envelope_route,
    recv_envelope,
    send_envelope,
)
from repro.wire import WireFormatError


@pytest.fixture(scope="module")
def small_tree():
    return generate_random_tree(
        RandomTreeSpec(nodes=61, mean_node_time=0.0, seed=23, name="real-exec-tree")
    )


def _wait_for(predicate, timeout=2.0):
    deadline = time.monotonic() + timeout
    while not predicate() and time.monotonic() < deadline:
        time.sleep(0.01)


class TestEnvelopeCodec:
    def test_envelope_round_trip(self):
        envelope = Envelope("a", "b", WorkRequest(requester="a", best=BestSolution(1.5, "a")))
        assert decode_envelope(encode_envelope(envelope)) == envelope

    def test_envelope_route_reads_header_only(self):
        frame = encode_envelope(Envelope("src", "dst", WorkRequest(requester="src")))
        assert envelope_route(frame) == ("src", "dst")

    def test_worker_outcome_round_trip(self):
        outcome = WorkerOutcome(
            name="w", terminated=True, best_value=-3.5,
            nodes_expanded=17, reports_sent=4, recoveries=1,
        )
        envelope = Envelope("w", "__driver__", outcome)
        assert decode_envelope(encode_envelope(envelope)).payload == outcome

    def test_non_envelope_frame_rejected(self):
        from repro import wire

        with pytest.raises(WireFormatError):
            decode_envelope(wire.encode(WorkRequest(requester="a")))

    def test_corrupt_body_length_rejected(self):
        """A frame whose declared body length disagrees with its bytes is
        corruption, never a delivered message."""
        frame = bytearray(
            encode_envelope(Envelope("a", "b", WorkRequest(requester="a")))
        )
        decode_envelope(bytes(frame))  # sanity: valid before corruption
        shrunk = bytearray(frame)
        shrunk[3] -= 1  # body-len varint now under-declares
        with pytest.raises(WireFormatError):
            decode_envelope(bytes(shrunk))
        grown = bytearray(frame)
        grown[3] += 1  # body-len varint now over-declares
        with pytest.raises(WireFormatError):
            decode_envelope(bytes(grown))


class TestPipeRouter:
    def test_routing_between_workers(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            request = WorkRequest(requester="a", best=BestSolution(2.0, "a"))
            send_envelope(end_a, Envelope("a", "b", request))
            assert end_b.poll(2.0)
            envelope = recv_envelope(end_b)
            assert envelope.payload == request
            assert envelope.sender == "a"
        finally:
            router.stop()
        assert router.forwarded == 1

    def test_per_link_byte_counters(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            frame = encode_envelope(Envelope("a", "b", WorkRequest(requester="a")))
            end_a.send_bytes(frame)
            end_a.send_bytes(frame)
            _wait_for(lambda: router.forwarded == 2)
        finally:
            router.stop()
        assert router.forwarded == 2
        assert router.bytes_forwarded == 2 * len(frame)
        assert router.link_bytes[("a", "b")] == 2 * len(frame)
        assert router.link_messages[("a", "b")] == 2

    def test_unknown_destination_dropped(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        router.start()
        try:
            send_envelope(end_a, Envelope("a", "ghost", WorkRequest(requester="a")))
            _wait_for(lambda: router.dropped > 0)
        finally:
            router.stop()
        assert router.dropped == 1

    def test_corrupt_routing_header_survivable(self):
        # A frame whose *header* parses but whose sender-length varint points
        # past the body must be dropped like any other corruption — and the
        # router thread must survive to forward later traffic (regression:
        # this used to leak a bare ValueError and kill the thread).
        from repro.realexec.transport import ENVELOPE_TAG
        from repro.wire.frame import FRAME_MAGIC
        from repro.wire.varint import write_uvarint

        evil = bytearray((FRAME_MAGIC, 1))
        write_uvarint(evil, ENVELOPE_TAG)
        write_uvarint(evil, 1)  # body: a single byte...
        evil.append(0x7F)  # ...claiming a 127-byte sender name follows
        with pytest.raises(WireFormatError):
            envelope_route(bytes(evil))

        router = PipeRouter()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            end_a.send_bytes(bytes(evil))
            _wait_for(lambda: router.dropped >= 1)
            send_envelope(end_a, Envelope("a", "b", WorkRequest(requester="a")))
            _wait_for(lambda: router.forwarded >= 1)
        finally:
            router.stop()
        assert router.dropped == 1
        assert router.forwarded == 1
        assert router.link_messages[("a", "b")] == 1

    def test_malformed_frame_dropped(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        router.add_worker("b")
        router.start()
        try:
            end_a.send_bytes(b"\x00not a frame")
            truncated = encode_envelope(Envelope("a", "b", WorkRequest(requester="a")))[:5]
            end_a.send_bytes(truncated)
            _wait_for(lambda: router.dropped >= 2)
        finally:
            router.stop()
        assert router.dropped == 2
        assert router.forwarded == 0

    def test_duplicate_worker_rejected(self):
        router = PipeRouter()
        router.add_worker("a")
        with pytest.raises(ValueError):
            router.add_worker("a")


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestLocalCluster:
    def test_single_process_run(self, small_tree):
        result = run_local_cluster(small_tree, 1, prune=False, max_seconds=30.0)
        assert result.surviving_terminated
        assert result.solved_correctly
        outcome = result.outcomes["rworker-00"]
        assert outcome.nodes_expanded >= len(small_tree) - 1

    def test_three_process_run(self, small_tree):
        result = run_local_cluster(small_tree, 3, prune=False, max_seconds=40.0)
        assert result.surviving_terminated
        assert result.solved_correctly

    def test_killed_worker_is_survivable(self, small_tree):
        # Slow the nodes down so the cluster is still working when the kill
        # fires; otherwise the run may legitimately finish first.
        cluster = LocalCluster(small_tree, 3, prune=False, max_seconds=60.0, node_sleep=0.02)
        result = cluster.run(kill=["rworker-02"], kill_after=0.1)
        if not result.killed:
            pytest.skip("cluster finished before the kill could be injected")
        assert "rworker-02" in result.killed
        assert result.surviving_terminated
        assert result.solved_correctly

    def test_invalid_worker_count(self, small_tree):
        with pytest.raises(ValueError):
            LocalCluster(small_tree, 0)

    def test_wire_generations_must_match_worker_count(self, small_tree):
        with pytest.raises(ValueError):
            LocalCluster(small_tree, 3, wire_generations=[1, 2])

    def test_wire_generations_must_be_known(self, small_tree):
        # An out-of-range generation would make the worker reject every
        # frame and spin deaf until its deadline: fail fast instead.
        with pytest.raises(ValueError):
            LocalCluster(small_tree, 2, wire_generations=[1, 0])
        with pytest.raises(ValueError):
            LocalCluster(small_tree, 2, wire_generations=[99, 2])


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestMixedVersionCluster:
    """Rolling upgrade over real pipes: generation-1 and generation-2
    workers coexist.  Old workers drop the upgraded peers' delta-gossip
    frames at the pipe boundary (unsupported version, indistinguishable from
    loss), everyone keeps converging via the generation-1 report traffic,
    and the run still terminates on the optimum."""

    def test_mixed_generations_terminate_and_solve(self, small_tree):
        cluster = LocalCluster(
            small_tree,
            4,
            prune=False,
            max_seconds=40.0,
            wire_generations=[2, 1, 2, 1],
        )
        result = cluster.run()
        assert result.surviving_terminated
        assert result.solved_correctly

    def test_all_v1_cluster_still_works(self, small_tree):
        """A not-yet-upgraded cluster runs the paper's literal protocol."""
        cluster = LocalCluster(
            small_tree, 3, prune=False, max_seconds=40.0, wire_generations=[1, 1, 1]
        )
        result = cluster.run()
        assert result.surviving_terminated
        assert result.solved_correctly

    def test_v1_to_v2_and_v2_to_v1_round_trips(self):
        """Both directions of a mixed pair: snapshots parse everywhere,
        deltas only at generation 2."""
        from repro.core.completion import CompletionTracker
        from repro.core.encoding import PathCode
        from repro.distributed.messages import DeltaGossipMsg, TableGossipMsg
        from repro.wire import UnsupportedVersionError

        old, new = CompletionTracker("old"), CompletionTracker("new")
        for tracker in (old, new):
            tracker.record_completed(PathCode(((0, 0), (1, 1))))

        # v1 sender -> v2 receiver: whole snapshot, decoded fine at gen 2.
        snapshot_frame = encode_envelope(
            Envelope("old", "new", TableGossipMsg(old.build_table_snapshot()))
        )
        received = decode_envelope(snapshot_frame)  # gen-2 receiver
        new.merge_snapshot(received.payload.snapshot)

        # v2 sender -> v1 receiver: the delta frame is rejected at gen 1...
        delta_frame = encode_envelope(
            Envelope("new", "old", DeltaGossipMsg(new.build_delta_snapshot("old")))
        )
        with pytest.raises(UnsupportedVersionError):
            decode_envelope(delta_frame, max_version=1)
        # ...but a gen-2 receiver reads it, so the upgrade is forward-safe.
        assert decode_envelope(delta_frame).payload.delta.sender == "new"


class TestUdsTransport:
    """The Unix-domain-socket transport behind the Transport seam."""

    def test_routing_between_endpoints(self):
        from repro.realexec.transport import UdsRouter

        router = UdsRouter()
        endpoint_a = router.add_worker("a")
        endpoint_b = router.add_worker("b")
        router.start()
        try:
            conn_a = endpoint_a.connect()
            conn_b = endpoint_b.connect()
            request = WorkRequest(requester="a", best=BestSolution(2.0, "a"))
            send_envelope(conn_a, Envelope("a", "b", request))
            assert conn_b.poll(2.0)
            envelope = recv_envelope(conn_b)
            assert envelope.payload == request and envelope.sender == "a"
            conn_a.close()
            conn_b.close()
        finally:
            router.stop()
        assert router.forwarded == 1
        assert router.kind_bytes.get("work_request", 0) > 0
        assert router.transport == "uds"

    def test_unknown_identity_rejected(self):
        from repro.realexec.transport import UdsEndpoint, UdsRouter

        router = UdsRouter()
        endpoint = router.add_worker("known")
        router.start()
        try:
            stranger = UdsEndpoint(router.address, "stranger").connect()
            conn = endpoint.connect()
            send_envelope(conn, Envelope("known", "known", WorkRequest(requester="known")))
            assert conn.poll(2.0)  # loopback proves the router is healthy
            recv_envelope(conn)
            conn.close()
            stranger.close()
        finally:
            router.stop()
        assert "stranger" not in router._parent_ends

    def test_duplicate_worker_rejected(self):
        from repro.realexec.transport import UdsRouter

        router = UdsRouter()
        router.add_worker("a")
        with pytest.raises(ValueError):
            router.add_worker("a")
        router.stop()

    def test_create_router_names(self):
        from repro.realexec.transport import PipeRouter, UdsRouter, create_router

        assert isinstance(create_router("pipe"), PipeRouter)
        uds = create_router("uds")
        assert isinstance(uds, UdsRouter)
        uds.stop()
        with pytest.raises(ValueError):
            create_router("carrier-pigeon")


class TestPayloadKindAccounting:
    def test_router_counts_bytes_per_kind(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            frame = encode_envelope(Envelope("a", "b", WorkRequest(requester="a")))
            end_a.send_bytes(frame)
            end_a.send_bytes(frame)
            _wait_for(lambda: router.forwarded == 2)
        finally:
            router.stop()
        assert router.kind_bytes == {"work_request": 2 * len(frame)}
        assert router.kind_messages == {"work_request": 2}

    def test_envelope_route_info_reads_payload_tag(self):
        from repro.realexec.transport import envelope_route_info, payload_kind
        from repro.wire.frame import Tag

        frame = encode_envelope(Envelope("src", "dst", WorkRequest(requester="src")))
        sender, dest, tag = envelope_route_info(frame)
        assert (sender, dest) == ("src", "dst")
        assert tag == int(Tag.WORK_REQUEST)
        assert payload_kind(tag) == "work_request"
        assert payload_kind(None) == "unknown"
        assert payload_kind(9999) == "tag_9999"


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestLocalClusterOverUds:
    def test_three_process_run_over_uds(self, small_tree):
        result = run_local_cluster(
            small_tree, 3, prune=False, max_seconds=40.0, transport="uds"
        )
        assert result.transport == "uds"
        assert result.surviving_terminated
        assert result.solved_correctly
        assert result.bytes_forwarded > 0
        assert result.bytes_by_kind.get("work_report", 0) > 0

    def test_unknown_transport_rejected(self, small_tree):
        with pytest.raises(ValueError):
            LocalCluster(small_tree, 2, transport="carrier-pigeon")


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestKillSchedule:
    def test_each_group_killed_at_its_own_delay(self, small_tree):
        cluster = LocalCluster(small_tree, 3, prune=False, max_seconds=60.0, node_sleep=0.02)
        result = cluster.run(
            kill_schedule=[(0.1, ["rworker-01"]), (0.3, ["rworker-02"])]
        )
        if len(result.killed) < 2:
            pytest.skip("cluster finished before both kills could be injected")
        assert result.killed == ["rworker-01", "rworker-02"]
        assert result.surviving_terminated
        assert result.solved_correctly


class TestDeadConnectionHandling:
    def test_closed_worker_connection_is_dropped(self):
        router = PipeRouter()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            end_a.close()  # worker "a" dies
            _wait_for(lambda: "a" not in router._parent_ends)
            assert "a" not in router._parent_ends
            # The router keeps forwarding for the survivors.
            send_envelope(end_b, Envelope("b", "b", WorkRequest(requester="b")))
            assert end_b.poll(2.0)
            recv_envelope(end_b)
        finally:
            router.stop()
        assert router.forwarded == 1

    def test_silent_uds_client_does_not_block_registration(self, monkeypatch):
        import multiprocessing.connection as mpc

        from repro.realexec.transport import UdsRouter

        monkeypatch.setattr(UdsRouter, "IDENTITY_TIMEOUT", 0.1)
        router = UdsRouter()
        endpoint = router.add_worker("late")
        router.start()
        try:
            # A client that connects but never identifies (killed mid-start).
            silent = mpc.Client(router.address, family="AF_UNIX")
            conn = endpoint.connect()  # must still register despite the stall
            send_envelope(conn, Envelope("late", "late", WorkRequest(requester="late")))
            assert conn.poll(2.0)
            recv_envelope(conn)
            silent.close()
            conn.close()
        finally:
            router.stop()
        assert router.forwarded == 1


class TestTcpTransport:
    """The TCP transport and the shared stream event loop behind it."""

    def test_routing_between_endpoints(self):
        from repro.realexec.transport import TcpRouter

        router = TcpRouter()
        endpoint_a = router.add_worker("a")
        endpoint_b = router.add_worker("b")
        router.start()
        try:
            conn_a = endpoint_a.connect()
            conn_b = endpoint_b.connect()
            request = WorkRequest(requester="a", best=BestSolution(2.0, "a"))
            send_envelope(conn_a, Envelope("a", "b", request))
            assert conn_b.poll(2.0)
            envelope = recv_envelope(conn_b)
            assert envelope.payload == request and envelope.sender == "a"
            conn_a.close()
            conn_b.close()
        finally:
            router.stop()
        assert router.forwarded == 1
        assert router.kind_bytes.get("work_request", 0) > 0
        assert router.transport == "tcp"

    def test_ephemeral_port_resolved_before_start(self):
        from repro.realexec.transport import TcpRouter

        router = TcpRouter()
        endpoint = router.add_worker("a")
        assert endpoint.port != 0
        assert endpoint.port == router.address[1]
        router.stop()

    def test_nodelay_set_on_both_sides(self):
        import socket

        from repro.realexec.transport import TcpRouter

        router = TcpRouter()
        endpoint = router.add_worker("a")
        router.start()
        try:
            conn = endpoint.connect()
            assert conn._sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
            _wait_for(lambda: "a" in router._parent_ends)
            peer = router._parent_ends["a"]
            assert peer.sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
            conn.close()
        finally:
            router.stop()

    def test_unknown_identity_rejected(self):
        from repro.realexec.transport import TcpEndpoint, TcpRouter

        router = TcpRouter()
        endpoint = router.add_worker("known")
        host, port = router.address
        router.start()
        try:
            stranger = TcpEndpoint(host, port, "stranger").connect()
            conn = endpoint.connect()
            send_envelope(conn, Envelope("known", "known", WorkRequest(requester="known")))
            assert conn.poll(2.0)  # loopback proves the router is healthy
            recv_envelope(conn)
            conn.close()
            stranger.close()
        finally:
            router.stop()
        assert "stranger" not in router._parent_ends

    def test_worker_can_dial_before_listener_exists(self):
        import threading

        from repro.realexec.transport import TcpRouter

        router = TcpRouter()
        endpoint = router.add_worker("early")
        received = []

        def dial():
            conn = endpoint.connect()  # retries with backoff until accept
            send_envelope(conn, Envelope("early", "early", WorkRequest(requester="early")))
            if conn.poll(5.0):
                received.append(recv_envelope(conn))
            conn.close()

        # The endpoint dials before start(); only the listener's backlog
        # exists (the socket is bound at add_worker), so the connection
        # parks until the event loop starts accepting.
        dialer = threading.Thread(target=dial)
        dialer.start()
        time.sleep(0.2)
        router.start()
        dialer.join(timeout=10.0)
        router.stop()
        assert len(received) == 1

    def test_partial_frames_reassembled(self):
        """A frame dribbled in one byte at a time still routes intact."""
        import socket as socket_mod

        from repro.realexec.transport import (
            TcpRouter,
            _encode_identity,
            encode_envelope,
        )

        router = TcpRouter()
        router.add_worker("drip")
        receiver_endpoint = router.add_worker("sink")
        host, port = router.address
        router.start()
        try:
            sink = receiver_endpoint.connect()
            raw = socket_mod.create_connection((host, port))
            raw.sendall(_encode_identity("drip"))
            frame = encode_envelope(
                Envelope("drip", "sink", WorkRequest(requester="drip"))
            )
            for index in range(len(frame)):
                raw.sendall(frame[index : index + 1])
                time.sleep(0.001)
            assert sink.poll(2.0)
            envelope = recv_envelope(sink)
            assert envelope.sender == "drip" and envelope.destination == "sink"
            raw.close()
            sink.close()
        finally:
            router.stop()
        assert router.forwarded == 1

    def test_desynchronised_stream_dropped(self):
        """Garbage that cannot start a frame closes the connection."""
        import socket as socket_mod

        from repro.realexec.transport import TcpRouter, _encode_identity

        router = TcpRouter()
        router.add_worker("noise")
        router.start()
        host, port = router.address
        try:
            raw = socket_mod.create_connection((host, port))
            raw.sendall(_encode_identity("noise"))
            _wait_for(lambda: "noise" in router._parent_ends)
            raw.sendall(b"\xff\xff\xff not a frame")
            _wait_for(lambda: "noise" not in router._parent_ends)
            assert "noise" not in router._parent_ends
            raw.close()
        finally:
            router.stop()
        assert router.dropped >= 1

    def test_slow_receiver_does_not_block_other_links(self):
        """Write-queue backpressure: a worker that never drains its socket
        costs only its own frames; forwarding for everyone else continues."""
        from repro.realexec.transport import ENVELOPE_TAG, TcpRouter
        from repro.wire.frame import FRAME_MAGIC
        from repro.wire.varint import write_string, write_uvarint

        def big_frame(dest: str) -> bytes:
            body = bytearray()
            write_string(body, "src")
            write_string(body, dest)
            blob = b"\0" * 16384
            write_uvarint(body, len(blob))
            body += blob
            frame = bytearray((FRAME_MAGIC, 1))
            write_uvarint(frame, ENVELOPE_TAG)
            write_uvarint(frame, len(body))
            frame += body
            return bytes(frame)

        import socket as socket_mod

        from repro.realexec.transport import StreamConnection, _encode_identity

        router = TcpRouter()
        router.WRITE_BUFFER_LIMIT = 8192
        src_endpoint = router.add_worker("src")
        router.add_worker("slow")
        fast_endpoint = router.add_worker("fast")
        host, port = router.address
        router.start()
        try:
            src = src_endpoint.connect()
            # The slow worker: tiny receive buffer, never reads — so the
            # kernel path to it fills almost immediately.
            slow_sock = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
            slow_sock.setsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_RCVBUF, 4096)
            slow_sock.connect((host, port))
            slow_sock.sendall(_encode_identity("slow"))
            slow = StreamConnection(slow_sock)
            fast = fast_endpoint.connect()
            _wait_for(lambda: "slow" in router._parent_ends)
            peer_sock = router._parent_ends["slow"].sock
            peer_sock.setsockopt(socket_mod.SOL_SOCKET, socket_mod.SO_SNDBUF, 4096)
            flood = big_frame("slow")
            for _ in range(200):  # ~3.2MB >> socket buffers + write cap
                src.send_bytes(flood)
            src.send_bytes(big_frame("fast"))
            assert fast.poll(5.0)
            fast.recv_bytes()
            _wait_for(lambda: router.dropped > 0, timeout=5.0)
            slow.close()
            fast.close()
            src.close()
        finally:
            router.stop()
        assert router.dropped > 0
        assert router.link_messages.get(("src", "fast")) == 1

    def test_create_router_tcp(self):
        from repro.realexec.transport import TcpRouter, create_router

        router = create_router("tcp")
        assert isinstance(router, TcpRouter)
        router.stop()


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestLocalClusterOverTcp:
    def test_three_process_run_over_tcp(self, small_tree):
        result = run_local_cluster(
            small_tree, 3, prune=False, max_seconds=40.0, transport="tcp"
        )
        assert result.transport == "tcp"
        assert result.surviving_terminated
        assert result.solved_correctly
        assert result.bytes_forwarded > 0
        assert result.bytes_by_kind.get("work_report", 0) > 0


@contextmanager
def _capture_transport_warnings():
    """Collect WARNING+ records from the transport logger, handler-attached.

    ``caplog`` relies on propagation to the root logger, which
    ``repro.obs.logging.configure_logging`` disables on the ``repro``
    hierarchy — so any earlier test touching the CLI logging path would
    make a caplog-based assertion here order-dependent.
    """
    import logging

    records = []
    handler = logging.Handler(level=logging.WARNING)
    handler.emit = records.append
    logger = logging.getLogger("repro.realexec.transport")
    previous_level = logger.level
    logger.setLevel(logging.WARNING)
    logger.addHandler(handler)
    try:
        yield records
    finally:
        logger.removeHandler(handler)
        logger.setLevel(previous_level)


class TestRouterStopRegression:
    """`stop()` must be idempotent and never silently leak a hung thread."""

    def test_hung_join_warns_instead_of_silently_leaking(self):
        import threading

        router = PipeRouter()
        router.add_worker("a")
        hang = threading.Event()

        def stubborn_run():
            hang.wait(30.0)  # ignores router._stop entirely

        router._run = stubborn_run
        router.start()
        original_join = threading.Thread.join

        def fast_join(self, timeout=None):
            return original_join(self, timeout=0.05 if timeout else timeout)

        threading.Thread.join = fast_join
        try:
            with _capture_transport_warnings() as records:
                router.stop()
        finally:
            threading.Thread.join = original_join
            hang.set()
        assert router._thread is None
        assert any("did not stop" in record.getMessage() for record in records)
        # Idempotent: a second stop is a quiet no-op.
        with _capture_transport_warnings() as records:
            router.stop()
        assert not records

    def test_clean_stop_does_not_warn(self):
        router = PipeRouter()
        router.add_worker("a")
        router.start()
        with _capture_transport_warnings() as records:
            router.stop()
            router.stop()  # idempotent
        assert not any("did not stop" in record.getMessage() for record in records)


class TestForwardLatencyHistograms:
    """Satellite: router forward latencies observe into MetricsRegistry."""

    def _route_one(self, router_cls):
        from repro.obs import MetricsRegistry
        from repro.realexec.transport import resolve_connection

        router = router_cls()
        router.metrics = MetricsRegistry()
        end_a = router.add_worker("a")
        end_b = router.add_worker("b")
        router.start()
        try:
            conn_a = resolve_connection(end_a)
            conn_b = resolve_connection(end_b)
            send_envelope(conn_a, Envelope("a", "b", WorkRequest(requester="a")))
            assert conn_b.poll(2.0)
            recv_envelope(conn_b)
            _wait_for(lambda: router.forwarded == 1)
        finally:
            router.stop()
        return router

    @pytest.mark.parametrize("transport", ["pipe", "uds", "tcp"])
    def test_latency_histogram_per_link_and_transport(self, transport):
        from repro.realexec.transport import TRANSPORTS

        router = self._route_one(TRANSPORTS[transport])
        snapshot = router.metrics.snapshot()
        key = (
            f"router_forward_latency_seconds{{link=a->b,transport={transport}}}"
        )
        assert key in snapshot["histograms"]
        state = snapshot["histograms"][key]
        assert state["count"] == 1
        assert state["sum"] >= 0.0

    def test_ingest_router_merges_live_histograms(self):
        from repro.obs import MetricsRegistry
        from repro.obs.ingest import ingest_router

        router = self._route_one(PipeRouter)
        merged = MetricsRegistry()
        ingest_router(merged, router)
        snapshot = merged.snapshot()
        key = "router_forward_latency_seconds{link=a->b,transport=pipe}"
        assert key in snapshot["histograms"]
        assert snapshot["histograms"][key]["count"] == 1
        # The counter families land beside the histograms, same registry.
        assert snapshot["counters"]["router_messages_forwarded"] == 1


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestSigstopIsolation:
    def test_suspended_tcp_worker_stalls_only_its_own_link(self, small_tree):
        """A SIGSTOPped worker's frames are dropped (paused set); every
        other link keeps its forward latency — the p99 acceptance bar."""
        from repro.obs import TelemetryConfig

        cluster = LocalCluster(
            small_tree,
            3,
            prune=False,
            max_seconds=60.0,
            node_sleep=0.02,
            transport="tcp",
            telemetry=TelemetryConfig(trace=False, metrics=True),
        )
        result = cluster.run(
            churn_schedule=[(0.2, "rworker-02", "leave"), (0.6, "rworker-02", "return")],
            churn_mode="suspend",
        )
        assert result.surviving_terminated
        assert result.solved_correctly
        assert result.rejoined == ["rworker-02"]
        registry = result.telemetry.metrics
        assert registry is not None
        latency_links = {
            labels: hist
            for (name, labels), hist in registry._histograms.items()
            if name == "router_forward_latency_seconds"
        }
        assert latency_links, "no forward-latency histograms recorded"
        for labels, hist in latency_links.items():
            link = dict(labels)["link"]
            if "rworker-02" in link:
                continue
            p99 = hist.quantile(0.99)
            assert p99 is not None and p99 <= 0.1, (
                f"link {link} p99 regressed to {p99}"
            )
