"""Unit tests for the declarative Scenario API (spec, registry, CLI)."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.distributed import AlgorithmConfig
from repro.scenario import (
    CRITICAL,
    FailureSpec,
    Scenario,
    WorkloadSpec,
    backend_names,
    get_backend,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
)
from repro.scenario.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestWorkloadSpec:
    def test_named_paper_workloads_build(self):
        assert len(WorkloadSpec(kind="tiny").build()) == 151
        tree = WorkloadSpec(kind="figure3", scale=0.05).build()
        assert len(tree) >= 101

    def test_random_workload_is_seed_deterministic(self):
        a = WorkloadSpec(kind="random", nodes=61, seed=3).build()
        b = WorkloadSpec(kind="random", nodes=61, seed=3).build()
        assert a.to_dict() == b.to_dict()

    def test_knapsack_workload_records_a_tree(self):
        tree = WorkloadSpec(kind="knapsack", nodes=8, mean_node_time=0.01, seed=1).build()
        assert len(tree) > 1 and tree.optimal_value() is not None

    def test_explicit_tree_workload(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=31, seed=9))
        spec = WorkloadSpec(kind="tree", tree=tree)
        assert spec.build() is tree

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="nope")
        with pytest.raises(ValueError):
            WorkloadSpec(kind="tree")  # no tree given
        with pytest.raises(ValueError):
            WorkloadSpec(nodes=0)


class TestFailureSpec:
    def test_defaults_to_half_fraction(self):
        spec = FailureSpec(victims=(1,))
        assert spec.at_fraction == 0.5 and spec.at_time is None

    def test_time_and_fraction_are_exclusive(self):
        with pytest.raises(ValueError):
            FailureSpec(victims=(0,), at_time=1.0, at_fraction=0.5)

    def test_victims_resolve_to_backend_names(self):
        spec = FailureSpec(victims=(1, "worker-02", CRITICAL, "manager"))
        names = ["cworker-00", "cworker-01", "cworker-02"]
        resolved = spec.resolve_victims(names, critical="manager")
        assert resolved == ["cworker-01", "cworker-02", "manager", "manager"]

    def test_victim_index_out_of_range(self):
        with pytest.raises(ValueError):
            FailureSpec(victims=(7,)).resolve_victims(["a", "b"], critical="a")

    def test_wall_clock_delay_fallbacks(self):
        assert FailureSpec(victims=(0,), after_seconds=0.2).wall_clock_delay() == 0.2
        assert FailureSpec(victims=(0,), at_time=3.0).wall_clock_delay() == 3.0
        assert FailureSpec(victims=(0,)).wall_clock_delay() == 0.5


class TestScenario:
    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(n_workers=0)
        with pytest.raises(ValueError):
            Scenario(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            Scenario(n_workers=3, wire_generations=(1, 2))

    def test_with_overrides_returns_new_frozen_copy(self):
        base = Scenario(n_workers=3)
        bigger = base.with_overrides(n_workers=5, seed=9)
        assert base.n_workers == 3 and bigger.n_workers == 5 and bigger.seed == 9
        with pytest.raises(AttributeError):
            bigger.n_workers = 7  # type: ignore[misc]

    def test_needs_reference_run(self):
        assert not Scenario().needs_reference_run()
        assert Scenario(
            failures=(FailureSpec(victims=(0,), at_fraction=0.3),)
        ).needs_reference_run()
        assert not Scenario(
            failures=(FailureSpec(victims=(0,), at_time=2.0),)
        ).needs_reference_run()

    def test_config_rides_along(self):
        scenario = Scenario(config=AlgorithmConfig(report_threshold=3))
        assert scenario.config.report_threshold == 3


class TestRegistry:
    def test_paper_scenarios_are_registered(self):
        names = scenario_names()
        for expected in ("quickstart", "figure3", "crash-storm", "rolling-upgrade", "late-joiner"):
            assert expected in names
        assert all(s.description for s in list_scenarios())

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("does-not-exist")


class TestBackendRegistry:
    def test_four_backends_registered(self):
        assert backend_names() == ["central", "dib", "realexec", "simulated"]

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("quantum")
        with pytest.raises(KeyError):
            run_scenario(Scenario(), backend="quantum")


class TestResultSchema:
    @pytest.fixture(scope="class")
    def result(self):
        scenario = Scenario(
            name="schema-check",
            workload=WorkloadSpec(kind="random", nodes=41, mean_node_time=0.002, seed=2),
            n_workers=2,
            seed=4,
        )
        return run_scenario(scenario, backend="simulated")

    def test_summary_and_row_shapes(self, result):
        summary = result.summary()
        assert summary["backend"] == "simulated" and summary["terminated"]
        row = result.as_row()
        assert set(row) == {
            "backend", "workers", "makespan_s", "speedup", "nodes",
            "recoveries", "crashed", "terminated", "correct",
        }

    def test_worker_summaries_normalised(self, result):
        assert set(result.workers) == {"worker-00", "worker-01"}
        for worker in result.workers.values():
            assert worker.as_dict()["terminated"] is True

    def test_report_renders(self, result):
        text = result.report()
        assert "schema-check" in text and "solved_correctly" in text

    def test_raw_result_is_preserved(self, result):
        from repro.distributed.stats import RunResult

        assert isinstance(result.raw, RunResult)


class TestCli:
    def test_list_scenarios(self, capsys):
        assert cli_main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out and "figure3" in out

    def test_run_with_overrides(self, capsys):
        code = cli_main(
            ["run", "quickstart", "--backend", "simulated", "--workers", "2", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert re.search(r"solved_correctly\s*: yes", out)

    def test_compare_small(self, capsys):
        code = cli_main(
            ["compare", "quickstart", "--backends", "simulated,dib", "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated" in out and "dib" in out

    def test_unknown_scenario_exit_code(self, capsys):
        assert cli_main(["run", "no-such-scenario"]) == 2

    def test_module_entry_point_figure3(self):
        """The acceptance-criterion invocation, scaled down for test speed."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "figure3", "--backend", "simulated",
             "--scale", "0.2", "--workers", "4"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert re.search(r"solved_correctly\s*: yes", proc.stdout)
        assert "speedup" in proc.stdout


class TestCliShrinkOverrides:
    def test_shrinking_workers_reports_dropped_semantics(self, capsys):
        # late-joiner partitions worker-03 away; at --workers 2 neither the
        # partition nor any failure victims survive, and the CLI says so.
        code = cli_main(["run", "late-joiner", "--workers", "2"])
        assert code == 0
        captured = capsys.readouterr()
        # The shrink note goes through the repro.* logger (stderr), not stdout.
        assert "failure semantics changed" in captured.err
        assert re.search(r"solved_correctly\s*: yes", captured.out)


class TestReviewRegressions:
    def test_out_of_range_canonical_victim_raises(self):
        spec = FailureSpec(victims=("worker-07",))
        with pytest.raises(ValueError):
            spec.resolve_victims(["w0", "w1", "w2"], critical="w0")
        # Non-canonical strings still pass through (backend-specific nodes).
        assert FailureSpec(victims=("manager",)).resolve_victims(
            ["w0"], critical="w0"
        ) == ["manager"]

    def test_scale_honoured_by_tiny_and_knapsack(self):
        full = WorkloadSpec(kind="tiny").build()
        small = WorkloadSpec(kind="tiny", scale=0.3).build()
        assert len(small) < len(full)
        big_items = WorkloadSpec(kind="knapsack", nodes=10, seed=1).build()
        few_items = WorkloadSpec(kind="knapsack", nodes=10, scale=0.5, seed=1).build()
        assert len(few_items) < len(big_items)

    def test_unused_uds_router_leaves_no_socket_dir(self, tmp_path, monkeypatch):
        import tempfile as _tempfile

        from repro.realexec.transport import create_router

        monkeypatch.setattr(_tempfile, "tempdir", str(tmp_path))
        router = create_router("uds")
        assert list(tmp_path.iterdir()) == []  # nothing created yet
        router.add_worker("a")  # endpoint creation materialises the socket dir
        assert len(list(tmp_path.iterdir())) == 1
        router.stop()
        assert list(tmp_path.iterdir()) == []

    def test_partition_naming_missing_worker_raises(self):
        from repro.distributed import NetworkConfig
        from repro.simulation.network import Partition

        scenario = Scenario(
            workload=WorkloadSpec(kind="random", nodes=21, mean_node_time=0.001, seed=1),
            n_workers=2,
            network=NetworkConfig(
                partitions=(
                    Partition(
                        start=0.0,
                        end=1.0,
                        group_a=frozenset({"worker-05"}),
                        group_b=frozenset({"worker-00"}),
                    ),
                )
            ),
        )
        with pytest.raises(ValueError):
            run_scenario(scenario, backend="simulated")
        with pytest.raises(ValueError):
            run_scenario(scenario, backend="dib")
