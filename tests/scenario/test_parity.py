"""Cross-backend parity: one seeded scenario, every backend, one answer.

The acceptance bar of the unified Scenario API: the same frozen
:class:`~repro.scenario.spec.Scenario` runs unmodified on all four backends
and returns a :class:`~repro.scenario.result.ScenarioResult` with an
identical schema; the three simulated backends agree on the optimal solution
value and terminate; the realexec backend is smoke-tested on the quickstart
scenario over the ``pipe``, ``uds`` and ``tcp`` transports.
"""

import sys

import pytest

from repro.scenario import (
    AvailabilitySpec,
    ChurnSpec,
    FailureSpec,
    Scenario,
    ScenarioResult,
    WorkloadSpec,
    compare_backends,
    get_scenario,
    run_scenario,
)

SIMULATED_BACKENDS = ("simulated", "central", "dib")

#: The shared parity workload: small enough that every backend is quick,
#: big enough that load balancing and reporting actually happen.
PARITY = Scenario(
    name="parity",
    workload=WorkloadSpec(kind="random", nodes=81, mean_node_time=0.005, seed=23),
    n_workers=3,
    seed=5,
)


class TestSimulatedBackendParity:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_backends(PARITY, SIMULATED_BACKENDS)

    def test_all_terminate(self, results):
        for name, result in results.items():
            assert result.terminated, f"{name} did not terminate"

    def test_all_agree_on_the_optimum(self, results):
        optimum = PARITY.build_tree().optimal_value()
        for name, result in results.items():
            assert result.solved_correctly, f"{name} missed the optimum"
            assert result.best_value == pytest.approx(optimum), name
        values = {round(r.best_value, 9) for r in results.values()}
        assert len(values) == 1

    def test_identical_result_schema(self, results):
        shapes = {name: tuple(sorted(result.summary())) for name, result in results.items()}
        assert len(set(shapes.values())) == 1, shapes
        for result in results.values():
            assert isinstance(result, ScenarioResult)
            assert result.n_workers == PARITY.n_workers
            assert result.bytes_total > 0 and result.messages_total > 0
            assert sum(result.bytes_by_kind.values()) == result.bytes_total

    def test_per_worker_stats_cover_all_workers(self, results):
        for name, result in results.items():
            assert len(result.workers) == PARITY.n_workers, name
            assert sum(w.nodes_expanded for w in result.workers.values()) == (
                result.total_nodes_expanded
            ), name


class TestCrashParity:
    """A worker crash (not the critical node) is survivable on every design."""

    @pytest.fixture(scope="class")
    def results(self):
        scenario = PARITY.with_overrides(
            name="parity-crash",
            n_workers=4,
            failures=(FailureSpec(victims=(2,), at_fraction=0.4),),
        )
        return compare_backends(scenario, SIMULATED_BACKENDS)

    def test_all_survive_and_solve(self, results):
        for name, result in results.items():
            assert result.terminated, f"{name} did not survive the crash"
            assert result.solved_correctly, name
            assert len(result.crashed_workers) == 1, name

    def test_fault_tolerance_counters_engage(self, results):
        # Each design recovers differently (complement / reassignment /
        # redo), but the normalised counter must register the recovery work.
        engaged = {name: result.recoveries for name, result in results.items()}
        assert any(count > 0 for count in engaged.values()), engaged


class TestCriticalNodeAsymmetry:
    """The paper's headline claim, expressed as one scenario override."""

    def test_only_the_paper_mechanism_survives_critical_crash(self):
        from repro.scenario import CRITICAL

        scenario = PARITY.with_overrides(
            name="parity-critical",
            failures=(FailureSpec(victims=(CRITICAL,), at_fraction=0.4),),
        )
        results = compare_backends(scenario, SIMULATED_BACKENDS)
        assert results["simulated"].terminated and results["simulated"].solved_correctly
        assert not results["central"].terminated
        assert not results["dib"].terminated


#: The churn parity workload: long enough that the churn windows land well
#: inside the run on every backend.
CHURN_PARITY = Scenario(
    name="churn-parity",
    workload=WorkloadSpec(kind="random", nodes=201, mean_node_time=0.02, seed=23),
    n_workers=4,
    seed=5,
)

#: Seeded churn processes: a blip (leave and return), a permanent departure,
#: and a distribution-driven process with an explicit horizon.
CHURN_CASES = {
    "blip": ChurnSpec(
        availability=(AvailabilitySpec(worker=2, down=((0.3, 1.0),)),)
    ),
    "depart": ChurnSpec(
        availability=(AvailabilitySpec(worker=1, down=((0.4, float("inf")),)),)
    ),
    "drawn": ChurnSpec(
        mean_uptime=2.0, mean_downtime=0.3, start_after=0.4, horizon=2.5
    ),
}


class TestChurnParity:
    """Seeded churn matrix: every backend still reports the true optimum.

    ``simulated`` honours the full leave/return process (live failure
    detection, rejoin through gossip first contact); ``central`` and ``dib``
    have no rejoin path, so each churned worker's first leave becomes a
    permanent crash there — under either interpretation the reported
    optimum must equal the failure-free optimum and the run must terminate.
    """

    @pytest.mark.parametrize("case", sorted(CHURN_CASES))
    @pytest.mark.parametrize("seed", [5, 17])
    def test_churn_matrix_agrees_on_the_optimum(self, case, seed):
        scenario = CHURN_PARITY.with_overrides(
            name=f"churn-parity-{case}-{seed}", seed=seed, churn=CHURN_CASES[case]
        )
        optimum = scenario.build_tree().optimal_value()
        results = compare_backends(scenario, SIMULATED_BACKENDS)
        for name, result in results.items():
            assert result.terminated, f"{name} did not survive churn ({case})"
            assert result.solved_correctly, f"{name} missed the optimum ({case})"
            assert result.best_value == pytest.approx(optimum), (name, case)

    def test_churn_summary_schema_is_uniform(self):
        scenario = CHURN_PARITY.with_overrides(churn=CHURN_CASES["blip"])
        results = compare_backends(scenario, SIMULATED_BACKENDS)
        shapes = {tuple(sorted(r.summary())) for r in results.values()}
        assert len(shapes) == 1
        # Only the simulated backend has a rejoin path; the blip registers.
        assert results["simulated"].rejoins == 1
        assert results["simulated"].unavailable_time == pytest.approx(0.7)

    def test_churn_is_rejected_with_shards(self):
        with pytest.raises(ValueError):
            CHURN_PARITY.with_overrides(churn=CHURN_CASES["blip"], shards=2)


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX multiprocessing only")
class TestRealexecSmoke:
    """The quickstart scenario on real processes, every transport."""

    @pytest.mark.parametrize("transport", ["pipe", "uds", "tcp"])
    def test_quickstart_scenario_runs(self, transport):
        scenario = get_scenario("quickstart").with_overrides(
            failures=(), transport=transport, max_seconds=40.0
        )
        result = run_scenario(scenario, backend="realexec")
        assert result.backend == "realexec"
        assert result.terminated
        assert result.solved_correctly
        assert result.raw.transport == transport
        assert result.bytes_total > 0
        assert sum(result.bytes_by_kind.values()) == result.bytes_total

    def test_realexec_summary_schema_matches_simulated(self):
        real = run_scenario(
            get_scenario("quickstart").with_overrides(failures=()), backend="realexec"
        )
        sim = run_scenario(PARITY, backend="simulated")
        assert sorted(real.summary()) == sorted(sim.summary())

    @pytest.mark.parametrize("transport", ["pipe", "tcp"])
    def test_rolling_upgrade_scenario_on_realexec(self, transport):
        scenario = get_scenario("rolling-upgrade").with_overrides(transport=transport)
        result = run_scenario(scenario, backend="realexec")
        assert result.terminated and result.solved_correctly
        assert result.raw.n_workers == 4
        assert result.raw.transport == transport


@pytest.mark.skipif(sys.platform.startswith("win"), reason="POSIX signals only")
class TestRealexecChurnSmoke:
    """Kill+rejoin on real OS processes, over every transport.

    One worker is killed mid-run and respawned fresh (``has_root=False``)
    shortly after; ``node_sleep`` stretches the run so the churn window
    lands while everyone is still working.  The rejoined process must
    re-converge through the gossip first-contact path and terminate with
    the survivors on the true optimum.
    """

    @pytest.mark.parametrize("transport", ["pipe", "uds", "tcp"])
    def test_kill_and_rejoin(self, transport):
        scenario = Scenario(
            name=f"realexec-churn-{transport}",
            workload=WorkloadSpec(kind="random", nodes=121, mean_node_time=0.005, seed=31),
            n_workers=4,
            seed=31,
            transport=transport,
            node_sleep=0.02,
            max_seconds=60.0,
            churn=ChurnSpec(
                availability=(AvailabilitySpec(worker=2, down=((0.25, 0.6),)),),
                mode="restart",
            ),
        )
        result = run_scenario(scenario, backend="realexec")
        assert result.raw.rejoined == ["rworker-02"]
        assert result.raw.churned_out == []
        assert result.crashed_workers == ()
        assert result.rejoins == 1
        assert result.unavailable_time > 0.0
        assert result.terminated, "rejoined worker (or a survivor) never terminated"
        assert result.solved_correctly
        # The rejoined incarnation reported an outcome like any survivor.
        assert "rworker-02" in result.raw.outcomes
