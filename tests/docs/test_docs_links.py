"""Documentation cross-reference checker: the docs cannot rot silently.

Three families of references are validated against the working tree:

* **markdown links** ``[text](target)`` in every ``docs/*.md`` file and in
  ``ROADMAP.md`` whose target is a relative path (external URLs and pure
  anchors are skipped) must point at an existing file or directory;
* **repo paths** named in backticks (``docs/...``, ``benchmarks/...``,
  ``tests/...``, ``examples/...``, ``src/...``) in the same files must
  exist — a glob pattern must match at least one file; and
* **module paths** (``repro.foo.bar``) named in ROADMAP.md and
  ``docs/ARCHITECTURE.md`` must resolve to real modules of the source tree.

The checker is deliberately conservative: it only asserts about reference
shapes it positively recognises, so prose stays free.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
DOC_FILES = DOCS + [REPO_ROOT / "ROADMAP.md"]

#: Backticked tokens that look like repo-relative paths.
_PATH_RE = re.compile(
    r"`((?:docs|benchmarks|tests|examples|src)/[A-Za-z0-9_./*\-]+)`"
)
#: Backticked tokens that look like module paths rooted at ``repro``.
_MODULE_RE = re.compile(r"`(repro(?:\.[a-zA-Z_][a-zA-Z0-9_]*)+)")
#: Markdown links (ignores images; targets split off any #anchor).
_LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")


def _module_exists(dotted: str) -> bool:
    parts = dotted.split(".")
    base = REPO_ROOT / "src" / Path(*parts)
    return base.with_suffix(".py").exists() or (base / "__init__.py").exists()


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = (doc.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken markdown links: {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_backticked_repo_paths_exist(doc):
    text = doc.read_text()
    broken = []
    for token in _PATH_RE.findall(text):
        token = token.rstrip(".")
        if "*" in token:
            if not list(REPO_ROOT.glob(token)):
                broken.append(token)
        elif not (REPO_ROOT / token).exists():
            broken.append(token)
    assert not broken, f"{doc.name}: repo paths that do not exist: {broken}"


@pytest.mark.parametrize(
    "doc",
    [REPO_ROOT / "ROADMAP.md", REPO_ROOT / "docs" / "ARCHITECTURE.md"],
    ids=lambda p: p.name,
)
def test_named_module_paths_exist(doc):
    text = doc.read_text()
    broken = sorted(
        {
            dotted
            for dotted in _MODULE_RE.findall(text)
            if not _module_exists(dotted)
        }
    )
    assert not broken, f"{doc.name}: module paths that do not resolve: {broken}"


def test_docs_directory_is_covered():
    """Every docs/*.md file is reachable from ROADMAP.md or another doc —
    an unreferenced spec is a spec nobody will find."""
    referenced = set()
    for doc in DOC_FILES:
        for target in _LINK_RE.findall(doc.read_text()):
            if not target.startswith(("http://", "https://", "mailto:", "#")):
                referenced.add((doc.parent / target.split("#", 1)[0]).resolve())
        for token in _PATH_RE.findall(doc.read_text()):
            candidate = REPO_ROOT / token
            if candidate.suffix == ".md":
                referenced.add(candidate.resolve())
    unreferenced = [doc.name for doc in DOCS if doc.resolve() not in referenced]
    assert not unreferenced, f"docs never referenced anywhere: {unreferenced}"
