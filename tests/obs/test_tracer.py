"""Unit tests for the structured tracer and the Chrome trace exporter."""

import json

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.chrome import (
    category_span_counts,
    chrome_trace_dict,
    load_chrome_trace,
    timeline_from_chrome,
    write_chrome_trace,
)
from repro.simulation.tracing import TimelineTrace


class TestTracer:
    def test_span_and_event_recording(self):
        tracer = Tracer(process="engine")
        tracer.span("step", 1.0, 0.5, category="engine", args={"n": 3})
        tracer.event("crash", ts=2.0, process="w0", category="engine")
        assert len(tracer) == 2
        records = list(tracer.iter_records())
        assert records[0] == {
            "ts": 1.0, "dur": 0.5, "process": "engine",
            "category": "engine", "name": "step", "args": {"n": 3},
        }
        # Instant events omit "dur" entirely.
        assert "dur" not in records[1]
        assert records[1]["process"] == "w0"

    def test_default_process_and_processes_listing(self):
        tracer = Tracer(process="router")
        tracer.span("fwd", 0.0, 0.1)
        tracer.span("fwd", 0.1, 0.1, process="other")
        assert tracer.processes() == ["other", "router"]

    def test_clock_and_timed_context(self):
        ticks = iter([10.0, 10.5])
        tracer = Tracer(process="p", clock=lambda: next(ticks))
        with tracer.timed("work", category="worker"):
            pass
        ((ts, dur, _, category, name, _),) = tracer.records()
        assert (ts, dur, category, name) == (10.0, 0.5, "worker", "work")

    def test_time_origin_shifts_export_only(self):
        tracer = Tracer(process="p")
        tracer.span("s", 100.0, 1.0)
        tracer.time_origin = 99.0
        assert tracer.records()[0][0] == 100.0  # raw record untouched
        assert next(tracer.iter_records())["ts"] == pytest.approx(1.0)

    def test_merge_records_accepts_dicts_and_tuples(self):
        source = Tracer(process="w0")
        source.span("run", 0.0, 2.0, category="worker")
        merged = Tracer(process="driver")
        merged.merge_records(source.iter_records())  # dict form
        merged.merge_records(source.records())  # tuple form
        assert len(merged) == 2
        assert all(record[2] == "w0" for record in merged.records())

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(process="p")
        tracer.span("a", 0.0, 1.0, category="c", args={"k": "v"})
        tracer.event("b", ts=0.5)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        NULL_TRACER.span("x", 0.0, 1.0)
        NULL_TRACER.event("y")
        with NULL_TRACER.timed("z"):
            pass  # nothing recorded, nothing raised


class TestChromeExport:
    def _tracer(self):
        tracer = Tracer(process="engine")
        tracer.span("run", 0.0, 2.0, category="engine")
        tracer.span("working", 0.0, 1.5, process="w0", category="worker")
        tracer.event("crash", ts=1.0, process="w0", category="engine")
        return tracer

    def test_document_shape(self):
        doc = chrome_trace_dict(self._tracer(), meta={"backend": "simulated"})
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in metadata} == {"engine", "w0"}
        assert len(spans) == 2 and len(instants) == 1
        # Chrome timestamps are microseconds.
        run = next(e for e in spans if e["name"] == "run")
        assert run["dur"] == pytest.approx(2_000_000.0)
        assert doc["repro"]["meta"]["backend"] == "simulated"

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._tracer())
        doc = load_chrome_trace(path)
        assert category_span_counts(doc) == {"engine": 1, "worker": 1}

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_chrome_trace(path)

    def test_timeline_round_trip(self):
        timeline = TimelineTrace()
        timeline.set_state("w0", "working", 0.0)
        timeline.set_state("w0", "idle", 2.0)
        timeline.set_state("w1", "working", 0.5)
        timeline.finish(3.0)
        tracer = Tracer(process="engine")
        tracer.add_timeline(timeline)
        rebuilt = timeline_from_chrome(chrome_trace_dict(tracer))
        assert rebuilt.processes() == ["w0", "w1"]
        assert rebuilt.state_at("w0", 1.0) == "working"
        assert rebuilt.state_at("w0", 2.5) == "idle"
        assert rebuilt.end_time() == pytest.approx(3.0)
