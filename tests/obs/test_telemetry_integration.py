"""End-to-end telemetry: one merged trace per run, on every backend.

The acceptance bar for the observability subsystem: a ``quickstart``
(simulated) run and a scaled ``figure3`` (realexec) run each produce a
Chrome-trace document with complete spans from at least three layers, the
metrics registry aggregates run-wide totals (including across engine
shards), and none of it changes simulated outcomes or leaks into runs that
did not ask for telemetry.
"""

import pytest

from repro.obs.chrome import category_span_counts, load_chrome_trace
from repro.scenario import Scenario, TelemetryConfig, WorkloadSpec, run_scenario
from repro.scenario.cli import main as cli_main


def _quickstart(telemetry):
    from repro.scenario import get_scenario

    return get_scenario("quickstart").with_overrides(telemetry=telemetry)


class TestSimulatedTelemetry:
    def test_quickstart_trace_covers_three_layers(self):
        result = run_scenario(_quickstart(TelemetryConfig()), backend="simulated")
        telemetry = result.telemetry
        assert telemetry is not None and telemetry.tracer is not None
        document = telemetry.chrome_trace()
        counts = category_span_counts(document)
        assert len(counts) >= 3
        assert counts.get("worker", 0) > 0
        assert counts.get("transport", 0) > 0
        assert counts.get("engine", 0) > 0
        assert document["repro"]["meta"]["backend"] == "simulated"
        assert document["repro"]["meta"]["clock"] == "sim-seconds"

    def test_telemetry_does_not_change_outcomes_or_expose_trace(self):
        plain = run_scenario(_quickstart(None), backend="simulated")
        traced = run_scenario(_quickstart(TelemetryConfig()), backend="simulated")
        assert plain.telemetry is None
        assert traced.makespan == plain.makespan
        assert traced.best_value == plain.best_value
        assert traced.total_nodes_expanded == plain.total_nodes_expanded
        # Telemetry must not flip on the legacy RunResult.trace surface.
        assert traced.raw.trace is None

    def test_metrics_snapshot_has_engine_network_and_worker_families(self):
        result = run_scenario(_quickstart(TelemetryConfig()), backend="simulated")
        counters = result.telemetry.snapshot()["counters"]
        families = {key.split("{")[0] for key in counters}
        assert "engine_events_processed" in families
        assert "net_bytes_sent" in families
        assert "worker_nodes_expanded" in families

    def test_metrics_only_config_skips_tracer(self):
        result = run_scenario(
            _quickstart(TelemetryConfig(trace=False, metrics=True)),
            backend="simulated",
        )
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.tracer is None
        assert telemetry.metrics is not None


class TestShardedCounterAggregation:
    def _scenario(self, shards):
        return Scenario(
            name="shard-parity",
            workload=WorkloadSpec(kind="random", nodes=151, seed=11),
            n_workers=8,
            seed=11,
            shards=shards,
        )

    def test_sharded_counters_are_run_wide_totals(self):
        single = run_scenario(self._scenario(1), backend="simulated")
        sharded = run_scenario(self._scenario(2), backend="simulated")
        # The sharded run reports one aggregated counter dict, covering the
        # same families as the single engine plus the shard coordination.
        for key in ("events_processed", "entity_steps", "peak_heap_len", "compactions"):
            assert key in single.raw.engine_counters
            assert key in sharded.raw.engine_counters
        assert sharded.raw.engine_counters["shards"] == 2
        assert sharded.raw.engine_counters["epochs"] > 0
        assert sharded.raw.engine_counters["cross_shard_messages"] >= 0
        # Cross-engine parity holds on the solution, not the event
        # interleaving (the epoch barrier changes tie-breaking).
        assert sharded.best_value == pytest.approx(single.best_value)
        assert sharded.terminated and single.terminated

    def test_process_mode_counters_match_inprocess(self):
        from repro.distributed.runner import run_tree_simulation

        spec = self._scenario(2)
        tree = spec.build_tree()
        inproc = run_tree_simulation(
            tree, 8, seed=11, shards=2, shard_processes=False
        )
        procs = run_tree_simulation(
            tree, 8, seed=11, shards=2, shard_processes=True
        )
        assert procs.engine_counters == inproc.engine_counters


class TestRealexecTelemetry:
    def test_figure3_scaled_trace_covers_three_layers(self, tmp_path):
        scenario = Scenario(
            name="figure3-telemetry",
            workload=WorkloadSpec(kind="figure3", scale=0.05, seed=7),
            n_workers=3,
            seed=7,
            max_seconds=20.0,
            telemetry=TelemetryConfig(),
        )
        result = run_scenario(scenario, backend="realexec")
        assert result.terminated
        telemetry = result.telemetry
        assert telemetry is not None and telemetry.tracer is not None
        path = tmp_path / "figure3.json"
        telemetry.write_chrome_trace(path)
        document = load_chrome_trace(path)
        counts = category_span_counts(document)
        assert len(counts) >= 3
        assert counts.get("worker", 0) >= 3  # one run span per worker
        assert counts.get("transport", 0) > 0  # router forwards
        assert counts.get("driver", 0) >= 1  # the cluster run span
        # All processes merged into one trace.
        processes = telemetry.tracer.processes()
        assert "driver" in processes and "router" in processes
        assert any(p.startswith("rworker-") for p in processes)
        # Worker metrics crossed the wire and merged with the router's.
        counters = telemetry.snapshot()["counters"]
        families = {key.split("{")[0] for key in counters}
        assert "router_messages_forwarded" in families
        assert "worker_frames_received" in families

    def test_realexec_without_telemetry_has_no_frames(self):
        scenario = Scenario(
            name="figure3-quiet",
            workload=WorkloadSpec(kind="figure3", scale=0.05, seed=7),
            n_workers=2,
            seed=7,
            max_seconds=20.0,
        )
        result = run_scenario(scenario, backend="realexec")
        assert result.terminated
        assert result.telemetry is None
        assert "worker_telemetry" not in result.raw.bytes_by_kind


class TestCliTelemetry:
    def test_run_trace_flag_then_inspect(self, tmp_path, capsys):
        trace_path = tmp_path / "quickstart.json"
        code = cli_main(["run", "quickstart", "--trace", str(trace_path)])
        assert code == 0
        assert trace_path.exists()
        document = load_chrome_trace(trace_path)
        assert len(category_span_counts(document)) >= 3
        capsys.readouterr()

        code = cli_main(["inspect", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "categories" in out
        assert "worker-00" in out  # the Gantt rows
        assert "top counters" in out

    def test_run_metrics_flag_prints_exposition(self, capsys):
        code = cli_main(["run", "quickstart", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "--- metrics ---" in out
        assert "# TYPE engine_events_processed counter" in out

    def test_inspect_rejects_non_trace(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert cli_main(["inspect", str(bogus)]) == 2
        assert "error" in capsys.readouterr().out
