"""Unit tests for the unified labeled metrics registry."""

import pytest

from repro.obs import MetricsRegistry, RssSampler
from repro.obs.metrics import _read_rss_mb


class TestCountersAndGauges:
    def test_counter_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("msgs", worker="w0")
        b = registry.counter("msgs", worker="w0")
        c = registry.counter("msgs", worker="w1")
        assert a is b and a is not c
        a.inc()
        a.inc(4)
        assert a.value == 5 and c.value == 0

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("m", worker="w0", kind="g")
        b = registry.counter("m", kind="g", worker="w0")
        assert a is b
        assert len(registry) == 1

    def test_gauge_tracks_peak(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("heap")
        gauge.set(5.0)
        gauge.set(9.0)
        gauge.set(3.0)
        assert gauge.value == 3.0
        assert gauge.peak == 9.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.05)
        assert list(hist.counts) == [1, 2, 1]  # <=0.1, <=1.0, +inf


class TestSnapshotAndMerge:
    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("msgs", worker="w0").inc(3)
        registry.gauge("heap").set(7.0)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_merge_adds_counters_and_maxes_peaks(self):
        a = MetricsRegistry()
        a.counter("msgs").inc(2)
        a.gauge("heap").set(10.0)
        b = MetricsRegistry()
        b.counter("msgs").inc(3)
        b.gauge("heap").set(4.0)
        a.merge(b)
        assert a.counter("msgs").value == 5
        gauge = a.gauge("heap")
        assert gauge.value == 4.0  # last value wins
        assert gauge.peak == 10.0  # peak is the max across both

    def test_merge_histograms_bucketwise(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        hist = a.histogram("lat", buckets=(1.0,))
        assert hist.count == 2 and list(hist.counts) == [1, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = a.snapshot()
        other = MetricsRegistry()
        other.histogram("lat", buckets=(2.0,))
        with pytest.raises(ValueError):
            other.merge_snapshot(snapshot)


class TestPrometheusText:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("msgs_total", worker="w0").inc(2)
        registry.gauge("heap_len").set(11.0)
        text = registry.to_prometheus()
        assert "# TYPE msgs_total counter" in text
        assert "msgs_total{worker=w0} 2" in text
        assert "# TYPE heap_len gauge" in text
        assert "heap_len 11" in text


class TestRssSampler:
    def test_samples_into_gauge(self):
        if _read_rss_mb() is None:
            pytest.skip("no /proc on this platform")
        registry = MetricsRegistry()
        gauge = registry.gauge("process_rss_mb")
        with RssSampler(gauge, interval=0.01) as sampler:
            _ = [bytearray(1024) for _ in range(100)]
        assert sampler.samples >= 1
        assert sampler.peak_mb is not None and sampler.peak_mb > 0
        assert gauge.peak == sampler.peak_mb


class TestHistogramQuantile:
    def test_quantile_picks_covering_bucket_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for _ in range(99):
            hist.observe(0.0005)
        hist.observe(0.05)
        assert hist.quantile(0.5) == 0.001
        assert hist.quantile(0.99) == 0.001
        assert hist.quantile(1.0) == 0.1

    def test_quantile_overflow_and_empty(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.001,))
        assert hist.quantile(0.99) is None
        hist.observe(5.0)
        assert hist.quantile(0.99) == float("inf")


class TestForwardLatencyFamilyRoundTrip:
    """The realexec router's latency histograms survive snapshot/merge."""

    def test_snapshot_merge_round_trip(self):
        from repro.realexec.transport import FORWARD_LATENCY_BUCKETS

        source = MetricsRegistry()
        hist = source.histogram(
            "router_forward_latency_seconds",
            buckets=FORWARD_LATENCY_BUCKETS,
            link="a->b",
            transport="tcp",
        )
        for value in (0.00002, 0.0002, 0.002):
            hist.observe(value)
        merged = MetricsRegistry.from_snapshot(source.snapshot())
        merged.merge_snapshot(source.snapshot())  # once more: buckets add
        out = merged.histogram(
            "router_forward_latency_seconds",
            buckets=FORWARD_LATENCY_BUCKETS,
            link="a->b",
            transport="tcp",
        )
        assert out.count == 6
        assert out.sum == pytest.approx(2 * (0.00002 + 0.0002 + 0.002))
        assert out.bounds == tuple(FORWARD_LATENCY_BUCKETS)
        key = "router_forward_latency_seconds{link=a->b,transport=tcp}"
        assert key in merged.snapshot()["histograms"]
        # And the family renders in the Prometheus exposition.
        assert "router_forward_latency_seconds_bucket" in merged.to_prometheus()
