"""Tests for the engine's tuple heap and automatic cancelled-event compaction."""

import random

from repro.simulation.engine import SimulationEngine


class TestAutoCompaction:
    def test_run_compacts_when_cancelled_dominate(self):
        """Cancelling most of a large heap triggers in-run compaction."""
        engine = SimulationEngine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(500)]
        for handle in handles[:400]:
            handle.cancel()
        assert engine.pending_events() == 500
        engine.run()
        assert engine.compactions >= 1
        assert engine.events_processed == 100
        assert engine.pending_events() == 0

    def test_small_heaps_never_compact(self):
        engine = SimulationEngine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(20)]
        for handle in handles[:15]:
            handle.cancel()
        engine.run()
        assert engine.compactions == 0
        assert engine.events_processed == 5

    def test_compaction_preserves_order_and_determinism(self):
        """Execution order is identical with and without heavy cancellation."""
        rng = random.Random(42)
        times = [rng.uniform(0.0, 100.0) for _ in range(800)]

        def run(cancel):
            engine = SimulationEngine()
            order = []
            handles = []
            for i, t in enumerate(times):
                handles.append(engine.schedule(t, lambda i=i: order.append(i)))
            if cancel:
                for i, handle in enumerate(handles):
                    if i % 4 != 0:
                        handle.cancel()
            engine.run()
            return order, engine

        full_order, _ = run(cancel=False)
        kept_order, engine = run(cancel=True)
        assert kept_order == [i for i in full_order if i % 4 == 0]
        assert engine.compactions >= 1

    def test_cancel_after_fire_does_not_corrupt_counter(self):
        engine = SimulationEngine()
        fired = []
        handles = [
            engine.schedule(float(i + 1), lambda i=i: fired.append(i)) for i in range(5)
        ]
        engine.run()
        for handle in handles:
            handle.cancel()  # late cancel: must not count as in-heap garbage
        assert engine._cancelled_in_heap == 0
        assert fired == [0, 1, 2, 3, 4]

    def test_callbacks_scheduling_during_compacting_run(self):
        """Events scheduled from callbacks land in the same (compacted) heap."""
        engine = SimulationEngine()
        seen = []

        def chain(i):
            seen.append(i)
            if i < 300:
                engine.schedule(1.0, lambda: chain(i + 1))

        # Lots of garbage to force at least one compaction mid-run.
        garbage = [engine.schedule(float(i + 1000), lambda: None) for i in range(300)]
        for handle in garbage:
            handle.cancel()
        engine.schedule(0.5, lambda: chain(0))
        engine.run()
        assert seen == list(range(301))
        assert engine.compactions >= 1

    def test_drain_cancelled_counts_as_compaction(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        engine.drain_cancelled()
        assert engine.pending_events() == 1
        assert engine.compactions == 1
