"""Tests for the sharded simulation engine (:mod:`repro.simulation.sharding`).

The sharded engine must be a *transparent* scale-out of the single-engine
runner: same optimum, same termination, deterministic for a fixed seed, and
bit-identical between its in-process and OS-process execution modes.  The
single-engine and sharded runs interleave events differently (the epoch
barrier changes tie-breaking), so cross-engine parity is asserted on the
solution and termination, while in-process-vs-process parity — the same
partition, rng streams and event order — is asserted bit-for-bit.
"""

import pytest

from repro.bnb.pool import SelectionRule
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.distributed.config import AlgorithmConfig
from repro.distributed.runner import NetworkConfig, run_tree_simulation, worker_names
from repro.simulation.failures import CrashEvent
from repro.simulation.network import LatencyModel
from repro.simulation.sharding import (
    ShardedBnBSimulation,
    run_sharded_tree_simulation,
    shard_members,
)


def small_tree(seed=3, nodes=151, mean_time=0.05):
    return generate_random_tree(
        RandomTreeSpec(nodes=nodes, mean_node_time=mean_time, seed=seed, name=f"t{seed}")
    )


def fast_config(**overrides):
    base = dict(selection_rule=SelectionRule.DEPTH_FIRST)
    base.update(overrides)
    return AlgorithmConfig(**base)


def run(tree, n_workers, **kwargs):
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("prune", False)
    kwargs.setdefault("compute_uniprocessor_time", False)
    return run_tree_simulation(tree, n_workers, **kwargs)


class TestShardMembers:
    def test_round_robin_partition(self):
        names = worker_names(7)
        parts = shard_members(names, 3)
        assert parts == [
            ["worker-00", "worker-03", "worker-06"],
            ["worker-01", "worker-04"],
            ["worker-02", "worker-05"],
        ]
        # Worker 0 (the one seeded with the root) lands in shard 0.
        assert parts[0][0] == names[0]

    def test_every_worker_in_exactly_one_shard(self):
        names = worker_names(100)
        parts = shard_members(names, 8)
        flat = [n for part in parts for n in part]
        assert sorted(flat) == sorted(names)
        assert len(flat) == len(set(flat))


class TestValidation:
    def test_more_shards_than_workers_rejected(self):
        tree = small_tree()
        with pytest.raises(ValueError, match="cannot split"):
            run(tree, 4, shards=9)

    def test_zero_shards_rejected(self):
        tree = small_tree()
        with pytest.raises(ValueError, match="at least 1"):
            run(tree, 4, shards=0)

    def test_tracing_rejected_with_shards(self):
        tree = small_tree()
        with pytest.raises(ValueError, match="tracing"):
            run(tree, 4, shards=2, enable_trace=True)

    def test_zero_base_latency_rejected(self):
        # The base latency is the conservative lookahead; without it the
        # epoch barrier cannot guarantee causal cross-shard delivery.
        tree = small_tree()
        network = NetworkConfig(latency=LatencyModel(base=0.0, per_byte=0.0))
        with pytest.raises(ValueError, match="lookahead"):
            run(tree, 4, shards=2, network=network)

    def test_single_shard_allows_zero_latency(self):
        tree = small_tree(nodes=51)
        network = NetworkConfig(latency=LatencyModel(base=0.0, per_byte=0.0))
        result = run(tree, 2, shards=1, network=network)
        assert result.solved_correctly


class TestShardedParity:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_optimum_and_termination_match_single_engine(self, shards):
        tree = small_tree(seed=11)
        single = run(tree, 8)
        sharded = run(tree, 8, shards=shards, shard_processes=False)
        assert sharded.solved_correctly
        assert sharded.all_terminated
        assert sharded.best_value == pytest.approx(single.best_value)
        assert sharded.best_value == pytest.approx(tree.optimal_value())
        assert len(sharded.workers) == 8

    def test_shard_count_parity_and_determinism(self):
        # Different shard counts co-locate simultaneous events differently,
        # so tie-breaking (and hence the exact makespan) may drift — but the
        # solution and termination must not, and a fixed (seed, shards) pair
        # must reproduce bit-identically.
        tree = small_tree(seed=5)
        r2 = run(tree, 12, shards=2, shard_processes=False)
        r4 = run(tree, 12, shards=4, shard_processes=False)
        assert r2.best_value == pytest.approx(r4.best_value)
        assert r2.best_value == pytest.approx(tree.optimal_value())
        assert r2.all_terminated and r4.all_terminated
        again = run(tree, 12, shards=4, shard_processes=False)
        assert again.makespan == r4.makespan
        assert again.total_nodes_expanded == r4.total_nodes_expanded
        assert again.engine_counters["events_processed"] == (
            r4.engine_counters["events_processed"]
        )

    def test_process_mode_bit_identical_to_inprocess(self):
        tree = small_tree(seed=7, nodes=101)
        inproc = run(tree, 6, shards=2, shard_processes=False)
        procs = run(tree, 6, shards=2, shard_processes=True)
        assert procs.makespan == inproc.makespan
        assert procs.total_nodes_expanded == inproc.total_nodes_expanded
        assert procs.total_bytes_sent == inproc.total_bytes_sent
        assert procs.engine_counters["events_processed"] == (
            inproc.engine_counters["events_processed"]
        )
        assert procs.solved_correctly and procs.all_terminated

    def test_parity_at_100_workers(self):
        tree = small_tree(seed=13, nodes=301)
        single = run(tree, 100)
        sharded = run(tree, 100, shards=8, shard_processes=False)
        assert sharded.solved_correctly
        assert sharded.all_terminated
        assert sharded.best_value == pytest.approx(single.best_value)

    def test_crash_schedule_parity(self):
        tree = small_tree(seed=17, nodes=201)
        failures = [CrashEvent(time=0.05, entity="worker-01"),
                    CrashEvent(time=0.10, entity="worker-03")]
        single = run(tree, 6, failures=failures)
        sharded = run(tree, 6, shards=3, shard_processes=False, failures=failures)
        assert sorted(sharded.crashed_workers) == sorted(single.crashed_workers)
        assert sharded.solved_correctly
        assert sharded.all_terminated


class TestEngineCounters:
    def test_counters_exposed_single_shard(self):
        tree = small_tree(nodes=51)
        result = run(tree, 3)
        counters = result.engine_counters
        assert counters["events_processed"] > 0
        assert counters["peak_heap_len"] > 0
        assert counters["entity_steps"] > 0

    def test_counters_aggregated_across_shards(self):
        tree = small_tree(nodes=51)
        result = run(tree, 4, shards=2, shard_processes=False)
        counters = result.engine_counters
        assert counters["shards"] == 2
        assert counters["events_processed"] > 0
        assert counters["peak_heap_len"] > 0
        assert counters["entity_steps"] > 0


class TestDirectApi:
    def test_run_sharded_tree_simulation_rejects_trace(self):
        tree = small_tree(nodes=51)
        with pytest.raises(ValueError, match="tracing"):
            run_sharded_tree_simulation(tree, 4, shards=2, enable_trace=True)

    def test_sharded_simulation_shard_range(self):
        tree = small_tree(nodes=51)
        with pytest.raises(ValueError):
            ShardedBnBSimulation(tree, 4, shards=5)
        with pytest.raises(ValueError):
            ShardedBnBSimulation(tree, 4, shards=0)


class TestScenarioIntegration:
    def test_scenario_shards_field_validated(self):
        from repro.scenario.spec import Scenario, WorkloadSpec

        with pytest.raises(ValueError, match="cannot split"):
            Scenario(name="x", workload=WorkloadSpec(kind="random"), n_workers=4, shards=9)
        with pytest.raises(ValueError, match="tracing"):
            Scenario(
                name="x",
                workload=WorkloadSpec(kind="random"),
                n_workers=4,
                shards=2,
                enable_trace=True,
            )

    def test_cli_rejects_excess_shards_with_exit_2(self, capsys):
        from repro.scenario.cli import main

        code = main(["run", "quickstart", "--workers", "4", "--shards", "9"])
        assert code == 2
        assert "cannot split" in capsys.readouterr().out
