"""Tests for the discrete-event engine, entities and failure injection."""

import pytest

from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.entity import Entity, QueuedMessage
from repro.simulation.failures import (
    CrashEvent,
    FailureInjector,
    fractional_crash_schedule,
    random_crash_schedule,
)
from repro.simulation.network import Network
from repro.simulation.rng import RngRegistry


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0
        assert engine.events_processed == 3

    def test_ties_break_by_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for label in "abc":
            engine.schedule(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_cancel_event(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        assert handle.cancelled
        engine.run()
        assert fired == []

    def test_run_until(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(2))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        # The remaining event can still be processed by a later run.
        engine.run()
        assert fired == [1, 2]

    def test_run_max_events_and_stop_when(self):
        engine = SimulationEngine()
        counter = []
        for i in range(10):
            engine.schedule(float(i), lambda i=i: counter.append(i))
        engine.run(max_events=3)
        assert len(counter) == 3
        engine.run(stop_when=lambda: len(counter) >= 5)
        assert len(counter) == 5

    def test_stop_requested_from_callback(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_events_scheduled_during_run(self):
        engine = SimulationEngine()
        seen = []

        def first():
            seen.append("first")
            engine.schedule(1.0, lambda: seen.append("second"))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == ["first", "second"]
        assert engine.now == 2.0

    def test_drain_cancelled(self):
        engine = SimulationEngine()
        handles = [engine.schedule(1.0, lambda: None) for _ in range(5)]
        for handle in handles[:4]:
            handle.cancel()
        engine.drain_cancelled()
        assert engine.pending_events() == 1

    def test_handle_metadata(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.5, lambda: None, label="probe")
        assert handle.time == 1.5
        assert handle.label == "probe"


class _Recorder(Entity):
    """Test entity: remembers messages and wakeups."""

    def __init__(self, name):
        super().__init__(name)
        self.messages = []
        self.wakeups = []

    def on_message(self, message: QueuedMessage) -> None:
        self.messages.append(message)

    def on_wakeup(self, reason: str) -> None:
        self.wakeups.append((self.engine.now, reason))


class TestEntity:
    def build(self):
        engine = SimulationEngine()
        network = Network(engine, rng=RngRegistry(0).stream("net"))
        a, b = _Recorder("a"), _Recorder("b")
        network.register(a)
        network.register(b)
        return engine, network, a, b

    def test_send_and_process(self):
        engine, network, a, b = self.build()
        a.send("b", "hello")
        engine.run()
        assert len(b.inbox) == 1
        processed = b.process_pending_messages()
        assert processed == 1
        assert b.messages[0].payload == "hello"
        assert b.messages[0].sender == "a"
        assert b.messages[0].delivered_at > b.messages[0].sent_at

    def test_timers_fire_on_living_entities_only(self):
        engine, network, a, b = self.build()
        a.set_timer(1.0, "tick")
        b.set_timer(1.0, "tick")
        b.crash()
        engine.run()
        assert a.wakeups and a.wakeups[0][1] == "tick"
        assert b.wakeups == []

    def test_crash_semantics(self):
        engine, network, a, b = self.build()
        a.send("b", "before")
        engine.run()
        b.crash()
        assert not b.alive
        assert b.inbox == type(b.inbox)()  # cleared
        assert a.send("b", "after") is False
        # Crashing twice is a no-op.
        crashed_at = b.crashed_at
        b.crash()
        assert b.crashed_at == crashed_at
        # A crashed entity cannot send.
        assert b.send("a", "zombie") is False

    def test_drain_inbox(self):
        engine, network, a, b = self.build()
        a.send("b", 1)
        a.send("b", 2)
        engine.run()
        drained = b.drain_inbox()
        assert len(drained) == 2
        assert len(b.inbox) == 0


class TestFailureInjection:
    def test_scheduled_crashes_fire(self):
        engine = SimulationEngine()
        network = Network(engine, rng=RngRegistry(0).stream("net"))
        a, b = _Recorder("a"), _Recorder("b")
        network.register(a)
        network.register(b)
        injector = FailureInjector([CrashEvent(1.0, "a")])
        injector.install(engine, network)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert not a.alive and b.alive
        assert injector.crashed == ["a"]
        assert len(injector) == 1

    def test_crash_of_unknown_entity_is_ignored(self):
        engine = SimulationEngine()
        network = Network(engine, rng=RngRegistry(0).stream("net"))
        injector = FailureInjector([CrashEvent(1.0, "ghost")])
        injector.install(engine, network)
        engine.run()
        assert injector.crashed == []

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CrashEvent(-1.0, "a")

    def test_random_schedule_respects_spare(self):
        names = [f"w{i}" for i in range(6)]
        schedule = random_crash_schedule(
            names, n_failures=5, start=1.0, end=2.0, seed=3, spare="w0"
        )
        assert len(schedule) == 5
        assert all(event.entity != "w0" for event in schedule)
        assert all(1.0 <= event.time <= 2.0 for event in schedule)
        with pytest.raises(ValueError):
            random_crash_schedule(names, n_failures=6, start=0, end=1, spare="w0")

    def test_fractional_schedule(self):
        names = ["a", "b", "c"]
        schedule = fractional_crash_schedule(
            names, victims=["b", "c"], fraction=0.85, reference_makespan=10.0
        )
        assert {e.entity for e in schedule} == {"b", "c"}
        assert all(e.time == pytest.approx(8.5) for e in schedule)
        with pytest.raises(ValueError):
            fractional_crash_schedule(names, victims=["zz"], fraction=0.5, reference_makespan=1.0)
        with pytest.raises(ValueError):
            fractional_crash_schedule(names, victims=["a"], fraction=1.5, reference_makespan=1.0)


class TestRngRegistry:
    def test_streams_are_deterministic_and_independent(self):
        r1 = RngRegistry(42)
        r2 = RngRegistry(42)
        assert r1.stream("x").random() == r2.stream("x").random()
        assert r1.stream("a").random() != r1.stream("b").random()
        assert r1.stream("a") is r1.stream("a")

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_spawn(self):
        child_a = RngRegistry(7).spawn("sub")
        child_b = RngRegistry(7).spawn("sub")
        assert child_a.master_seed == child_b.master_seed
        assert child_a.master_seed != 7
