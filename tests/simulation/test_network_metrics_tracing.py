"""Tests for the network model, metrics accounting and timeline tracing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation.engine import SimulationEngine
from repro.simulation.entity import Entity, QueuedMessage
from repro.simulation.metrics import MetricsCollector, StorageAccount, TimeAccount, TIME_CATEGORIES
from repro.simulation.network import LatencyModel, Network, Partition
from repro.simulation.rng import RngRegistry
from repro.simulation.tracing import TimelineTrace


class _Sink(Entity):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message: QueuedMessage) -> None:
        self.received.append(message)


class _SizedPayload:
    def __init__(self, size):
        self._size = size

    def wire_size(self):
        return self._size


def build(loss=0.0, partitions=(), latency=None):
    engine = SimulationEngine()
    network = Network(
        engine,
        latency=latency or LatencyModel.paper_default(),
        loss_probability=loss,
        partitions=partitions,
        rng=RngRegistry(3).stream("net"),
    )
    a, b = _Sink("a"), _Sink("b")
    network.register(a)
    network.register(b)
    return engine, network, a, b


class TestLatencyModel:
    def test_paper_parameters(self):
        model = LatencyModel.paper_default()
        # 1.5 ms + 0.005 ms/byte: a 1000-byte message takes 6.5 ms.
        assert model.latency(0) == pytest.approx(0.0015)
        assert model.latency(1000) == pytest.approx(0.0065)

    def test_jitter_only_with_rng(self):
        model = LatencyModel(base=0.001, per_byte=0.0, jitter_fraction=0.5)
        assert model.latency(10) == pytest.approx(0.001)
        import random

        jittered = model.latency(10, random.Random(1))
        assert 0.001 <= jittered <= 0.0015

    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=50, deadline=None)
    def test_latency_monotone_in_size(self, small, large):
        model = LatencyModel.paper_default()
        lo, hi = sorted((small, large))
        assert model.latency(lo) <= model.latency(hi)


class TestNetwork:
    def test_delivery_and_latency(self):
        engine, network, a, b = build()
        assert a.send("b", _SizedPayload(1000))
        engine.run()
        b.process_pending_messages()
        assert len(b.received) == 1
        message = b.received[0]
        assert message.size_bytes == 1000
        assert message.delivered_at == pytest.approx(0.0065)

    def test_unknown_and_dead_destination(self):
        engine, network, a, b = build()
        assert a.send("ghost", "x") is False
        b.crash()
        assert a.send("b", "x") is False
        assert network.stats.messages_to_dead == 2

    def test_duplicate_registration_rejected(self):
        engine, network, a, b = build()
        with pytest.raises(ValueError):
            network.register(_Sink("a"))

    def test_loss(self):
        engine, network, a, b = build(loss=1.0 - 1e-9)
        sent_any = False
        for _ in range(20):
            a.send("b", "x")
            sent_any = True
        engine.run()
        assert sent_any
        assert network.stats.messages_lost == 20
        assert len(b.inbox) == 0

    def test_invalid_loss_probability(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            Network(engine, loss_probability=1.5)

    def test_partition_blocks_both_directions_during_window(self):
        partition = Partition(start=0.0, end=10.0, group_a=frozenset({"a"}), group_b=frozenset({"b"}))
        engine, network, a, b = build(partitions=[partition])
        assert a.send("b", "x") is False
        assert b.send("a", "y") is False
        assert network.stats.messages_blocked == 2
        # After the window closes, traffic flows again.
        engine.schedule(11.0, lambda: a.send("b", "late"))
        engine.run()
        assert len(b.inbox) == 1

    def test_partition_does_not_affect_others(self):
        partition = Partition(start=0.0, end=10.0, group_a=frozenset({"a"}), group_b=frozenset({"x"}))
        engine, network, a, b = build(partitions=[partition])
        assert a.send("b", "x") is True

    def test_broadcast_and_traffic_accounting(self):
        engine, network, a, b = build()
        c = _Sink("c")
        network.register(c)
        scheduled = network.broadcast("a", ["a", "b", "c"], _SizedPayload(100))
        assert scheduled == 2  # never to self
        engine.run()
        assert network.stats.bytes_sent == 200
        assert network.total_megabytes_sent() == pytest.approx(200 / 1e6)
        assert network.megabytes_sent_by("a") == pytest.approx(200 / 1e6)
        assert network.megabytes_sent_by("nobody") == 0.0
        per = network.per_entity["a"].as_dict()
        assert per["messages_sent"] == 2

    def test_living_entities(self):
        engine, network, a, b = build()
        b.crash()
        assert [e.name for e in network.living_entities()] == ["a"]
        assert len(network.entities()) == 2


class TestMetrics:
    def test_time_account_basics(self):
        account = TimeAccount()
        account.add("bb", 2.0)
        account.add("idle", 1.0)
        assert account.total() == pytest.approx(3.0)
        assert account.busy() == pytest.approx(2.0)
        assert account.fractions()["bb"] == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            account.add("bogus", 1.0)
        with pytest.raises(ValueError):
            account.add("bb", -1.0)

    def test_empty_fractions(self):
        assert TimeAccount().fractions() == {c: 0.0 for c in TIME_CATEGORIES}

    def test_storage_account_peak_and_redundant(self):
        storage = StorageAccount()
        storage.update(100, redundant=10)
        storage.update(50, redundant=40)
        assert storage.peak_bytes == 100
        assert storage.redundant_bytes == 10  # captured at the peak
        storage.update(200, redundant=60)
        assert storage.peak_bytes == 200
        assert storage.redundant_bytes == 60

    def test_collector_aggregation(self):
        collector = MetricsCollector()
        collector.charge("w1", "bb", 4.0)
        collector.charge("w1", "idle", 1.0)
        collector.charge("w2", "bb", 5.0)
        collector.count("w1", "reports", 3)
        collector.update_storage("w1", 1000, 500)
        collector.update_storage("w2", 200, 0)
        assert collector.total_time("bb") == pytest.approx(9.0)
        assert collector.system_fractions()["bb"] == pytest.approx(9.0 / 10.0)
        assert collector.total_storage_bytes() == 1200
        assert collector.redundant_storage_bytes() == 500
        assert collector.counter_total("reports") == 3
        table = collector.per_process_table()
        assert len(table) == 2
        assert table[0]["process"] == "w1"

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.system_fractions() == {c: 0.0 for c in TIME_CATEGORIES}
        assert collector.total_storage_bytes() == 0


class TestTimelineTrace:
    def test_state_intervals(self):
        trace = TimelineTrace()
        trace.set_state("p0", "working", 0.0)
        trace.set_state("p0", "idle", 2.0)
        trace.set_state("p0", "working", 3.0)
        trace.finish(5.0)
        durations = trace.state_durations("p0")
        assert durations["working"] == pytest.approx(4.0)
        assert durations["idle"] == pytest.approx(1.0)
        assert trace.end_time() == 5.0
        assert trace.state_at("p0", 2.5) == "idle"
        assert trace.state_at("p0", 4.9) == "working"
        assert trace.state_at("ghost", 1.0) is None

    def test_same_state_transition_is_ignored(self):
        trace = TimelineTrace()
        trace.set_state("p0", "working", 0.0)
        trace.set_state("p0", "working", 1.0)
        trace.finish(2.0)
        assert len(trace.intervals("p0")) == 1

    def test_cannot_record_after_finish(self):
        trace = TimelineTrace()
        trace.set_state("p0", "working", 0.0)
        trace.finish(1.0)
        with pytest.raises(RuntimeError):
            trace.set_state("p0", "idle", 2.0)

    def test_exports(self):
        trace = TimelineTrace()
        trace.set_state("p0", "working", 0.0)
        trace.set_state("p1", "idle", 0.0)
        trace.finish(1.0)
        rows = trace.to_rows()
        assert {row["process"] for row in rows} == {"p0", "p1"}
        csv = trace.to_csv()
        assert csv.startswith("process,state,start,end")
        gantt = trace.ascii_gantt(width=40)
        assert "p0" in gantt and "p1" in gantt

    def test_empty_gantt(self):
        assert "empty" in TimelineTrace().ascii_gantt()


class TestTimelineTraceEdges:
    def test_zero_length_interval_is_dropped(self):
        # Two transitions at the same instant: the zero-length first state
        # must not produce an interval, and the second state owns the time.
        trace = TimelineTrace()
        trace.set_state("p0", "working", 1.0)
        trace.set_state("p0", "recovery", 1.0)
        trace.finish(2.0)
        intervals = trace.intervals("p0")
        assert [i.state for i in intervals] == ["recovery"]
        assert intervals[0].duration == pytest.approx(1.0)

    def test_finish_at_open_time_drops_zero_length_tail(self):
        trace = TimelineTrace()
        trace.set_state("p0", "working", 0.0)
        trace.set_state("p0", "idle", 3.0)
        trace.finish(3.0)
        assert [i.state for i in trace.intervals("p0")] == ["working"]

    def test_out_of_order_set_state_does_not_corrupt(self):
        # A transition stamped *before* the open interval's start must not
        # emit a negative-duration interval; the new state simply takes
        # over from its own (earlier) timestamp.
        trace = TimelineTrace()
        trace.set_state("p0", "working", 5.0)
        trace.set_state("p0", "idle", 3.0)
        trace.finish(10.0)
        intervals = trace.intervals("p0")
        assert all(i.duration >= 0 for i in intervals)
        assert [i.state for i in intervals] == ["idle"]
        assert intervals[0].start == 3.0 and intervals[0].end == 10.0

    def test_csv_round_trip(self):
        trace = TimelineTrace()
        trace.set_state("p0", "working", 0.0)
        trace.set_state("p0", "idle", 1.25)
        trace.set_state("p1", "recovery", 0.5)
        trace.finish(2.0)
        rebuilt = TimelineTrace.from_csv(trace.to_csv())
        assert rebuilt.to_rows() == trace.to_rows()
        assert rebuilt.processes() == trace.processes()
        assert rebuilt.end_time() == pytest.approx(trace.end_time())
        # The rebuilt trace is finished: queries work, recording does not.
        with pytest.raises(RuntimeError):
            rebuilt.set_state("p0", "working", 3.0)

    def test_empty_csv_round_trip(self):
        empty = TimelineTrace()
        empty.finish(0.0)
        rebuilt = TimelineTrace.from_csv(empty.to_csv())
        assert rebuilt.to_rows() == []
        assert "empty" in rebuilt.ascii_gantt()
