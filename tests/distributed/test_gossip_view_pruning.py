"""Pruning per-peer gossip views when the membership layer evicts a peer.

The per-peer ``known`` tries of the delta-gossip state grow with the peer
count (ROADMAP footprint item).  When the failure detector declares a peer
dead, its :class:`~repro.core.completion.PeerGossipView` is dropped wholesale
(`CompletionTracker.prune_peer_view` / `WorkerEntity.evict_peer`), counted in
``gossip_views_pruned``; a false suspicion only costs one full-table first
delta when the peer reappears.
"""

from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.core.completion import CompletionTracker
from repro.core.encoding import PathCode
from repro.distributed import AlgorithmConfig, run_tree_simulation
from repro.distributed.worker import WorkerEntity
from repro.gossip.failure_detector import GossipFailureDetector


def _code(*pairs):
    return PathCode(tuple(pairs))


class TestTrackerPruning:
    def test_prune_drops_view_and_counts(self):
        tracker = CompletionTracker("me")
        tracker.record_completed(_code((0, 0), (1, 0)))
        tracker.record_completed(_code((0, 1)))
        delta = tracker.build_delta_snapshot("peer")
        assert not delta.is_empty
        tracker.note_snapshot_ack("peer", delta.full_digest)
        assert len(tracker.peer_view("peer").known) > 0

        assert tracker.prune_peer_view("peer") is True
        assert tracker.gossip_views_pruned == 1
        assert "peer" not in tracker._peer_views

    def test_prune_unknown_peer_is_a_noop(self):
        tracker = CompletionTracker("me")
        assert tracker.prune_peer_view("ghost") is False
        assert tracker.gossip_views_pruned == 0

    def test_reappearing_peer_bootstraps_from_scratch(self):
        """After a prune the next delta is a full-table first contact —
        exactly the fresh-peer behaviour, so a false eviction is harmless."""
        tracker = CompletionTracker("me")
        tracker.record_completed(_code((0, 0), (1, 0)))
        first = tracker.build_delta_snapshot("peer")
        tracker.note_snapshot_ack("peer", first.full_digest)
        # Acknowledged: the steady-state delta to this peer is now empty.
        assert tracker.build_delta_snapshot("peer").is_empty

        tracker.prune_peer_view("peer")
        rebootstrap = tracker.build_delta_snapshot("peer")
        assert rebootstrap.codes == tracker.table.codes()
        assert tracker.gossip_views_pruned == 1


class TestWorkerEviction:
    def _worker(self, members):
        tree = generate_random_tree(RandomTreeSpec(nodes=31, seed=4))
        from repro.bnb.tree_problem import TreeReplayProblem

        problem = TreeReplayProblem(tree, prune=False)
        return WorkerEntity(members[0], problem, AlgorithmConfig(), members)

    def test_evict_peer_prunes_view_and_target_list(self):
        worker = self._worker(["w0", "w1", "w2"])
        worker.tracker.note_peer_covers("w1", [_code((0, 0))])
        assert worker.evict_peer("w1") is True
        assert worker.peers == ["w2"]
        assert worker.stats.gossip_views_pruned == 1
        # Idempotent: a second eviction finds nothing to forget.
        assert worker.evict_peer("w1") is False

    def test_failure_detector_cleanup_drives_eviction(self):
        """The integration the ROADMAP item asks for: failure-detector
        eviction (cleanup timeout) prunes the worker's gossip views."""
        worker = self._worker(["w0", "w1", "w2"])
        worker.tracker.note_peer_covers("w1", [_code((0, 0))])
        worker.tracker.note_peer_covers("w2", [_code((0, 1))])

        detector = GossipFailureDetector(
            "w0", fail_timeout=1.0, cleanup_timeout=2.0, gossip_interval=0.5
        )
        detector.merge((("w1", 1), ("w2", 1)), now=0.0)
        detector.tick(3.0)
        detector.merge((("w2", 2),), now=3.0)  # w2 stays fresh, w1 goes silent
        evicted = detector.cleanup(3.0)
        assert evicted == ["w1"]

        for peer in evicted:
            assert worker.evict_peer(peer)
        assert worker.peers == ["w2"]
        assert worker.stats.gossip_views_pruned == 1
        assert "w2" in worker.tracker._peer_views and "w1" not in worker.tracker._peer_views


class TestEndToEndCounter:
    def test_counter_flows_into_run_stats(self):
        """The new stat is part of every run result (zero without eviction)."""
        tree = generate_random_tree(RandomTreeSpec(nodes=41, mean_node_time=0.002, seed=6))
        result = run_tree_simulation(tree, 2, seed=1, prune=False)
        for stats in result.workers.values():
            assert stats.gossip_views_pruned == 0
            assert "gossip_views_pruned" in stats.as_dict()
