"""Delta table gossip: convergence properties and simulator integration.

The central claim pinned here: replacing whole-table snapshot gossip with
per-peer delta gossip changes the *bytes*, never the *information*.  A seeded
random scheduler drives a group of :class:`CompletionTracker`\\ s through
arbitrary interleavings of local completions, delta gossips, whole-snapshot
gossips, acknowledgements and message loss (including total loss of every
ack), then lets gossip finish over a reliable phase — and every tracker must
end with exactly the ``codes()`` that whole-snapshot gossip produces, which
is also the contraction of everything any member completed.

A second family exercises the full simulator: runs with ``delta_gossip`` on
and off (with and without crashes) must both terminate on the reference
optimum, and the delta run's table-dissemination traffic is accounted under
the new message kinds.
"""

import random

import pytest

from repro.bnb.pool import SelectionRule
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.core.codeset import CodeSet, contract_reference
from repro.core.completion import CompletionTracker
from repro.core.encoding import PathCode
from repro.core.work_report import DeltaSnapshot, table_digest
from repro.distributed.config import AlgorithmConfig
from repro.distributed.messages import (
    DeltaGossipMsg,
    MessageKinds,
    TableGossipAck,
    TableGossipMsg,
)
from repro.distributed.runner import run_tree_simulation, worker_names
from repro.simulation.failures import random_crash_schedule


# --------------------------------------------------------------------------- #
# Tracker-level convergence property
# --------------------------------------------------------------------------- #
def random_code(rng, max_depth=6):
    depth = rng.randint(1, max_depth)
    return PathCode(tuple((level, rng.randint(0, 1)) for level in range(depth)))


def deliver_delta(sender: CompletionTracker, receiver: CompletionTracker, *, ack_lost: bool):
    """One delta exchange: build, merge at the receiver, maybe ack back."""
    delta = sender.build_delta_snapshot(receiver.owner)
    receiver.merge_delta(delta)
    receiver.note_peer_covers(delta.sender, delta.codes)
    if not ack_lost and not delta.is_empty:
        sender.note_snapshot_ack(receiver.owner, delta.full_digest)


def build_schedule(seed: int):
    """Pre-draw a seeded event schedule shared verbatim by every mode.

    Every random decision — completions, gossip pairs, loss coins, the
    delta-vs-snapshot coin used by ``"mixed"`` — is drawn here, so the two
    modes replay *identical* interleavings and their results are directly
    comparable.
    """
    rng = random.Random(seed)
    n = rng.randint(2, 4)
    events = []
    for _ in range(rng.randint(20, 80)):
        if rng.random() < 0.5:
            events.append(("complete", rng.randrange(n), random_code(rng)))
        else:
            a, b = rng.sample(range(n), 2)
            events.append(
                (
                    "gossip",
                    a,
                    b,
                    rng.random() < 0.4,  # gossip message lost
                    rng.random() < 0.4,  # ack lost (delta mode only)
                    rng.random() < 0.5,  # mixed mode: use delta?
                )
            )
    return n, events


def run_gossip_schedule(seed: int, *, mode: str) -> tuple:
    """Replay a seeded schedule under one dissemination mode.

    ``mode`` selects the mechanism: ``"snapshot"`` is the whole-table
    reference, ``"delta"`` the anti-entropy replacement, and ``"mixed"``
    follows the schedule's per-gossip coin (a rolling upgrade).  After the
    chaotic phase a lossless closing phase lets gossip finish.
    """
    n, events = build_schedule(seed)
    trackers = [CompletionTracker(f"t{i}") for i in range(n)]
    completed = []

    def gossip(a, b, *, lost, ack_lost, use_delta):
        if lost:
            if use_delta:
                # The delta is built (per-peer sequence advances) but the
                # message never arrives.
                a.build_delta_snapshot(b.owner)
            return
        if use_delta:
            deliver_delta(a, b, ack_lost=ack_lost)
        else:
            b.merge_snapshot(a.build_table_snapshot())

    for event in events:
        if event[0] == "complete":
            trackers[event[1]].record_completed(event[2])
            completed.append(event[2])
        else:
            _, a, b, lost, ack_lost, mixed_coin = event
            use_delta = mode == "delta" or (mode == "mixed" and mixed_coin)
            gossip(trackers[a], trackers[b], lost=lost, ack_lost=ack_lost, use_delta=use_delta)

    # Closing phase: reliable pairwise gossip until every view settles.
    for round_index in range(4):
        for ai, a in enumerate(trackers):
            for b in trackers:
                if a is not b:
                    use_delta = mode == "delta" or (
                        mode == "mixed" and (round_index + ai) % 2 == 0
                    )
                    gossip(a, b, lost=False, ack_lost=False, use_delta=use_delta)

    return [t.table.codes() for t in trackers], completed


class TestDeltaGossipConvergence:
    @pytest.mark.parametrize("seed", range(60))
    def test_delta_interleavings_converge_to_snapshot_result(self, seed):
        """Any interleaving of deltas + loss ends where snapshots end."""
        delta_tables, delta_completed = run_gossip_schedule(seed, mode="delta")
        snap_tables, snap_completed = run_gossip_schedule(seed, mode="snapshot")
        # Same seed -> same completions in both runs.
        assert delta_completed == snap_completed
        reference = frozenset(contract_reference(delta_completed))
        for table in delta_tables + snap_tables:
            assert table == reference

    @pytest.mark.parametrize("seed", range(60, 100))
    def test_mixed_mode_converges(self, seed):
        """Snapshot and delta gossip interoperate within one group."""
        tables, completed = run_gossip_schedule(seed, mode="mixed")
        reference = frozenset(contract_reference(completed))
        for table in tables:
            assert table == reference

    def test_total_ack_loss_still_converges(self):
        """Deltas keep re-shipping unacked codes, so acks are optional."""
        rng = random.Random(424242)
        a = CompletionTracker("a")
        b = CompletionTracker("b")
        expected = []
        for _ in range(30):
            code = random_code(rng)
            a.record_completed(code)
            expected.append(code)
            delta = a.build_delta_snapshot("b")
            if rng.random() < 0.5:
                continue  # delta lost too
            b.merge_delta(delta)
            # The ack never arrives: a's view of b must not advance.
        final = a.build_delta_snapshot("b")
        b.merge_delta(final)
        assert b.table.codes() == a.table.codes()


class TestPeerGossipView:
    def test_first_delta_ships_whole_table_and_shrinks_after_ack(self):
        tracker = CompletionTracker("w0")
        for i in range(6):
            tracker.record_completed(PathCode(((0, 0), (1, i % 2), (2 + i, 0))))
        first = tracker.build_delta_snapshot("w1")
        assert first.codes == tracker.table.codes()
        tracker.note_snapshot_ack("w1", first.full_digest)
        # Nothing changed since the ack: the next delta is empty.
        second = tracker.build_delta_snapshot("w1")
        assert second.is_empty
        # New completion -> only the news is shipped.
        fresh = PathCode(((9, 1), (10, 0)))
        tracker.record_completed(fresh)
        third = tracker.build_delta_snapshot("w1")
        assert third.codes == frozenset({fresh})

    def test_unacked_codes_are_reshipped(self):
        tracker = CompletionTracker("w0")
        tracker.record_completed(PathCode(((0, 0),)))
        first = tracker.build_delta_snapshot("w1")
        tracker.record_completed(PathCode(((1, 1), (2, 0))))
        # First delta never acked: the second must contain both codes.
        second = tracker.build_delta_snapshot("w1")
        assert first.codes <= second.codes

    def test_stale_ack_is_ignored(self):
        tracker = CompletionTracker("w0")
        tracker.record_completed(PathCode(((0, 0),)))
        delta = tracker.build_delta_snapshot("w1")
        assert not tracker.note_snapshot_ack("w1", delta.full_digest ^ 1)
        assert not tracker.note_snapshot_ack("w9", delta.full_digest)
        assert tracker.note_snapshot_ack("w1", delta.full_digest)

    def test_reverse_channel_learning_shrinks_deltas(self):
        tracker = CompletionTracker("w0")
        shared = PathCode(((0, 0), (1, 1)))
        own = PathCode(((5, 1),))
        tracker.record_completed(shared)
        tracker.record_completed(own)
        # The peer reported `shared` itself: no need to gossip it back.
        tracker.note_peer_covers("w1", [shared])
        delta = tracker.build_delta_snapshot("w1")
        assert shared not in delta.codes
        assert own in delta.codes

    def test_converged_peer_suppresses_gossip(self):
        tracker = CompletionTracker("w0")
        for i in range(4):
            tracker.record_completed(PathCode(((i, 0),)))
        tracker.note_peer_converged("w1")
        assert tracker.build_delta_snapshot("w1").is_empty


class TestTableDigest:
    def test_digest_is_order_independent_and_stable(self):
        rng = random.Random(9)
        codes = [random_code(rng) for _ in range(25)]
        shuffled = list(codes)
        rng.shuffle(shuffled)
        assert table_digest(codes) == table_digest(shuffled)
        # Rebuilt codes (fresh objects, same pairs) digest identically —
        # the digest must be wire-stable, not id- or hash-seed-dependent.
        rebuilt = [PathCode(c.pairs) for c in codes]
        assert table_digest(codes) == table_digest(rebuilt)

    def test_digest_distinguishes_tables(self):
        a = {PathCode(((0, 0),))}
        b = {PathCode(((0, 1),))}
        assert table_digest(a) != table_digest(b)
        assert table_digest(a) != table_digest(set())

    def test_tracker_digest_memoised_per_state(self):
        tracker = CompletionTracker("w0")
        tracker.record_completed(PathCode(((0, 0),)))
        d1 = tracker.table_digest_now()
        assert tracker.table_digest_now() == d1
        tracker.record_completed(PathCode(((1, 1),)))
        assert tracker.table_digest_now() != d1


class TestSnapshotMergeFastPaths:
    def test_empty_receiver_adopts_shared_trie(self):
        sender = CompletionTracker("s")
        for i in range(8):
            sender.record_completed(PathCode(((0, 0), (1, i % 2), (2 + i, 1))))
        snapshot = sender.build_table_snapshot()
        receiver = CompletionTracker("r")
        assert receiver.merge_snapshot(snapshot)
        assert receiver.table.codes() is snapshot.codes  # shared frozenset
        assert receiver.codes_received == len(snapshot.codes)
        assert receiver.redundant_codes_received == 0
        assert receiver.bytes_stored_remote == sender.table.wire_size()
        # The adopted trie is independent of the sender's.
        receiver.record_completed(PathCode(((50, 0),)))
        assert not sender.table.covers(PathCode(((50, 0),)))

    def test_nonempty_receiver_merges_trie_to_trie_with_counters(self):
        sender = CompletionTracker("s")
        receiver = CompletionTracker("r")
        overlap = PathCode(((0, 0), (1, 1)))
        for tracker in (sender, receiver):
            tracker.record_completed(overlap)
        sender.record_completed(PathCode(((7, 1),)))
        snapshot = sender.build_table_snapshot()
        assert snapshot.shared_trie() is not None
        before_received = receiver.codes_received
        assert receiver.merge_snapshot(snapshot)
        assert receiver.codes_received - before_received == len(snapshot.codes)
        assert receiver.redundant_codes_received == 1  # the overlap
        assert receiver.table.codes() == frozenset(
            contract_reference([overlap, PathCode(((7, 1),))])
        )

    def test_wire_decoded_snapshot_falls_back_to_per_code_merge(self):
        from repro import wire

        sender = CompletionTracker("s")
        sender.record_completed(PathCode(((0, 0),)))
        snapshot = sender.build_table_snapshot()
        decoded = wire.decode(wire.encode(snapshot))
        assert decoded.shared_trie() is None
        receiver = CompletionTracker("r")
        assert receiver.merge_snapshot(decoded)
        assert receiver.table.codes() == snapshot.codes


# --------------------------------------------------------------------------- #
# Simulator integration
# --------------------------------------------------------------------------- #
def gossip_tree():
    return generate_random_tree(
        RandomTreeSpec(nodes=301, mean_node_time=0.004, seed=21, name="delta-gossip-301n")
    )


class TestSimulatorWithDeltaGossip:
    @pytest.mark.parametrize("delta", [False, True])
    def test_runs_solve_correctly_with_and_without_delta(self, delta):
        config = AlgorithmConfig(
            selection_rule=SelectionRule.BEST_FIRST,
            table_gossip_interval=0.05,
            delta_gossip=delta,
        )
        result = run_tree_simulation(
            gossip_tree(), 4, config=config, seed=13, prune=False
        )
        assert result.all_terminated
        assert result.solved_correctly
        dissemination = [
            kind for kind in result.bytes_by_kind if kind in MessageKinds.TABLE_DISSEMINATION
        ]
        if delta:
            assert "table_gossip" not in result.bytes_by_kind
            assert any(k in ("delta_gossip", "gossip_ack") for k in dissemination)
        else:
            assert "delta_gossip" not in result.bytes_by_kind

    @pytest.mark.parametrize("delta", [False, True])
    def test_crash_runs_still_recover(self, delta):
        names = worker_names(4)
        failures = random_crash_schedule(
            names, n_failures=2, start=0.1, end=0.6, seed=3, spare=names[0]
        )
        config = AlgorithmConfig(
            selection_rule=SelectionRule.DEPTH_FIRST,
            table_gossip_interval=0.1,
            delta_gossip=delta,
        )
        result = run_tree_simulation(
            gossip_tree(), 4, config=config, seed=29, prune=False, failures=failures
        )
        assert result.crashed_workers
        assert result.all_terminated
        assert result.solved_correctly

    def test_same_final_knowledge_as_snapshot_mode(self):
        """Delta and snapshot runs both end with every survivor at the root."""
        for delta in (False, True):
            config = AlgorithmConfig(
                selection_rule=SelectionRule.DEPTH_FIRST, delta_gossip=delta
            )
            result = run_tree_simulation(
                gossip_tree(), 3, config=config, seed=5, prune=False
            )
            assert result.all_terminated
            for stats in result.workers.values():
                assert stats.terminated
