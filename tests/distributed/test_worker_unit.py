"""Unit-level tests of the worker entity (driven directly, small scenarios)."""

import pytest

from repro.bnb.pool import SelectionRule
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.bnb.tree_problem import TreeReplayProblem
from repro.core.encoding import ROOT
from repro.core.work_report import BestSolution, WorkReport
from repro.distributed.config import AlgorithmConfig
from repro.distributed.messages import (
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from repro.distributed.worker import WorkerEntity
from repro.simulation.engine import SimulationEngine
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import Network
from repro.simulation.rng import RngRegistry


def make_worker_pair(n_workers=2, **config_overrides):
    """Two (or more) workers wired to a real engine/network, not yet started."""
    tree = generate_random_tree(
        RandomTreeSpec(nodes=31, mean_node_time=0.01, seed=5, name="unit-tree")
    )
    problem = TreeReplayProblem(tree, prune=False)
    config = AlgorithmConfig(
        selection_rule=SelectionRule.DEPTH_FIRST, **config_overrides
    )
    engine = SimulationEngine()
    rng = RngRegistry(2)
    network = Network(engine, rng=rng.stream("net"))
    metrics = MetricsCollector()
    names = [f"w{i}" for i in range(n_workers)]
    workers = []
    for index, name in enumerate(names):
        worker = WorkerEntity(
            name,
            problem,
            config,
            names,
            rng=rng.stream(name),
            metrics=metrics,
            initial_work=[problem.root_subproblem()] if index == 0 else [],
            expected_node_cost=tree.mean_node_time(),
        )
        network.register(worker)
        workers.append(worker)
    return engine, network, problem, tree, workers


class TestWorkerMessageHandling:
    def test_work_request_denied_when_pool_small(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        from repro.simulation.entity import QueuedMessage

        # w1 has an empty pool: a request from w0 must be denied.
        message = QueuedMessage(
            sender="w0", payload=WorkRequest("w0"), sent_at=0.0, delivered_at=0.0, size_bytes=32
        )
        w1._handle_message(message)
        assert w1.stats.work_denials_sent == 1
        assert w1.stats.work_grants_sent == 0
        # The denial is on the wire towards w0 (do not run the engine here:
        # that would start w0's whole main loop).
        assert network.per_entity["w1"].messages_sent == 1

    def test_work_grant_rebuilds_subproblems(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        from repro.simulation.entity import QueuedMessage

        donated_code = ROOT.child(0, 0)
        grant = WorkGrant(donor="w0", codes=(donated_code,), best=BestSolution(123.0, "w0"))
        message = QueuedMessage("w0", grant, 0.0, 0.0, grant.wire_size())
        w1._handle_message(message)
        assert len(w1.pool) == 1
        assert w1.pool.peek().code == donated_code
        assert w1.stats.work_grants_received == 1
        # The piggy-backed incumbent was adopted (minimisation: any value beats none).
        assert w1.incumbent.value == pytest.approx(123.0)

    def test_grant_of_covered_code_is_ignored(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        from repro.simulation.entity import QueuedMessage

        code = ROOT.child(0, 0)
        w1.tracker.table.add(code)
        grant = WorkGrant(donor="w0", codes=(code,))
        w1._handle_message(QueuedMessage("w0", grant, 0.0, 0.0, grant.wire_size()))
        assert len(w1.pool) == 0
        assert w1.stats.work_grants_received == 0

    def test_report_merging_updates_table_and_incumbent(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        from repro.simulation.entity import QueuedMessage

        report = WorkReport.build("w0", [ROOT.child(0, 1)], best=BestSolution(50.0, "w0"))
        msg = WorkReportMsg(report)
        w1._handle_message(QueuedMessage("w0", msg, 0.0, 0.0, msg.wire_size()))
        assert w1.tracker.table.covers(ROOT.child(0, 1))
        assert w1.incumbent.value == pytest.approx(50.0)

    def test_root_report_terminates_worker(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        from repro.core.termination import make_root_report
        from repro.simulation.entity import QueuedMessage

        msg = WorkReportMsg(make_root_report("w0", best=BestSolution(10.0)))
        w1._handle_message(QueuedMessage("w0", msg, 0.0, 0.0, msg.wire_size()))
        assert w1.terminated
        assert w1.termination.detected_via == "root_report"

    def test_table_gossip_merging(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        from repro.core.work_report import CompletedTableSnapshot
        from repro.simulation.entity import QueuedMessage

        snapshot = CompletedTableSnapshot("w0", frozenset({ROOT.child(0, 0)}))
        msg = TableGossipMsg(snapshot)
        w1._handle_message(QueuedMessage("w0", msg, 0.0, 0.0, msg.wire_size()))
        assert w1.tracker.table.covers(ROOT.child(0, 0))

    def test_best_solution_not_adopted_when_sharing_disabled(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair(share_best_solution=False)
        from repro.simulation.entity import QueuedMessage

        report = WorkReport.build("w0", [ROOT.child(0, 1)], best=BestSolution(50.0, "w0"))
        msg = WorkReportMsg(report)
        w1._handle_message(QueuedMessage("w0", msg, 0.0, 0.0, msg.wire_size()))
        assert w1.incumbent.value is None


class TestWorkerLifecycle:
    def test_crash_records_stats_and_stops_activity(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        w0.on_start()
        w1.on_start()
        w0.crash()
        assert w0.stats.crashed
        assert w0.stats.crashed_at is not None
        engine.run(until=1.0)
        # A crashed worker never terminates or expands further.
        assert not w0.terminated
        assert w0.stats.nodes_expanded == 0 or w0.crashed_at >= 0

    def test_bootstrap_gate_blocks_blank_recovery(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        now = 0.0
        # w1 is blank (no work done, empty table): it may not recover yet.
        assert not w1._may_recover(now)
        # After the bootstrap timeout of uninterrupted blank starvation it may.
        assert w1._may_recover(now + w1._bootstrap_timeout() + 1.0)

    def test_recovery_allowed_once_table_nonempty(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        w1.tracker.table.add(ROOT.child(0, 0))
        assert w1._may_recover(0.0)

    def test_finalize_stats_reports_time_and_storage(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        w0.on_start()
        w1.on_start()
        engine.run(stop_when=lambda: all(w.terminated for w in (w0, w1)))
        stats = w0.finalize_stats()
        assert stats.terminated
        assert stats.nodes_expanded > 0
        assert stats.best_value == pytest.approx(tree.optimal_value())
        assert "bb" in stats.time and stats.time["bb"] > 0
        assert stats.storage_peak_bytes > 0

    def test_single_worker_group_recovers_alone(self):
        engine, network, problem, tree, (w0,) = make_worker_pair(n_workers=1)
        w0.on_start()
        engine.run(stop_when=lambda: w0.terminated)
        assert w0.terminated
        assert w0.incumbent.value == pytest.approx(tree.optimal_value())


class TestStepFastPath:
    def test_fast_path_taken_on_quiet_steps(self):
        # A high report threshold and no staleness/gossip timers means most
        # steps have an empty inbox and nothing due: the fast path must fire.
        engine, network, problem, tree, (w0, w1) = make_worker_pair(
            report_threshold=1000,
            report_staleness=None,
            table_gossip_interval=None,
        )
        w0.on_start()
        w1.on_start()
        engine.run(stop_when=lambda: all(w.terminated for w in (w0, w1)))
        assert w0.stats.fast_path_steps > 0
        assert "fast_path_steps" in w0.stats.as_dict()

    def test_fast_path_does_not_starve_reports(self):
        # With reporting enabled, quiet steps may skip the machinery but the
        # run must still exchange reports and terminate correctly.
        engine, network, problem, tree, (w0, w1) = make_worker_pair()
        w0.on_start()
        w1.on_start()
        engine.run(stop_when=lambda: all(w.terminated for w in (w0, w1)))
        assert w0.terminated and w1.terminated
        assert w0.stats.reports_sent > 0
        assert w0.incumbent.value == pytest.approx(tree.optimal_value())

    def test_report_work_due_mirrors_report_triggers(self):
        engine, network, problem, tree, (w0, w1) = make_worker_pair(
            report_threshold=2, table_gossip_interval=None
        )
        w0.on_start()
        assert not w0._report_work_due(0.0)
        w0.tracker.record_completed(ROOT.child(0, 0), now=0.0)
        assert not w0._report_work_due(0.0)  # below threshold, no staleness
        w0.tracker.record_completed(ROOT.child(0, 1), now=0.0)
        assert w0._report_work_due(0.0)  # threshold reached
