"""Edge-case tests for the run orchestration layer."""

import pytest

from repro.bnb.knapsack import random_knapsack
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.bnb.pool import SelectionRule
from repro.distributed.config import AlgorithmConfig
from repro.distributed.runner import (
    DistributedBnBSimulation,
    NetworkConfig,
    run_tree_simulation,
)
from repro.simulation.network import LatencyModel


def small_tree(seed=51):
    return generate_random_tree(
        RandomTreeSpec(nodes=101, mean_node_time=0.02, seed=seed, name="runner-tree")
    )


class TestRunnerConstruction:
    def test_network_config_paper_default(self):
        config = NetworkConfig.paper_default()
        assert config.latency.base == pytest.approx(0.0015)
        assert config.loss_probability == 0.0
        assert config.partitions == ()

    def test_simulation_on_a_direct_problem(self):
        """The runner also accepts non-replay problems (e.g. knapsack directly)."""
        problem = random_knapsack(8, seed=2)
        sim = DistributedBnBSimulation(
            problem,
            3,
            config=AlgorithmConfig(),
            seed=4,
            reference_optimum=problem.solve_exact(),
        )
        result = sim.run()
        assert result.all_terminated
        assert result.best_value == pytest.approx(problem.solve_exact(), abs=1e-6)

    def test_build_is_idempotent_entry_point(self):
        tree = small_tree()
        from repro.bnb.tree_problem import TreeReplayProblem

        sim = DistributedBnBSimulation(TreeReplayProblem(tree, prune=False), 2,
                                       config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST))
        sim.build()
        assert len(sim.workers) == 2
        result = sim.run()  # run() must not rebuild and lose the workers
        assert result.n_workers == 2
        assert result.all_terminated

    def test_max_events_cap_stops_early(self):
        tree = small_tree()
        result = run_tree_simulation(
            tree,
            2,
            config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=1,
            prune=False,
            max_events=50,
        )
        # The run was cut short: not everyone terminated, and the result says so.
        assert not result.all_terminated

    def test_max_sim_time_cap(self):
        tree = small_tree()
        result = run_tree_simulation(
            tree,
            2,
            config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=1,
            prune=False,
            max_sim_time=0.05,
        )
        assert result.makespan <= 0.05 + 1e-9
        assert not result.all_terminated

    def test_explicit_uniprocessor_time_skips_reference_solve(self):
        tree = small_tree()
        result = run_tree_simulation(
            tree,
            2,
            config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=1,
            prune=False,
            uniprocessor_time=123.0,
        )
        assert result.uniprocessor_time == 123.0

    def test_disable_reference_computation(self):
        tree = small_tree()
        result = run_tree_simulation(
            tree,
            2,
            config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=1,
            prune=False,
            compute_uniprocessor_time=False,
        )
        assert result.uniprocessor_time is None
        assert result.speedup() is None

    def test_custom_latency_model_is_used(self):
        tree = small_tree()
        slow = run_tree_simulation(
            tree,
            3,
            config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=2,
            prune=False,
            network=NetworkConfig(latency=LatencyModel(base=0.02, per_byte=1e-5)),
        )
        fast = run_tree_simulation(
            tree,
            3,
            config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=2,
            prune=False,
        )
        # Both configurations must stay correct; with such a small workload the
        # interleaving noise can outweigh the latency difference, so we only
        # check that the runs are not byte-identical (the model was applied).
        assert slow.solved_correctly and fast.solved_correctly
        assert (slow.makespan, slow.total_bytes_sent) != (fast.makespan, fast.total_bytes_sent)

    def test_messages_by_kind_counts(self):
        tree = small_tree()
        result = run_tree_simulation(
            tree, 3, config=AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST),
            seed=3, prune=False,
        )
        kinds = result.messages_by_kind
        assert kinds["work_reports"] > 0
        assert kinds["work_requests"] >= 0
        assert set(kinds) == {
            "work_requests",
            "work_grants",
            "work_denials",
            "work_reports",
            "table_gossips",
            "delta_gossips",
            "gossip_acks",
            "heartbeats",
        }
        # Per-kind byte accounting covers every message the run injected.
        assert sum(result.bytes_by_kind.values()) == result.total_bytes_sent
