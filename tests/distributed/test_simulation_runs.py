"""Integration tests: end-to-end simulated runs of the distributed algorithm.

These are the tests that verify the paper's central claims:

* the distributed algorithm computes the same optimum as sequential B&B;
* it terminates (almost-implicit termination detection works);
* it survives message loss, temporary partitions and crash failures up to the
  loss of all processors but one, without affecting the solution.
"""

import pytest

from repro.bnb.knapsack import random_knapsack
from repro.bnb.basic_tree import record_basic_tree
from repro.bnb.pool import SelectionRule
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.bnb.sequential import SequentialSolver
from repro.bnb.tree_problem import TreeReplayProblem
from repro.distributed.config import AlgorithmConfig
from repro.distributed.runner import (
    DistributedBnBSimulation,
    NetworkConfig,
    run_tree_simulation,
    sequential_reference_time,
    worker_names,
)
from repro.simulation.failures import CrashEvent
from repro.simulation.network import LatencyModel, Partition


def small_tree(seed=3, nodes=151, mean_time=0.05):
    return generate_random_tree(
        RandomTreeSpec(nodes=nodes, mean_node_time=mean_time, seed=seed, name=f"t{seed}")
    )


def fast_config(**overrides):
    base = dict(selection_rule=SelectionRule.DEPTH_FIRST)
    base.update(overrides)
    return AlgorithmConfig(**base)


class TestBasicRuns:
    def test_single_worker_matches_sequential(self):
        tree = small_tree()
        result = run_tree_simulation(tree, 1, config=fast_config(), seed=1, prune=False)
        assert result.solved_correctly
        assert result.all_terminated
        assert result.best_value == pytest.approx(tree.optimal_value())
        # One worker expands every node exactly once.
        assert result.total_nodes_expanded == len(tree)
        assert result.redundant_nodes_expanded == 0

    @pytest.mark.parametrize("n_workers", [2, 3, 5, 8])
    def test_multi_worker_correctness_and_termination(self, n_workers):
        tree = small_tree(seed=n_workers)
        result = run_tree_simulation(
            tree, n_workers, config=fast_config(), seed=n_workers, prune=False
        )
        assert result.solved_correctly
        assert result.all_terminated
        assert len(result.workers) == n_workers
        assert all(stats.terminated for stats in result.workers.values())

    def test_makespan_improves_with_workers(self):
        tree = small_tree(seed=9, nodes=301)
        uniproc = tree.total_node_time()
        r1 = run_tree_simulation(tree, 1, config=fast_config(), seed=1, prune=False,
                                 uniprocessor_time=uniproc)
        r4 = run_tree_simulation(tree, 4, config=fast_config(), seed=1, prune=False,
                                 uniprocessor_time=uniproc)
        assert r4.makespan < r1.makespan
        assert r4.speedup() > 1.5

    def test_pruned_replay_matches_sequential_best_first(self):
        problem = random_knapsack(10, seed=4)
        tree = record_basic_tree(problem, name="kp")
        reference = SequentialSolver(TreeReplayProblem(tree)).solve()
        result = run_tree_simulation(
            tree, 3, config=AlgorithmConfig(), seed=2, prune=True
        )
        assert result.best_value == pytest.approx(reference.best_value)
        assert result.solved_correctly

    def test_time_accounting_covers_makespan(self):
        tree = small_tree(seed=5)
        result = run_tree_simulation(tree, 4, config=fast_config(), seed=3, prune=False)
        assert result.metrics is not None
        for name, stats in result.workers.items():
            total = sum(stats.time.values())
            terminated_at = stats.terminated_at
            assert terminated_at is not None
            # Each worker's accounted time is close to its lifetime.
            assert total == pytest.approx(terminated_at, rel=0.15, abs=0.5)

    def test_deterministic_given_seed(self):
        tree = small_tree(seed=6)
        a = run_tree_simulation(tree, 3, config=fast_config(), seed=11, prune=False)
        b = run_tree_simulation(tree, 3, config=fast_config(), seed=11, prune=False)
        assert a.makespan == b.makespan
        assert a.total_bytes_sent == b.total_bytes_sent
        assert a.total_nodes_expanded == b.total_nodes_expanded

    def test_invalid_worker_count(self):
        tree = small_tree()
        with pytest.raises(ValueError):
            DistributedBnBSimulation(TreeReplayProblem(tree), 0)

    def test_worker_names_format(self):
        assert worker_names(3) == ["worker-00", "worker-01", "worker-02"]
        assert worker_names(120)[-1] == "worker-119"

    def test_sequential_reference_time(self):
        tree = small_tree(seed=2)
        assert sequential_reference_time(tree, prune=False) == pytest.approx(tree.total_node_time())
        assert sequential_reference_time(tree, prune=True) <= tree.total_node_time() + 1e-9

    def test_trace_collection(self):
        tree = small_tree(seed=7)
        result = run_tree_simulation(
            tree, 3, config=fast_config(), seed=4, prune=False, enable_trace=True
        )
        assert result.trace is not None
        assert set(result.trace.processes()) == set(result.workers.keys())
        gantt = result.trace.ascii_gantt()
        assert "worker-00" in gantt


class TestUnreliableNetwork:
    def test_message_loss_does_not_affect_solution(self):
        tree = small_tree(seed=21)
        network = NetworkConfig(loss_probability=0.25)
        result = run_tree_simulation(
            tree, 4, config=fast_config(), seed=5, prune=False, network=network
        )
        assert result.solved_correctly
        assert result.all_terminated
        assert result.network.messages_lost > 0

    def test_temporary_partition_does_not_affect_solution(self):
        tree = small_tree(seed=22)
        names = worker_names(4)
        partition = Partition(
            start=0.5,
            end=2.5,
            group_a=frozenset(names[:2]),
            group_b=frozenset(names[2:]),
        )
        network = NetworkConfig(partitions=(partition,))
        result = run_tree_simulation(
            tree, 4, config=fast_config(), seed=6, prune=False, network=network
        )
        assert result.solved_correctly
        assert result.all_terminated
        assert result.network.messages_blocked > 0

    def test_slow_network_still_terminates(self):
        tree = small_tree(seed=23)
        network = NetworkConfig(latency=LatencyModel(base=0.05, per_byte=1e-5))
        result = run_tree_simulation(
            tree, 3, config=fast_config(), seed=7, prune=False, network=network
        )
        assert result.solved_correctly


class TestFaultTolerance:
    def test_single_crash_recovered(self):
        tree = small_tree(seed=31)
        baseline = run_tree_simulation(tree, 4, config=fast_config(), seed=8, prune=False)
        result = run_tree_simulation(
            tree,
            4,
            config=fast_config(),
            seed=8,
            prune=False,
            failures=[CrashEvent(0.4 * baseline.makespan, "worker-02")],
        )
        assert result.crashed_workers == ["worker-02"]
        assert result.solved_correctly
        assert result.all_terminated

    def test_all_but_one_crash_recovered(self):
        """The paper's headline claim: losing all but one resource is survivable."""
        tree = small_tree(seed=32)
        baseline = run_tree_simulation(tree, 4, config=fast_config(), seed=9, prune=False)
        crash_time = 0.5 * baseline.makespan
        victims = worker_names(4)[1:]
        result = run_tree_simulation(
            tree,
            4,
            config=fast_config(),
            seed=9,
            prune=False,
            failures=[CrashEvent(crash_time, victim) for victim in victims],
        )
        assert set(result.crashed_workers) == set(victims)
        assert result.solved_correctly
        assert result.all_terminated
        # The crash forces the survivor to redo lost work, so the makespan is
        # strictly worse than the failure-free run.
        assert result.makespan > baseline.makespan
        survivor = result.workers["worker-00"]
        assert survivor.terminated
        assert survivor.best_value == pytest.approx(tree.optimal_value())

    def test_crash_of_initial_work_holder(self):
        """Crashing the worker that started with the root is also survivable."""
        tree = small_tree(seed=33)
        baseline = run_tree_simulation(tree, 3, config=fast_config(), seed=10, prune=False)
        result = run_tree_simulation(
            tree,
            3,
            config=fast_config(),
            seed=10,
            prune=False,
            failures=[CrashEvent(0.5 * baseline.makespan, "worker-00")],
        )
        assert result.solved_correctly
        assert result.all_terminated

    def test_crash_with_message_loss_combined(self):
        tree = small_tree(seed=34)
        baseline = run_tree_simulation(tree, 4, config=fast_config(), seed=11, prune=False)
        result = run_tree_simulation(
            tree,
            4,
            config=fast_config(),
            seed=11,
            prune=False,
            network=NetworkConfig(loss_probability=0.15),
            failures=[CrashEvent(0.5 * baseline.makespan, "worker-01")],
        )
        assert result.solved_correctly
        assert result.all_terminated

    def test_recovery_statistics_recorded(self):
        tree = small_tree(seed=35)
        baseline = run_tree_simulation(tree, 3, config=fast_config(), seed=12, prune=False)
        victims = worker_names(3)[1:]
        result = run_tree_simulation(
            tree,
            3,
            config=fast_config(),
            seed=12,
            prune=False,
            failures=[CrashEvent(0.4 * baseline.makespan, victim) for victim in victims],
        )
        survivor = result.workers["worker-00"]
        assert result.solved_correctly
        # The survivor must have regenerated at least one lost subproblem
        # (unless, by luck, the victims had already finished everything).
        assert survivor.recovery_activations >= 0
        assert result.trace is None  # tracing was not requested

    def test_crash_before_any_work_spreads(self):
        """Crashing workers very early must not wedge the computation."""
        tree = small_tree(seed=36)
        result = run_tree_simulation(
            tree,
            3,
            config=fast_config(),
            seed=13,
            prune=False,
            failures=[CrashEvent(0.01, "worker-01"), CrashEvent(0.02, "worker-02")],
        )
        assert result.solved_correctly
        assert result.all_terminated


class TestAblationFlags:
    def test_uncompressed_reports_still_correct_but_bigger(self):
        tree = small_tree(seed=41, nodes=301)
        compressed = run_tree_simulation(
            tree, 4, config=fast_config(compress_reports=True), seed=14, prune=False
        )
        uncompressed = run_tree_simulation(
            tree, 4, config=fast_config(compress_reports=False), seed=14, prune=False
        )
        assert compressed.solved_correctly and uncompressed.solved_correctly
        assert uncompressed.total_bytes_sent > compressed.total_bytes_sent

    def test_disable_best_solution_sharing_still_correct(self):
        tree = small_tree(seed=42)
        result = run_tree_simulation(
            tree, 3, config=fast_config(share_best_solution=False), seed=15, prune=False
        )
        assert result.solved_correctly

    def test_report_threshold_one(self):
        tree = small_tree(seed=43)
        result = run_tree_simulation(
            tree, 3, config=fast_config(report_threshold=1), seed=16, prune=False
        )
        assert result.solved_correctly

    def test_no_root_broadcast_slows_but_does_not_break(self):
        tree = small_tree(seed=44)
        with_bcast = run_tree_simulation(
            tree, 3, config=fast_config(), seed=17, prune=False
        )
        without = run_tree_simulation(
            tree, 3, config=fast_config(send_root_report=False), seed=17, prune=False
        )
        assert with_bcast.solved_correctly and without.solved_correctly
        assert without.all_terminated

    def test_granularity_parameter_scales_makespan(self):
        tree = small_tree(seed=45)
        fine = run_tree_simulation(tree, 2, config=fast_config(), seed=18, prune=False,
                                   granularity=1.0)
        coarse = run_tree_simulation(tree, 2, config=fast_config(), seed=18, prune=False,
                                     granularity=5.0)
        assert coarse.makespan > fine.makespan
        assert coarse.solved_correctly
