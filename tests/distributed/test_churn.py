"""Churn test wall: live failure detection, worker rejoin, flapping.

The churn PR makes fault handling *emergent*: peer eviction comes from the
heartbeat failure detector observing staleness (not from a script), and a
worker that leaves and returns re-converges through the delta-gossip
first-contact path instead of receiving a whole-table snapshot.  These tests
pin exactly those behaviours:

* seeded rejoin property tests — a leave→return worker re-converges with
  bounded bytes (zero whole-table snapshots anywhere in the run), including
  flapping (return before the eviction completes);
* a regression test that ``evict_peer`` fires from heartbeat staleness
  alone, with **no** :class:`~repro.simulation.failures.FailureSpec`/crash
  event in the run, and that ``gossip_views_pruned`` accounts it;
* the churn observability: gossip delta sizes and eviction latencies land
  in :class:`~repro.obs.MetricsRegistry` histograms whose snapshot/merge
  path round-trips.
"""

import pytest

from repro.bnb.pool import SelectionRule
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree
from repro.distributed.config import AlgorithmConfig
from repro.distributed.runner import DistributedBnBSimulation, run_tree_simulation
from repro.distributed.worker import DELTA_BYTES_BUCKETS
from repro.obs import MetricsRegistry, TelemetryConfig
from repro.simulation.failures import ChurnInjector


def small_tree(seed=51):
    return generate_random_tree(
        RandomTreeSpec(nodes=101, mean_node_time=0.02, seed=seed, name="churn-tree")
    )


def fd_config(**overrides):
    defaults = dict(
        selection_rule=SelectionRule.DEPTH_FIRST,
        failure_detector=True,
        termination_echo=True,
        fd_heartbeat_interval=0.1,
        fd_fail_timeout=0.4,
        fd_cleanup_timeout=0.8,
    )
    defaults.update(overrides)
    return AlgorithmConfig(**defaults)


class TestChurnInjector:
    def test_validates_mode_and_actions(self):
        with pytest.raises(ValueError):
            ChurnInjector((), mode="hibernate")
        injector = ChurnInjector([(0.5, "w", "meditate")])

        class FakeEngine:
            def schedule_at(self, time, cb, label=""):
                raise AssertionError("should fail before scheduling")

        with pytest.raises(ValueError):
            injector.install(FakeEngine(), network=None)

    def test_pending_returns_counts_only_returns(self):
        injector = ChurnInjector(
            [(0.1, "a", "leave"), (0.5, "a", "return"), (1.0, "b", "leave")]
        )
        assert injector.pending_returns == 1


class TestSeededRejoin:
    """Leave→return re-convergence, across seeds and both churn modes."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 5, 8, 13])
    def test_restart_rejoin_converges_without_snapshot_fallback(self, seed):
        result = run_tree_simulation(
            small_tree(seed=50 + seed),
            4,
            config=fd_config(),
            seed=seed,
            prune=False,
            churn_events=[(0.3, "worker-02", "leave"), (1.6, "worker-02", "return")],
            churn_mode="restart",
        )
        assert result.solved_correctly and result.all_terminated
        rejoiner = result.workers["worker-02"]
        assert rejoiner.leaves == 1 and rejoiner.rejoins == 1
        assert rejoiner.terminated
        assert rejoiner.unavailable_time == pytest.approx(1.3)
        # Bounded-bytes first contact: the rejoiner bootstraps through the
        # delta-gossip path; nobody ships a whole-table snapshot, ever.
        for name, stats in result.workers.items():
            assert stats.table_gossips_sent == 0, name
        assert result.messages_by_kind.get("table_gossips", 0) == 0
        assert result.bytes_by_kind.get("table_gossip", 0) == 0
        assert result.bytes_by_kind.get("delta_gossip", 0) > 0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_suspend_rejoin_keeps_state_and_converges(self, seed):
        result = run_tree_simulation(
            small_tree(seed=80 + seed),
            4,
            config=fd_config(),
            seed=seed,
            prune=False,
            churn_events=[(0.4, "worker-01", "leave"), (1.8, "worker-01", "return")],
            churn_mode="suspend",
        )
        assert result.solved_correctly and result.all_terminated
        rejoiner = result.workers["worker-01"]
        assert rejoiner.rejoins == 1
        assert rejoiner.unavailable_time == pytest.approx(1.4)
        assert result.workers["worker-01"].terminated

    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_flapping_rejoin_before_eviction_completes(self, seed):
        """Down for less than the fail timeout: nobody ever evicts."""
        config = fd_config(fd_fail_timeout=1.0, fd_cleanup_timeout=2.0)
        events = []
        for i, leave in enumerate((0.3, 0.9, 1.5)):
            events += [
                (leave, "worker-03", "leave"),
                (leave + 0.2, "worker-03", "return"),
            ]
        result = run_tree_simulation(
            small_tree(seed=60 + seed),
            4,
            config=config,
            seed=seed,
            prune=False,
            churn_events=events,
            churn_mode="restart",
        )
        assert result.solved_correctly and result.all_terminated
        flapper = result.workers["worker-03"]
        assert flapper.leaves == 3 and flapper.rejoins == 3
        # The flap windows (0.2 s) stay inside fd_fail_timeout (1.0 s), so
        # live failure detection must never fire — no evictions anywhere.
        assert sum(s.peers_evicted for s in result.workers.values()) == 0
        assert sum(s.table_gossips_sent for s in result.workers.values()) == 0

    def test_never_returning_leaver_counts_as_crashed(self):
        result = run_tree_simulation(
            small_tree(),
            4,
            config=fd_config(),
            seed=7,
            prune=False,
            churn_events=[(0.3, "worker-02", "leave")],
            churn_mode="restart",
        )
        assert result.solved_correctly and result.all_terminated
        assert "worker-02" in result.crashed_workers
        assert result.workers["worker-02"].unavailable_time > 0.0


class TestEmergentEviction:
    """Satellite regression: eviction from heartbeat staleness *alone*."""

    def test_evict_peer_fires_without_any_failure_spec(self):
        # No FailureSpec, no CrashEvent: the only disturbance is a churn
        # leave, and the only way survivors can learn about it is the live
        # failure detector noticing the heartbeat went stale.
        result = run_tree_simulation(
            small_tree(),
            4,
            config=fd_config(),
            seed=3,
            prune=False,
            failures=(),  # explicitly: nothing scripted
            churn_events=[(0.3, "worker-02", "leave")],
            churn_mode="restart",
        )
        assert result.solved_correctly and result.all_terminated
        survivors = [s for n, s in result.workers.items() if n != "worker-02"]
        evictions = sum(s.peers_evicted for s in survivors)
        assert evictions >= 1, "live staleness detection never evicted the dead peer"
        # One dead peer means at most one eviction per survivor (no re-admit
        # flapping of the dead member thanks to the suspected-digest
        # exclusion); a survivor that terminates before the cleanup timeout
        # elapses legitimately never evicts.
        for stats in survivors:
            assert stats.peers_evicted <= 1, stats.name
        # ... and the eviction pruned the per-peer gossip view, which the
        # gossip_views_pruned counter must account.
        assert sum(s.gossip_views_pruned for s in survivors) >= 1
        assert result.workers["worker-02"].peers_evicted == 0

    def test_no_churn_no_detector_stays_byte_identical(self):
        """The fd knobs default off: a plain run is unchanged by this PR."""
        plain = AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST)
        a = run_tree_simulation(small_tree(), 3, config=plain, seed=5, prune=False)
        b = run_tree_simulation(small_tree(), 3, config=plain, seed=5, prune=False)
        assert a.messages_by_kind["heartbeats"] == 0
        assert (a.makespan, a.total_bytes_sent) == (b.makespan, b.total_bytes_sent)


class TestChurnObservability:
    """Delta sizes and eviction latencies land in registry histograms."""

    def _run_with_metrics(self, *, churn_events, seed=3):
        result = run_tree_simulation(
            small_tree(),
            4,
            config=fd_config(),
            seed=seed,
            prune=False,
            telemetry=TelemetryConfig(trace=False, metrics=True),
            churn_events=churn_events,
            churn_mode="restart",
        )
        assert result.telemetry is not None and result.telemetry.metrics is not None
        return result.telemetry.metrics

    def test_delta_bytes_and_eviction_latency_histograms(self):
        metrics = self._run_with_metrics(
            churn_events=[(0.3, "worker-02", "leave")]
        )
        snapshot = metrics.snapshot()["histograms"]
        delta = snapshot["gossip_delta_bytes"]
        assert delta["count"] > 0
        assert delta["bounds"] == list(DELTA_BYTES_BUCKETS)
        assert sum(delta["counts"]) == delta["count"]
        latency = snapshot["fd_eviction_latency_seconds"]
        assert latency["count"] >= 1
        # Eviction latency is bounded by the detector's timeouts: at least
        # fail_timeout of staleness, and within cleanup + one heartbeat.
        config = fd_config()
        assert latency["sum"] / latency["count"] >= config.fd_fail_timeout
        per_eviction_cap = config.fd_cleanup_timeout + 2 * config.fd_heartbeat_interval
        assert latency["sum"] <= latency["count"] * per_eviction_cap

    def test_histogram_snapshot_merge_roundtrip(self):
        metrics = self._run_with_metrics(
            churn_events=[(0.3, "worker-02", "leave"), (1.6, "worker-02", "return")]
        )
        snapshot = metrics.snapshot()
        base = snapshot["histograms"]["gossip_delta_bytes"]

        merged = MetricsRegistry.from_snapshot(snapshot)
        merged.merge_snapshot(snapshot)
        doubled = merged.snapshot()["histograms"]["gossip_delta_bytes"]
        assert doubled["count"] == 2 * base["count"]
        assert doubled["sum"] == pytest.approx(2 * base["sum"])
        assert doubled["counts"] == [2 * c for c in base["counts"]]

        # Mismatched bucket layouts must be rejected, not silently merged.
        other = MetricsRegistry()
        other.histogram("gossip_delta_bytes", buckets=(1, 2, 3)).observe(2)
        with pytest.raises(ValueError):
            other.merge_snapshot(snapshot)
