"""Tests for the algorithm configuration, wire messages and run statistics."""

import pytest

from repro.core.encoding import ROOT
from repro.core.work_report import BestSolution, CompletedTableSnapshot, WorkReport
from repro.distributed.config import AlgorithmConfig
from repro.distributed.messages import (
    MessageKinds,
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from repro.distributed.stats import RunResult, WorkerRunStats
from repro.simulation.metrics import MetricsCollector


class TestAlgorithmConfig:
    def test_defaults_are_valid(self):
        config = AlgorithmConfig.paper_default()
        assert config.report_threshold >= 1
        assert config.report_fanout >= 1

    def test_with_overrides(self):
        config = AlgorithmConfig().with_overrides(report_threshold=3, granularity=2.0)
        assert config.report_threshold == 3
        assert config.granularity == 2.0
        # Original defaults untouched elsewhere.
        assert config.report_fanout == AlgorithmConfig().report_fanout

    @pytest.mark.parametrize(
        "field, value",
        [
            ("report_threshold", 0),
            ("report_fanout", 0),
            ("lb_keep_at_least", 0),
            ("lb_donation_max", 0),
            ("lb_donation_fraction", 0.0),
            ("lb_donation_fraction", 1.5),
            ("work_request_timeout", 0.0),
            ("idle_poll_interval", 0.0),
            ("recovery_failed_threshold", 0),
            ("granularity", -1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            AlgorithmConfig(**{field: value})


class TestMessages:
    def test_wire_sizes(self):
        request = WorkRequest("w1", best=BestSolution(3.0))
        denied = WorkDenied("w2")
        grant = WorkGrant("w2", codes=(ROOT.child(0, 0), ROOT.child(0, 1).child(1, 0)))
        report = WorkReportMsg(WorkReport.build("w1", [ROOT.child(0, 0)]))
        gossip = TableGossipMsg(CompletedTableSnapshot("w1", frozenset({ROOT.child(0, 1)})))
        assert request.wire_size() > 0
        assert denied.wire_size() > 0
        assert grant.wire_size() > request.wire_size()
        assert report.wire_size() > 0
        assert gossip.wire_size() > 0
        assert report.best == report.report.best
        assert gossip.best == gossip.snapshot.best

    def test_message_kinds(self):
        assert MessageKinds.of(WorkRequest("w")) == MessageKinds.WORK_REQUEST
        assert MessageKinds.of(WorkDenied("w")) == MessageKinds.WORK_DENIED
        assert MessageKinds.of(WorkGrant("w", ())) == MessageKinds.WORK_GRANT
        plain = WorkReportMsg(WorkReport.build("w", [ROOT.child(0, 0)]))
        root = WorkReportMsg(WorkReport.build("w", [ROOT]))
        assert MessageKinds.of(plain) == MessageKinds.WORK_REPORT
        assert MessageKinds.of(root) == MessageKinds.ROOT_REPORT
        assert MessageKinds.of(TableGossipMsg(CompletedTableSnapshot("w", frozenset()))) == MessageKinds.TABLE_GOSSIP
        assert MessageKinds.of(object()) == "unknown"


class TestRunResultDerivedMetrics:
    def make_result(self):
        metrics = MetricsCollector()
        metrics.charge("w0", "bb", 90.0)
        metrics.charge("w0", "communication", 4.0)
        metrics.charge("w0", "contraction", 2.0)
        metrics.charge("w0", "load_balancing", 1.0)
        metrics.charge("w0", "idle", 3.0)
        metrics.update_storage("w0", 2_000_000, 500_000)
        return RunResult(
            n_workers=4,
            makespan=3600.0,
            best_value=10.0,
            reference_optimum=10.0,
            all_terminated=True,
            total_nodes_expanded=100,
            redundant_nodes_expanded=10,
            uniprocessor_time=7200.0,
            metrics=metrics,
            total_bytes_sent=8_000_000,
        )

    def test_percentages_and_rates(self):
        result = self.make_result()
        assert result.execution_time_hours() == pytest.approx(1.0)
        assert result.bb_time_percent() == pytest.approx(90.0)
        assert result.contraction_time_percent() == pytest.approx(2.0)
        assert result.communication_time_percent() == pytest.approx(4.0)
        assert result.load_balancing_time_percent() == pytest.approx(1.0)
        assert result.idle_time_percent() == pytest.approx(3.0)
        assert result.overhead_percent() == pytest.approx(10.0)
        assert result.storage_total_mb() == pytest.approx(2.0)
        assert result.storage_redundant_mb() == pytest.approx(0.5)
        # 8 MB over 1 hour over 4 processors = 2 MB/hour/processor.
        assert result.communication_mb_per_hour_per_processor() == pytest.approx(2.0)
        assert result.speedup() == pytest.approx(2.0)
        assert result.efficiency() == pytest.approx(0.5)
        assert result.redundant_work_fraction() == pytest.approx(0.1)
        assert result.solved_correctly is True

    def test_summary_keys(self):
        summary = self.make_result().summary()
        for key in (
            "processors",
            "execution_time_h",
            "bb_time_pct",
            "storage_total_mb",
            "comm_mb_per_hour_per_proc",
            "speedup",
            "solved_correctly",
        ):
            assert key in summary

    def test_missing_optional_fields(self):
        result = RunResult(
            n_workers=1,
            makespan=0.0,
            best_value=None,
            reference_optimum=None,
            all_terminated=True,
        )
        assert result.solved_correctly is None
        assert result.speedup() is None
        assert result.efficiency() is None
        assert result.communication_mb_per_hour_per_processor() == 0.0
        assert result.bb_time_percent() == 0.0
        assert result.redundant_work_fraction() == 0.0

    def test_wrong_answer_detected(self):
        result = RunResult(
            n_workers=1,
            makespan=1.0,
            best_value=11.0,
            reference_optimum=10.0,
            all_terminated=True,
        )
        assert result.solved_correctly is False

    def test_worker_stats_as_dict(self):
        stats = WorkerRunStats(name="w0", nodes_expanded=5)
        stats.time = {"bb": 1.0, "idle": 0.5}
        row = stats.as_dict()
        assert row["name"] == "w0"
        assert row["nodes_expanded"] == 5
        assert row["time_bb"] == 1.0
        assert row["time_communication"] == 0.0
