"""Tests for the concrete optimisation problems and the problem interface."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.knapsack import KnapsackInstance, KnapsackProblem, random_knapsack
from repro.bnb.maxsat import MaxSatInstance, MaxSatProblem, random_maxsat
from repro.bnb.pool import SelectionRule
from repro.bnb.problem import worse_than
from repro.bnb.sequential import SequentialSolver
from repro.bnb.set_cover import SetCoverInstance, SetCoverProblem, random_set_cover
from repro.bnb.vertex_cover import VertexCoverInstance, VertexCoverProblem, random_vertex_cover


class TestWorseThan:
    def test_minimise(self):
        assert worse_than(5.0, 5.0, minimize=True)
        assert worse_than(6.0, 5.0, minimize=True)
        assert not worse_than(4.0, 5.0, minimize=True)
        assert not worse_than(4.0, None, minimize=True)

    def test_maximise(self):
        assert worse_than(5.0, 5.0, minimize=False)
        assert worse_than(4.0, 5.0, minimize=False)
        assert not worse_than(6.0, 5.0, minimize=False)


class TestKnapsack:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            KnapsackInstance(values=(1.0,), weights=(1.0, 2.0), capacity=3.0)
        with pytest.raises(ValueError):
            KnapsackInstance(values=(-1.0,), weights=(1.0,), capacity=3.0)
        with pytest.raises(ValueError):
            KnapsackInstance(values=(1.0,), weights=(1.0,), capacity=-1.0)

    def test_bound_is_admissible_at_root(self):
        problem = random_knapsack(8, seed=1)
        root_bound = problem.bound(problem.root_state())
        assert root_bound >= problem.solve_exact() - 1e-9

    def test_bnb_matches_dynamic_programming(self):
        for seed in range(5):
            problem = random_knapsack(10, seed=seed)
            result = SequentialSolver(problem).solve()
            assert result.best_value == pytest.approx(problem.solve_exact(), abs=1e-6)

    def test_rebuild_state_roundtrip(self):
        problem = random_knapsack(6, seed=3)
        result = SequentialSolver(problem).solve()
        assert result.best_code is not None
        state = problem.rebuild_state(result.best_code)
        assert state is not None
        assert problem.feasible_value(state) == pytest.approx(result.best_value)

    def test_infeasible_branch_returns_none(self):
        instance = KnapsackInstance(values=(10.0,), weights=(5.0,), capacity=1.0)
        problem = KnapsackProblem(instance)
        decision = problem.branching_decision(problem.root_state())
        assert problem.apply_branch(problem.root_state(), decision.variable, 1) is None
        assert problem.apply_branch(problem.root_state(), decision.variable, 0) is not None

    def test_wrong_branch_variable_rejected(self):
        problem = random_knapsack(4, seed=0)
        with pytest.raises(ValueError):
            problem.apply_branch(problem.root_state(), 999, 0)

    def test_describe(self):
        problem = random_knapsack(4, seed=0)
        info = problem.describe()
        assert info["sense"] == "max"
        assert info["items"] == 4

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_knapsack(0)


class TestVertexCover:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            VertexCoverInstance(n_vertices=2, edges=((0, 0),), weights=(1.0, 1.0))
        with pytest.raises(ValueError):
            VertexCoverInstance(n_vertices=2, edges=((0, 1),), weights=(1.0,))
        with pytest.raises(ValueError):
            VertexCoverInstance(n_vertices=2, edges=((0, 1),), weights=(1.0, -1.0))

    def test_bnb_matches_enumeration(self):
        for seed in range(4):
            problem = random_vertex_cover(7, seed=seed, edge_probability=0.4)
            result = SequentialSolver(problem).solve()
            assert result.best_value == pytest.approx(problem.solve_exact(), abs=1e-9)

    def test_feasible_value_requires_full_cover(self):
        problem = random_vertex_cover(5, seed=2)
        assert problem.feasible_value(problem.root_state()) is None
        full = frozenset(range(5))
        assert problem.feasible_value(full) == pytest.approx(
            sum(problem.instance.weights)
        )

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_vertex_cover(1)


class TestSetCover:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            SetCoverInstance(n_elements=2, sets=(frozenset({0}),), costs=(1.0,))
        with pytest.raises(ValueError):
            SetCoverInstance(
                n_elements=1, sets=(frozenset({0}),), costs=(1.0, 2.0)
            )

    def test_bnb_matches_enumeration(self):
        for seed in range(4):
            problem = random_set_cover(6, 6, seed=seed)
            result = SequentialSolver(problem).solve()
            assert result.best_value == pytest.approx(problem.solve_exact(), abs=1e-9)

    def test_bound_admissible_at_root(self):
        problem = random_set_cover(6, 6, seed=1)
        assert problem.bound(problem.root_state()) <= problem.solve_exact() + 1e-9

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_set_cover(0, 3)


class TestMaxSat:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            MaxSatInstance(n_variables=1, clauses=((),), weights=(1.0,))
        with pytest.raises(ValueError):
            MaxSatInstance(n_variables=1, clauses=(((5, True),),), weights=(1.0,))
        with pytest.raises(ValueError):
            MaxSatInstance(n_variables=1, clauses=(((0, True),),), weights=(1.0, 2.0))

    def test_bnb_matches_enumeration(self):
        for seed in range(4):
            problem = random_maxsat(6, 10, seed=seed)
            result = SequentialSolver(problem).solve()
            assert result.best_value == pytest.approx(problem.solve_exact(), abs=1e-9)

    def test_bound_is_upper_bound(self):
        problem = random_maxsat(5, 8, seed=2)
        assert problem.bound(problem.root_state()) >= problem.solve_exact() - 1e-9

    def test_branching_assigns_every_variable(self):
        problem = random_maxsat(3, 4, seed=0)
        state = problem.root_state()
        for _ in range(3):
            decision = problem.branching_decision(state)
            assert decision is not None
            state = problem.apply_branch(state, decision.variable, 1)
        assert problem.branching_decision(state) is None

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            random_maxsat(0, 1)


class TestCrossProblemProperties:
    @given(st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_knapsack_bnb_equals_dp(self, n_items, seed):
        problem = random_knapsack(n_items, seed=seed)
        result = SequentialSolver(problem).solve()
        assert result.best_value == pytest.approx(problem.solve_exact(), abs=1e-6)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_selection_rule_does_not_change_optimum(self, seed):
        problem = random_knapsack(8, seed=seed)
        values = set()
        for rule in SelectionRule:
            result = SequentialSolver(problem, rule=rule).solve()
            values.add(round(result.best_value, 6))
        assert len(values) == 1
