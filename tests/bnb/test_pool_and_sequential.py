"""Tests for the subproblem pool, the node expander and the sequential solver."""

import pytest

from repro.bnb.pool import SelectionRule, SubproblemPool
from repro.bnb.problem import Subproblem
from repro.bnb.knapsack import random_knapsack
from repro.bnb.sequential import NodeExpander, SequentialSolver
from repro.core.codeset import contract
from repro.core.encoding import ROOT, PathCode


def make_sub(depth, tag=0):
    code = ROOT
    for level in range(depth):
        code = code.child(level, tag & 1)
    return Subproblem(code, ("state", depth, tag))


class TestSubproblemPool:
    def test_depth_first_pops_deepest(self):
        pool = SubproblemPool(SelectionRule.DEPTH_FIRST)
        pool.push(make_sub(1))
        pool.push(make_sub(3))
        pool.push(make_sub(2))
        assert pool.pop().depth == 3
        assert pool.pop().depth == 2

    def test_breadth_first_pops_shallowest(self):
        pool = SubproblemPool(SelectionRule.BREADTH_FIRST)
        pool.push(make_sub(2))
        pool.push(make_sub(1))
        assert pool.pop().depth == 1

    def test_best_first_minimise_and_maximise(self):
        mins = SubproblemPool(SelectionRule.BEST_FIRST, minimize=True)
        mins.push(make_sub(1, 0), bound=5.0)
        mins.push(make_sub(1, 1), bound=2.0)
        assert mins.pop().state[2] == 1

        maxs = SubproblemPool(SelectionRule.BEST_FIRST, minimize=False)
        maxs.push(make_sub(1, 0), bound=5.0)
        maxs.push(make_sub(1, 1), bound=2.0)
        assert maxs.pop().state[2] == 0

    def test_best_first_requires_bound(self):
        pool = SubproblemPool(SelectionRule.BEST_FIRST)
        with pytest.raises(ValueError):
            pool.push(make_sub(1))

    def test_pop_and_peek_empty(self):
        pool = SubproblemPool()
        with pytest.raises(IndexError):
            pool.pop()
        with pytest.raises(IndexError):
            pool.peek()

    def test_peek_does_not_remove(self):
        pool = SubproblemPool()
        pool.push(make_sub(1))
        assert pool.peek().depth == 1
        assert len(pool) == 1

    def test_len_bool_iter_and_codes(self):
        pool = SubproblemPool()
        assert not pool
        pool.push(make_sub(1))
        pool.push(make_sub(2))
        assert len(pool) == 2 and pool
        assert len(list(pool)) == 2
        assert len(pool.codes()) == 2
        assert pool.storage_bytes() > 0

    def test_max_size_high_water(self):
        pool = SubproblemPool()
        for depth in range(5):
            pool.push(make_sub(depth + 1))
        pool.pop()
        assert pool.max_size == 5
        assert pool.total_inserted == 5

    def test_donation_respects_keep_at_least(self):
        pool = SubproblemPool()
        for depth in range(1, 6):
            pool.push(make_sub(depth))
        assert pool.can_donate(keep_at_least=2)
        donated = pool.take_for_donation(max_count=10, keep_at_least=2)
        assert len(donated) == 3
        assert len(pool) == 2

    def test_donation_prefers_shallow(self):
        pool = SubproblemPool()
        for depth in (5, 1, 3):
            pool.push(make_sub(depth))
        donated = pool.take_for_donation(max_count=1, keep_at_least=1)
        assert donated[0].depth == 1

    def test_donation_prefers_deep_when_asked(self):
        pool = SubproblemPool()
        for depth in (5, 1, 3):
            pool.push(make_sub(depth))
        donated = pool.take_for_donation(max_count=1, keep_at_least=1, prefer_shallow=False)
        assert donated[0].depth == 5

    def test_cannot_donate_small_pool(self):
        pool = SubproblemPool()
        pool.push(make_sub(1))
        assert not pool.can_donate(keep_at_least=1)
        assert pool.take_for_donation(max_count=2, keep_at_least=1) == []

    def test_drain_and_clear(self):
        pool = SubproblemPool()
        pool.push(make_sub(1))
        pool.push(make_sub(2))
        drained = pool.drain()
        assert len(drained) == 2 and len(pool) == 0
        pool.push(make_sub(1))
        pool.clear()
        assert len(pool) == 0


class TestLazyDonation:
    """The tombstone scheme must be invisible to every pool consumer."""

    def test_donated_entries_invisible_everywhere(self):
        pool = SubproblemPool(SelectionRule.BREADTH_FIRST)
        for depth in range(1, 7):
            pool.push(make_sub(depth))
        donated = pool.take_for_donation(max_count=2, keep_at_least=1)
        assert sorted(sub.depth for sub in donated) == [1, 2]
        assert pool.lazy_removed_total == 2
        assert len(pool) == 4
        assert sorted(sub.depth for sub in pool) == [3, 4, 5, 6]
        assert sorted(code.depth for code in pool.codes()) == [3, 4, 5, 6]
        # peek/pop must skip the tombstoned shallow entries.
        assert pool.peek().depth == 3
        assert [pool.pop().depth for _ in range(4)] == [3, 4, 5, 6]
        assert not pool
        with pytest.raises(IndexError):
            pool.pop()

    def test_drain_excludes_donated(self):
        pool = SubproblemPool()
        for depth in range(1, 5):
            pool.push(make_sub(depth))
        pool.take_for_donation(max_count=2, keep_at_least=1)
        assert sorted(sub.depth for sub in pool.drain()) == [3, 4]
        assert len(pool) == 0

    def test_storage_bytes_excludes_donated(self):
        pool = SubproblemPool()
        for depth in range(1, 5):
            pool.push(make_sub(depth))
        before = pool.storage_bytes()
        donated = pool.take_for_donation(max_count=2, keep_at_least=1)
        freed = sum(sub.code.wire_size() for sub in donated)
        assert pool.storage_bytes() == before - freed

    def test_repeated_donations_trigger_compaction(self):
        pool = SubproblemPool()
        for depth in range(1, 101):
            pool.push(make_sub(depth))
        total_donated = 0
        while pool.can_donate(keep_at_least=10):
            total_donated += len(pool.take_for_donation(max_count=7, keep_at_least=10))
        assert len(pool) == 10
        assert total_donated == 90
        assert pool.lazy_removed_total == 90
        assert pool.compactions >= 1
        # Everything left must still pop in rule order (deepest first).
        assert [pool.pop().depth for _ in range(10)] == list(range(100, 90, -1))

    def test_push_after_donation_keeps_order(self):
        pool = SubproblemPool()
        for depth in (2, 4, 6):
            pool.push(make_sub(depth))
        pool.take_for_donation(max_count=1, keep_at_least=1)  # takes depth 2
        pool.push(make_sub(5))
        assert [pool.pop().depth for _ in range(3)] == [6, 5, 4]


class TestNodeExpanderAndSolver:
    def test_expander_counts_nodes(self):
        problem = random_knapsack(6, seed=1)
        expander = NodeExpander(problem)
        outcome = expander.expand(problem.root_subproblem(), incumbent=None)
        assert expander.nodes_expanded == 1
        assert outcome.status == "branched"
        assert 1 <= len(outcome.children) <= 2

    def test_expander_prunes_against_incumbent(self):
        problem = random_knapsack(6, seed=1)
        expander = NodeExpander(problem)
        huge_incumbent = problem.bound(problem.root_state()) + 1.0
        outcome = expander.expand(problem.root_subproblem(), incumbent=huge_incumbent)
        assert outcome.status == "pruned"
        assert outcome.completed == (ROOT,)
        assert expander.nodes_pruned == 1

    def test_solver_tracks_completed_codes(self):
        problem = random_knapsack(7, seed=4)
        solver = SequentialSolver(problem, track_completed=True)
        result = solver.solve()
        assert result.completed_codes
        # The union of completed codes must contract to exactly the root:
        # the whole tree is accounted for, nothing more, nothing less.
        assert contract(result.completed_codes) == {ROOT}

    def test_solver_max_nodes_cap(self):
        problem = random_knapsack(12, seed=5)
        capped = SequentialSolver(problem, max_nodes=5).solve()
        assert capped.nodes_expanded <= 5

    def test_solver_callback_invoked(self):
        problem = random_knapsack(5, seed=2)
        seen = []
        SequentialSolver(problem, on_expand=seen.append).solve()
        assert seen
        assert seen[0].subproblem.code == ROOT

    def test_solve_result_fields(self):
        problem = random_knapsack(6, seed=6)
        result = SequentialSolver(problem).solve()
        assert result.nodes_expanded > 0
        assert result.total_cost >= 0.0
        assert result.max_pool_size >= 1
        assert result.best_code is not None
