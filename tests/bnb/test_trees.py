"""Tests for basic trees, the recorder, random generation and replay."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.basic_tree import BasicTree, BasicTreeNode, record_basic_tree
from repro.bnb.cost_model import NodeTimeModel, assign_node_times, tree_time_summary
from repro.bnb.knapsack import random_knapsack
from repro.bnb.pool import SelectionRule
from repro.bnb.random_tree import RandomTreeSpec, generate_random_tree, paper_workload
from repro.bnb.sequential import SequentialSolver
from repro.bnb.tree_problem import TreeReplayProblem
from repro.core.encoding import ROOT


def tiny_manual_tree():
    """A hand-built 5-node tree: root branches on 0; left branches on 1."""
    n0 = BasicTreeNode(0, ROOT, bound=1.0, time=0.1, branch_variable=0)
    left = ROOT.child(0, 0)
    right = ROOT.child(0, 1)
    n1 = BasicTreeNode(1, left, bound=2.0, time=0.1, branch_variable=1)
    n2 = BasicTreeNode(2, right, bound=3.0, time=0.1, feasible_value=4.0)
    n3 = BasicTreeNode(3, left.child(1, 0), bound=2.5, time=0.1, feasible_value=2.5)
    n4 = BasicTreeNode(4, left.child(1, 1), bound=5.0, time=0.1)
    return BasicTree([n0, n1, n2, n3, n4], minimize=True, name="manual")


class TestBasicTreeStructure:
    def test_manual_tree_queries(self):
        tree = tiny_manual_tree()
        assert len(tree) == 5
        assert tree.root.code == ROOT
        assert tree.depth() == 2
        assert len(tree.leaves()) == 3
        assert len(tree.feasible_leaves()) == 2
        assert tree.optimal_value() == pytest.approx(2.5)
        assert tree.total_node_time() == pytest.approx(0.5)
        assert tree.mean_node_time() == pytest.approx(0.1)
        assert ROOT.child(0, 0) in tree
        children = tree.children(ROOT)
        assert {c.code for c in children} == {ROOT.child(0, 0), ROOT.child(0, 1)}

    def test_missing_root_rejected(self):
        node = BasicTreeNode(0, ROOT.child(0, 0), bound=1.0, time=0.1)
        with pytest.raises(ValueError):
            BasicTree([node])

    def test_orphan_rejected(self):
        nodes = [
            BasicTreeNode(0, ROOT, bound=1.0, time=0.1, branch_variable=0),
            BasicTreeNode(1, ROOT.child(0, 0), bound=1.0, time=0.1),
            BasicTreeNode(2, ROOT.child(0, 1), bound=1.0, time=0.1),
            BasicTreeNode(3, ROOT.child(5, 0).child(1, 0), bound=1.0, time=0.1),
        ]
        with pytest.raises(ValueError):
            BasicTree(nodes)

    def test_missing_child_rejected(self):
        nodes = [
            BasicTreeNode(0, ROOT, bound=1.0, time=0.1, branch_variable=0),
            BasicTreeNode(1, ROOT.child(0, 0), bound=1.0, time=0.1),
        ]
        with pytest.raises(ValueError):
            BasicTree(nodes)

    def test_inconsistent_branch_variable_rejected(self):
        nodes = [
            BasicTreeNode(0, ROOT, bound=1.0, time=0.1, branch_variable=0),
            BasicTreeNode(1, ROOT.child(1, 0), bound=1.0, time=0.1),
            BasicTreeNode(2, ROOT.child(1, 1), bound=1.0, time=0.1),
        ]
        with pytest.raises(ValueError):
            BasicTree(nodes)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            BasicTree([BasicTreeNode(0, ROOT, bound=1.0, time=-0.1)])

    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError):
            BasicTree(
                [
                    BasicTreeNode(0, ROOT, bound=1.0, time=0.1),
                    BasicTreeNode(1, ROOT, bound=2.0, time=0.1),
                ]
            )

    def test_serialisation_roundtrip(self, tmp_path):
        tree = tiny_manual_tree()
        path = tmp_path / "tree.json"
        tree.save(path)
        loaded = BasicTree.load(path)
        assert len(loaded) == len(tree)
        assert loaded.optimal_value() == tree.optimal_value()
        assert loaded.node(ROOT).branch_variable == 0

    def test_scaled_times(self):
        tree = tiny_manual_tree()
        scaled = tree.with_scaled_times(10.0)
        assert scaled.total_node_time() == pytest.approx(5.0)
        with pytest.raises(ValueError):
            tree.with_scaled_times(-1.0)


class TestRecorder:
    def test_recorded_tree_contains_all_nodes(self):
        problem = random_knapsack(6, seed=2)
        tree = record_basic_tree(problem, name="kp6")
        # Without elimination the recorded tree covers every expanded node and
        # replaying it with pruning gives back the true optimum.
        assert len(tree) >= 3
        assert tree.optimal_value() == pytest.approx(problem.solve_exact(), abs=1e-6)

    def test_recorded_tree_replay_matches_direct_solve(self):
        problem = random_knapsack(7, seed=9)
        tree = record_basic_tree(problem)
        replay = TreeReplayProblem(tree)
        direct = SequentialSolver(problem).solve()
        replayed = SequentialSolver(replay).solve()
        assert replayed.best_value == pytest.approx(direct.best_value, abs=1e-9)

    def test_truncated_recording_is_still_valid(self):
        problem = random_knapsack(10, seed=1)
        tree = record_basic_tree(problem, max_nodes=20)
        tree.validate()
        assert len(tree) <= 3 * 20  # expanded nodes plus recorded children


class TestRandomTrees:
    def test_exact_node_count_and_validity(self):
        for nodes in (1, 3, 51, 200):
            tree = generate_random_tree(RandomTreeSpec(nodes=nodes, seed=3))
            tree.validate()
            expected = nodes if nodes % 2 == 1 else nodes + 1
            assert len(tree) == expected

    def test_deterministic_for_seed(self):
        a = generate_random_tree(RandomTreeSpec(nodes=101, seed=5))
        b = generate_random_tree(RandomTreeSpec(nodes=101, seed=5))
        assert a.to_dict() == b.to_dict()
        c = generate_random_tree(RandomTreeSpec(nodes=101, seed=6))
        assert a.to_dict() != c.to_dict()

    def test_has_feasible_leaf_and_positive_times(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=101, seed=1))
        assert tree.optimal_value() is not None
        assert all(node.time >= 0 for node in tree)
        assert tree.mean_node_time() > 0

    def test_bounds_are_admissible_along_paths(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=201, seed=8))
        for node in tree:
            if node.feasible_value is not None:
                for ancestor in node.code.ancestors(include_self=True):
                    assert tree.node(ancestor).bound <= node.feasible_value + 1e-9

    def test_mean_node_time_close_to_spec(self):
        spec = RandomTreeSpec(nodes=2001, mean_node_time=0.5, seed=4)
        tree = generate_random_tree(spec)
        assert tree.mean_node_time() == pytest.approx(0.5, rel=0.15)

    def test_paper_workloads(self):
        fig3 = paper_workload("figure3")
        assert 3300 <= len(fig3) <= 3700
        assert fig3.mean_node_time() == pytest.approx(0.01, rel=0.2)
        tiny = paper_workload("tiny")
        assert len(tiny) < 300
        with pytest.raises(ValueError):
            paper_workload("nonexistent")

    @given(st.integers(min_value=3, max_value=301), st.integers(min_value=0, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_random_trees_always_validate(self, nodes, seed):
        tree = generate_random_tree(RandomTreeSpec(nodes=nodes, seed=seed))
        tree.validate()
        # Full binary: internal nodes have exactly two recorded children.
        for node in tree:
            assert len(node.child_codes()) in (0, 2)


class TestTreeReplay:
    def test_replay_optimum_with_pruning(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=301, seed=2))
        problem = TreeReplayProblem(tree, prune=True)
        result = SequentialSolver(problem).solve()
        assert result.best_value == pytest.approx(tree.optimal_value())
        assert result.nodes_expanded <= len(tree)

    def test_replay_without_pruning_expands_everything(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=101, seed=2))
        problem = TreeReplayProblem(tree, prune=False)
        result = SequentialSolver(problem, rule=SelectionRule.DEPTH_FIRST).solve()
        assert result.nodes_expanded == len(tree)
        assert result.best_value == pytest.approx(tree.optimal_value())

    def test_granularity_scales_cost(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=101, seed=2))
        base = TreeReplayProblem(tree, prune=False)
        scaled = base.with_granularity(10.0)
        r1 = SequentialSolver(base, rule=SelectionRule.DEPTH_FIRST).solve()
        r2 = SequentialSolver(scaled, rule=SelectionRule.DEPTH_FIRST).solve()
        assert r2.total_cost == pytest.approx(10.0 * r1.total_cost, rel=1e-9)

    def test_invalid_granularity(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=11, seed=0))
        with pytest.raises(ValueError):
            TreeReplayProblem(tree, granularity=-1.0)

    def test_describe(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=11, seed=0, name="t"))
        info = TreeReplayProblem(tree).describe()
        assert info["tree"] == "t"
        assert info["nodes"] == 11


class TestCostModel:
    def test_assign_node_times_deterministic(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=101, seed=2))
        model = NodeTimeModel(mean=2.0, cv=0.3, seed=9)
        a = assign_node_times(tree, model)
        b = assign_node_times(tree, model)
        assert a.to_dict() == b.to_dict()
        assert a.mean_node_time() == pytest.approx(2.0, rel=0.3)

    def test_zero_mean_and_zero_cv(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=11, seed=2))
        zero = assign_node_times(tree, NodeTimeModel(mean=0.0))
        assert zero.total_node_time() == 0.0
        constant = assign_node_times(tree, NodeTimeModel(mean=1.0, cv=0.0))
        assert all(node.time == pytest.approx(1.0) for node in constant)

    def test_tree_time_summary(self):
        tree = generate_random_tree(RandomTreeSpec(nodes=11, seed=2))
        summary = tree_time_summary(tree)
        assert summary["nodes"] == 11
        assert summary["total"] == pytest.approx(tree.total_node_time())
