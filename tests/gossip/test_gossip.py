"""Tests for rumor mongering, membership and the epidemic failure detector."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.gossip.failure_detector import GossipFailureDetector
from repro.gossip.membership import MembershipConfig, MembershipProtocol, MembershipView
from repro.gossip.rumor import RumorMonger
from repro.gossip.gossip_server import (
    GossipMemberEntity,
    GossipServerEntity,
    JoinAnnouncement,
    ViewGossip,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import Network
from repro.simulation.rng import RngRegistry


class TestRumorMonger:
    def test_learn_and_hotness(self):
        monger = RumorMonger(stop_count=2, rng=random.Random(0))
        assert monger.learn("r1", {"data": 1}, now=0.0) is True
        assert monger.learn("r1", {"data": 1}, now=0.1) is False
        assert monger.knows("r1")
        assert monger.get("r1").is_hot
        assert [rid for rid, _ in monger.outgoing()] == ["r1"]

    def test_feedback_cools_rumor(self):
        monger = RumorMonger(stop_count=2, rng=random.Random(0))
        monger.learn("r1", None)
        monger.feedback("r1", peer_already_knew=False)
        assert monger.get("r1").hot_count == 2
        monger.feedback("r1", peer_already_knew=True)
        monger.feedback("r1", peer_already_knew=True)
        assert not monger.get("r1").is_hot
        assert monger.hot_rumors() == []
        # Feedback on unknown rumors is a no-op.
        monger.feedback("missing", peer_already_knew=True)

    def test_choose_peers(self):
        monger = RumorMonger(fanout=2, rng=random.Random(1))
        peers = monger.choose_peers(["a", "b", "c", "me"], exclude="me")
        assert len(peers) == 2
        assert "me" not in peers
        assert monger.choose_peers(["me"], exclude="me") == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RumorMonger(stop_count=0)
        with pytest.raises(ValueError):
            RumorMonger(fanout=0)

    def test_epidemic_spread_reaches_everyone(self):
        """Push gossip over a complete graph eventually informs every member."""
        rng = random.Random(5)
        members = [f"m{i}" for i in range(12)]
        mongers = {m: RumorMonger(stop_count=3, fanout=2, rng=random.Random(i)) for i, m in enumerate(members)}
        mongers["m0"].learn("update", 42)
        for _round in range(60):
            for name, monger in mongers.items():
                for rumor_id, payload in monger.outgoing():
                    for peer in monger.choose_peers(members, exclude=name):
                        knew = mongers[peer].knows(rumor_id)
                        mongers[peer].learn(rumor_id, payload)
                        monger.feedback(rumor_id, peer_already_knew=knew)
            if all(m.knows("update") for m in mongers.values()):
                break
        assert all(m.knows("update") for m in mongers.values())


class TestMembershipView:
    def test_heard_from_and_queries(self):
        view = MembershipView("me", now=0.0)
        assert view.heard_from("peer", 1.0) is True
        assert view.heard_from("peer", 2.0) is False
        assert view.last_heard("peer") == 2.0
        assert view.last_heard("ghost") is None
        assert "peer" in view and len(view) == 2
        assert view.members() == ["me", "peer"]

    def test_stale_timestamps_do_not_go_backwards(self):
        view = MembershipView("me", now=0.0)
        view.heard_from("peer", 5.0)
        view.heard_from("peer", 3.0)
        assert view.last_heard("peer") == 5.0

    def test_merge_digest_clamps_future_timestamps(self):
        view = MembershipView("me", now=0.0)
        new = view.merge_digest((("peer", 99.0, False),), now=2.0)
        assert new == ["peer"]
        assert view.last_heard("peer") == 2.0

    def test_alive_and_suspected(self):
        view = MembershipView("me", now=0.0)
        view.heard_from("fresh", 9.0)
        view.heard_from("stale", 1.0)
        view.touch_self(10.0)
        assert view.alive_members(now=10.0, failure_timeout=5.0) == ["fresh", "me"]
        assert view.suspected_members(now=10.0, failure_timeout=5.0) == ["stale"]

    def test_remove_never_removes_owner(self):
        view = MembershipView("me", now=0.0)
        view.heard_from("peer", 0.0)
        view.remove("peer")
        view.remove("me")
        assert view.members() == ["me"]

    def test_gossip_servers_and_digest(self):
        view = MembershipView("me", now=0.0)
        view.heard_from("srv", 1.0, is_gossip_server=True)
        assert view.gossip_servers() == ["srv"]
        digest = view.digest()
        assert ("srv", 1.0, True) in digest
        assert view.digest_wire_size() > 0


class TestMembershipProtocol:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MembershipConfig(gossip_interval=0)
        with pytest.raises(ValueError):
            MembershipConfig(cleanup_timeout=1.0, failure_timeout=5.0)
        with pytest.raises(ValueError):
            MembershipConfig(gossip_fanout=0)

    def test_digest_exchange_discovers_members(self):
        config = MembershipConfig()
        alice = MembershipProtocol("alice", config, rng=random.Random(1))
        bob = MembershipProtocol("bob", config, rng=random.Random(2))
        bob.view.heard_from("carol", 0.5)
        new = alice.on_digest("bob", bob.make_digest(1.0), now=1.0)
        # The sender is registered directly (not reported as "new"); members
        # learned through the digest are.
        assert set(new) == {"carol"}
        assert "carol" in alice.view
        assert "bob" in alice.view

    def test_gossip_targets_exclude_self_and_respect_fanout(self):
        config = MembershipConfig(gossip_fanout=2)
        proto = MembershipProtocol("me", config, rng=random.Random(0))
        for name in ("a", "b", "c"):
            proto.view.heard_from(name, 0.0)
        targets = proto.gossip_targets(now=1.0)
        assert len(targets) == 2
        assert "me" not in targets
        assert proto.broadcast_rounds == 1 and proto.sampled_rounds == 0

    def test_gossip_targets_sample_large_views(self):
        config = MembershipConfig(gossip_fanout=2, sample_cap=16)
        proto = MembershipProtocol("me", config, rng=random.Random(0))
        for i in range(100):
            proto.view.heard_from(f"m{i}", 0.0)
        targets = proto.gossip_targets(now=1.0)
        assert len(targets) == 2 and "me" not in targets
        assert len(set(targets)) == 2
        assert proto.sampled_rounds == 1 and proto.broadcast_rounds == 0
        # Only fresh members are ever sampled.
        proto2 = MembershipProtocol(
            "me", MembershipConfig(gossip_fanout=2, sample_cap=8, failure_timeout=1.0,
                                   cleanup_timeout=2.0),
            rng=random.Random(1),
        )
        for i in range(50):
            proto2.view.heard_from(f"m{i}", 0.0)
        proto2.view.heard_from("m1", 5.0)
        proto2.view.heard_from("m2", 5.0)
        for _ in range(20):
            assert set(proto2.gossip_targets(now=5.5)) <= {"m1", "m2"}

    def test_sample_cap_validation(self):
        with pytest.raises(ValueError):
            MembershipConfig(sample_cap=0)

    def test_cleanup_removes_long_suspected(self):
        config = MembershipConfig(failure_timeout=2.0, cleanup_timeout=4.0)
        proto = MembershipProtocol("me", config)
        proto.view.heard_from("dead", 0.0)
        assert proto.suspected_members(now=3.0) == ["dead"]
        assert proto.run_cleanup(now=3.0) == []
        assert proto.run_cleanup(now=5.0) == ["dead"]
        assert "dead" not in proto.view
        assert proto.removed == ["dead"]

    def test_join_announcement(self):
        proto = MembershipProtocol("server", MembershipConfig())
        assert proto.on_join_announcement("newcomer", 1.0) is True
        assert "newcomer" in proto.view


class TestSimulatedMembership:
    def build(self, n_members=4, loss=0.0):
        config = MembershipConfig(gossip_interval=0.5, failure_timeout=3.0, cleanup_timeout=6.0)
        engine = SimulationEngine()
        rng = RngRegistry(7)
        network = Network(engine, loss_probability=loss, rng=rng.stream("net"))
        server = GossipServerEntity("server", config, rng=rng.stream("server"))
        network.register(server)
        members = []
        for i in range(n_members):
            member = GossipMemberEntity(
                f"m{i}", config, gossip_servers=["server"], rng=rng.stream(f"m{i}")
            )
            network.register(member)
            members.append(member)
        return engine, network, server, members

    def start_all(self, server, members):
        server.on_start()
        for member in members:
            member.on_start()

    def test_members_discover_each_other(self):
        engine, network, server, members = self.build(n_members=5)
        self.start_all(server, members)
        engine.run(until=10.0)
        expected = {"server"} | {m.name for m in members}
        for member in members:
            assert set(member.current_view()) == expected
        assert set(server.announced) == {m.name for m in members}

    def test_crashed_member_is_suspected_and_removed(self):
        engine, network, server, members = self.build(n_members=4)
        self.start_all(server, members)
        engine.run(until=5.0)
        victim = members[0]
        victim.crash()
        engine.run(until=25.0)
        for member in members[1:]:
            assert victim.name not in member.current_view()

    def test_membership_tolerates_message_loss(self):
        engine, network, server, members = self.build(n_members=4, loss=0.2)
        self.start_all(server, members)
        engine.run(until=20.0)
        expected = {"server"} | {m.name for m in members}
        for member in members:
            assert set(member.current_view()) == expected

    def test_message_wire_sizes(self):
        assert JoinAnnouncement("x").wire_size() > 0
        gossip = ViewGossip("a", (("a", 1.0, False),))
        assert gossip.wire_size() > JoinAnnouncement("x").wire_size() - 20


class TestFailureDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            GossipFailureDetector("me", fail_timeout=0)
        with pytest.raises(ValueError):
            GossipFailureDetector("me", fanout=0)

    def test_heartbeat_merge_and_suspicion(self):
        a = GossipFailureDetector("a", fail_timeout=2.0, cleanup_timeout=5.0)
        b = GossipFailureDetector("b", fail_timeout=2.0, cleanup_timeout=5.0)
        digest = a.tick(0.0)
        b.merge(digest, now=0.0)
        assert "a" in b.members()
        # While heartbeats keep increasing, nobody is suspected.
        for t in (1.0, 2.0, 3.0):
            b.merge(a.tick(t), now=t)
            b.tick(t)
        assert b.suspected(now=3.5) == []
        # When a stops ticking, b eventually suspects and then removes it.
        b.tick(6.0)
        assert "a" in b.suspected(now=6.0)
        removed = b.cleanup(now=10.0)
        assert removed == ["a"]
        assert "a" not in b.members()

    def test_stale_heartbeat_does_not_refresh(self):
        a = GossipFailureDetector("a")
        b = GossipFailureDetector("b")
        digest = a.tick(0.0)
        b.merge(digest, now=0.0)
        # Re-delivering the same (old) heartbeat later must not refresh.
        b.merge(digest, now=10.0)
        assert "a" in b.suspected(now=10.0)

    def test_choose_targets(self):
        detector = GossipFailureDetector("me", fanout=2, rng=random.Random(0))
        detector.merge((("a", 1), ("b", 1), ("c", 1)), now=0.0)
        targets = detector.choose_targets(now=0.5)
        assert len(targets) == 2 and "me" not in targets
        # A small table takes the exact full-scan ("broadcast") path.
        assert detector.broadcast_rounds == 1
        assert detector.sampled_rounds == 0

    def test_choose_targets_samples_large_tables(self):
        detector = GossipFailureDetector(
            "me", fanout=2, rng=random.Random(0), sample_cap=16
        )
        detector.merge(tuple((f"m{i}", 1) for i in range(100)), now=0.0)
        targets = detector.choose_targets(now=0.5)
        assert len(targets) == 2 and "me" not in targets
        assert len(set(targets)) == 2
        assert detector.sampled_rounds == 1
        assert detector.broadcast_rounds == 0

    def test_sampling_never_returns_suspected_members(self):
        detector = GossipFailureDetector(
            "me", fanout=3, rng=random.Random(1), sample_cap=8,
            fail_timeout=1.0, cleanup_timeout=2.0,
        )
        detector.merge(tuple((f"m{i}", 1) for i in range(50)), now=0.0)
        # Refresh only three members; everyone else goes stale.
        detector.merge((("m1", 2), ("m2", 2), ("m3", 2)), now=5.0)
        for _ in range(20):
            targets = detector.choose_targets(now=5.5)
            assert set(targets) <= {"m1", "m2", "m3"}

    def test_sampling_falls_back_when_everyone_is_stale(self):
        detector = GossipFailureDetector(
            "me", fanout=1, rng=random.Random(2), sample_cap=8,
            fail_timeout=1.0, cleanup_timeout=2.0,
        )
        detector.merge(tuple((f"m{i}", 1) for i in range(50)), now=0.0)
        assert detector.choose_targets(now=100.0) == []
        # Neither counter fires on an empty round.
        assert detector.sampled_rounds == 0
        assert detector.broadcast_rounds == 0

    def test_cleanup_keeps_sampling_index_in_sync(self):
        detector = GossipFailureDetector(
            "me", fanout=1, rng=random.Random(3), sample_cap=4,
            fail_timeout=1.0, cleanup_timeout=2.0,
        )
        detector.merge(tuple((f"m{i}", 1) for i in range(10)), now=0.0)
        detector.merge((("m0", 2),), now=5.0)
        detector.cleanup(now=5.0)
        assert detector.members() == ["m0", "me"]
        assert detector.choose_targets(now=5.5) == ["m0"]

    def test_sample_cap_validation(self):
        with pytest.raises(ValueError):
            GossipFailureDetector("me", sample_cap=0)

    def test_digest_wire_size(self):
        detector = GossipFailureDetector("me")
        detector.tick(0.0)
        assert detector.digest_wire_size() > 0
