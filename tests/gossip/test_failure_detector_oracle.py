"""Property tests: the failure detector against a straight-line oracle.

The churn machinery trusts :class:`~repro.gossip.failure_detector.
GossipFailureDetector` for its suspect/evict decisions, so the detector is
checked here against a reference oracle that implements its contract in the
most literal form possible: a dict of ``(highest heartbeat seen, local time
of the last increase)`` per member, with suspicion and cleanup as direct
timestamp comparisons.  Hundreds of seeded heartbeat streams — with random
delivery delays, reorderings and duplicated gossip — must produce *identical*
suspect and evict decisions on both implementations, and a live-but-slow
worker whose heartbeats always arrive within the configured fail timeout
must never be suspected, let alone evicted.
"""

import random
from typing import Dict, List, Tuple

import pytest

from repro.gossip.failure_detector import GossipFailureDetector

FAIL = 2.0
CLEANUP = 4.0
MEMBERS = ("m0", "m1", "m2", "m3")
#: 125 seeds × 4 member streams each = 500 independent heartbeat streams.
N_SEEDS = 125


class HeartbeatOracle:
    """The detector's contract, written as plainly as possible."""

    def __init__(self, owner: str, fail_timeout: float, cleanup_timeout: float) -> None:
        self.owner = owner
        self.fail_timeout = fail_timeout
        self.cleanup_timeout = cleanup_timeout
        self.table: Dict[str, Tuple[int, float]] = {owner: (0, 0.0)}

    def merge(self, name: str, heartbeat: int, now: float) -> None:
        known = self.table.get(name)
        if known is None or heartbeat > known[0]:
            self.table[name] = (heartbeat, now)

    def suspected(self, now: float) -> List[str]:
        return sorted(
            name
            for name, (_, seen) in self.table.items()
            if name != self.owner and (now - seen) > self.fail_timeout
        )

    def cleanup(self, now: float) -> List[str]:
        removed = sorted(
            name
            for name, (_, seen) in self.table.items()
            if name != self.owner and (now - seen) > self.cleanup_timeout
        )
        for name in removed:
            del self.table[name]
        return removed

    def members(self) -> List[str]:
        return sorted(self.table)


def _delivered_events(rng: random.Random) -> List[Tuple[float, float, str, int]]:
    """Seeded delivery schedule: delayed, reordered, duplicated heartbeats.

    Each member emits monotonically increasing heartbeats at its own cadence;
    some members stop early (they "die").  Every emission is delivered after
    a random delay, sometimes twice; sorting by (arrival, random tiebreak)
    yields out-of-order and duplicate deliveries exactly as an asynchronous
    lossy network would.
    """
    events: List[Tuple[float, float, str, int]] = []
    for member in MEMBERS:
        steps = rng.randrange(5, 25)
        if rng.random() < 0.4:
            steps = rng.randrange(2, 6)  # dies early
        interval = rng.uniform(0.3, 1.0)
        max_delay = rng.uniform(0.0, 1.5)
        for heartbeat in range(1, steps + 1):
            sent = heartbeat * interval
            arrival = sent + rng.uniform(0.0, max_delay)
            events.append((arrival, rng.random(), member, heartbeat))
            if rng.random() < 0.3:  # duplicated gossip, possibly much later
                events.append(
                    (arrival + rng.uniform(0.0, 2.0 * max_delay), rng.random(), member, heartbeat)
                )
    events.sort()
    return events


class TestDetectorMatchesOracle:
    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_identical_suspect_and_evict_decisions(self, seed):
        rng = random.Random(seed)
        detector = GossipFailureDetector(
            "obs", fail_timeout=FAIL, cleanup_timeout=CLEANUP, rng=random.Random(seed)
        )
        oracle = HeartbeatOracle("obs", FAIL, CLEANUP)
        last = 0.0
        for arrival, _, member, heartbeat in _delivered_events(rng):
            detector.merge(((member, heartbeat),), arrival)
            oracle.merge(member, heartbeat, arrival)
            last = max(last, arrival)
            if rng.random() < 0.3:
                probe = arrival + rng.uniform(0.0, 1.5 * CLEANUP)
                assert detector.suspected(probe) == oracle.suspected(probe)
            if rng.random() < 0.1:
                assert detector.cleanup(arrival) == oracle.cleanup(arrival)
                assert detector.members() == oracle.members()
        # Play the tail out: everyone has stopped, so suspicion and then
        # eviction must land identically at every later instant.
        for probe in (last + FAIL / 2, last + FAIL + 0.01, last + CLEANUP + 0.01):
            assert detector.suspected(probe) == oracle.suspected(probe)
            assert detector.cleanup(probe) == oracle.cleanup(probe)
            assert detector.members() == oracle.members()
        assert detector.members() == ["obs"]

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_live_but_slow_worker_is_never_falsely_evicted(self, seed):
        """Arrival gaps stay inside the fail timeout ⇒ never suspected."""
        rng = random.Random(10_000 + seed)
        detector = GossipFailureDetector("obs", fail_timeout=FAIL, cleanup_timeout=CLEANUP)
        detector.merge((("slow", 0),), 0.0)
        now, heartbeat = 0.0, 0
        for _ in range(30):
            now += rng.uniform(0.05, FAIL * 0.98)
            heartbeat += 1
            assert "slow" not in detector.suspected(now)
            detector.merge((("slow", heartbeat),), now)
        assert detector.cleanup(now) == []
        assert "slow" in detector.members()


class TestDigestExcludesSuspects:
    """Van Renesse's rule: failed members are not gossiped onward."""

    def test_suspected_member_leaves_the_timed_digest(self):
        detector = GossipFailureDetector("obs", fail_timeout=FAIL, cleanup_timeout=CLEANUP)
        detector.merge((("dead", 3), ("live", 3)), 0.0)
        detector.merge((("live", 4),), FAIL + 1.0)
        timed = dict(detector.digest(FAIL + 1.0))
        assert "dead" not in timed and "live" in timed and "obs" in timed
        # The untimed digest still carries everything (introspection form).
        assert "dead" in dict(detector.digest())

    def test_tick_digest_never_resurrects_a_cleaned_member(self):
        a = GossipFailureDetector("a", fail_timeout=FAIL, cleanup_timeout=CLEANUP)
        b = GossipFailureDetector("b", fail_timeout=FAIL, cleanup_timeout=CLEANUP)
        a.merge((("dead", 5), ("b", 1)), 0.0)
        b.merge((("a", 1),), 0.0)
        # b evicts the dead member before a does; a's onward gossip must not
        # re-introduce it (it is already suspected from a's point of view).
        later = CLEANUP + 0.5
        digest = a.tick(later)
        assert "dead" not in dict(digest)
        new = b.merge(digest, later)
        assert "dead" not in new and "dead" not in b.members()
