"""Centralised manager/worker parallel B&B — the related-work baseline.

Section 3 of the paper: "many investigations of parallel B&B for
distributed-memory systems have adopted a centralized approach in which a
single manager maintains the tree and hands out tasks to workers.  While
clearly not scalable, this approach simplifies the management of information
and multiple processes … the central manager remains an obstacle to both
scalability and fault tolerance."

This module implements that design on the same simulation substrate so the
fault-tolerance benchmarks can compare behaviours quantitatively:

* the **manager** keeps the global pool, the incumbent and the list of
  outstanding assignments;
* **workers** request a subproblem, expand it, send back the children (or the
  completion) and ask for more;
* crash of a *worker* loses only its in-flight subproblem, which the manager
  re-issues after a timeout (classic centralised checkpointing);
* crash of the *manager* is fatal — the computation never terminates — which
  is exactly the single-point-of-failure the paper's decentralised design
  removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..bnb.pool import SelectionRule, SubproblemPool
from ..bnb.problem import BranchAndBoundProblem, Subproblem
from ..bnb.sequential import NodeExpander
from ..core.encoding import PathCode
from ..simulation.engine import SimulationEngine
from ..simulation.entity import Entity, QueuedMessage
from ..simulation.failures import CrashEvent, FailureInjector
from ..simulation.network import LatencyModel, Network, Partition
from ..simulation.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..distributed.runner import NetworkConfig

__all__ = [
    "CentralTaskRequest",
    "CentralTaskAssignment",
    "CentralResult",
    "CentralRunResult",
    "CentralManagerEntity",
    "CentralWorkerEntity",
    "central_worker_names",
    "central_message_kind",
    "run_central_simulation",
]


def central_worker_names(n: int) -> List[str]:
    """Canonical worker names of the centralised backend (``cworker-NN``)."""
    return [f"cworker-{i:02d}" for i in range(n)]


def central_message_kind(payload: object) -> str:
    """Classify a centralised-protocol payload for per-kind traffic stats."""
    if isinstance(payload, CentralTaskRequest):
        return "task_request"
    if isinstance(payload, CentralTaskAssignment):
        return "task_assignment"
    if isinstance(payload, CentralNoWork):
        return "no_work"
    if isinstance(payload, CentralResult):
        return "task_result"
    return "unknown"


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class CentralTaskRequest:
    """Worker asking the manager for a subproblem."""

    worker: str

    def wire_size(self) -> int:
        return 32


@dataclass(frozen=True, slots=True)
class CentralTaskAssignment:
    """Manager handing a subproblem (by code) to a worker."""

    code: PathCode
    incumbent: Optional[float]

    def wire_size(self) -> int:
        return 32 + self.code.wire_size() + 10


@dataclass(frozen=True, slots=True)
class CentralNoWork:
    """Manager telling a worker there is currently nothing to hand out."""

    terminated: bool

    def wire_size(self) -> int:
        return 32


@dataclass(frozen=True, slots=True)
class CentralResult:
    """Worker returning the outcome of one expansion to the manager."""

    worker: str
    code: PathCode
    child_codes: Tuple[PathCode, ...]
    incumbent: Optional[float]

    def wire_size(self) -> int:
        return (
            32
            + self.code.wire_size()
            + sum(c.wire_size() for c in self.child_codes)
            + (10 if self.incumbent is not None else 0)
        )


# --------------------------------------------------------------------------- #
# Entities
# --------------------------------------------------------------------------- #
class CentralManagerEntity(Entity):
    """The central manager: global pool, incumbent, assignment tracking."""

    def __init__(
        self,
        name: str,
        problem: BranchAndBoundProblem,
        worker_names: Sequence[str],
        *,
        reassign_timeout: float = 2.0,
    ) -> None:
        super().__init__(name)
        self.problem = problem
        self.worker_names = list(worker_names)
        self.reassign_timeout = reassign_timeout
        self.pool: SubproblemPool = SubproblemPool(
            SelectionRule.BEST_FIRST, minimize=problem.minimize
        )
        self.incumbent: Optional[float] = None
        #: code -> (worker, assigned_at) for in-flight subproblems.
        self.outstanding: Dict[PathCode, Tuple[str, float]] = {}
        self.terminated = False
        self.terminated_at: Optional[float] = None
        self.nodes_completed = 0
        #: Recovery actions taken: subproblems re-queued after their worker
        #: went silent (the centralised design's fault-tolerance counter).
        self.reassignments = 0

    def on_start(self) -> None:
        root = self.problem.root_subproblem()
        self.pool.push(root, bound=self.problem.bound(root.state))
        self.set_timer(self.reassign_timeout, "reassign-check")

    def on_message_queued(self, message: QueuedMessage) -> None:
        self.process_pending_messages()

    def on_wakeup(self, reason: str) -> None:
        if not self.alive or self.terminated:
            return
        if reason == "reassign-check":
            self._reassign_stale()
            self.set_timer(self.reassign_timeout, "reassign-check")

    def _reassign_stale(self) -> None:
        """Re-queue subproblems whose worker has not answered in time.

        This is the centralised design's recovery story: the manager is the
        single reliable place that knows which work is outstanding.
        """
        now = self.engine.now if self.engine else 0.0
        for code, (worker, assigned_at) in list(self.outstanding.items()):
            if now - assigned_at >= self.reassign_timeout:
                del self.outstanding[code]
                self.reassignments += 1
                sub = self.problem.rebuild_subproblem(code)
                if sub is not None:
                    self.pool.push(sub, bound=self.problem.bound(sub.state))

    def on_message(self, message: QueuedMessage) -> None:
        payload = message.payload
        now = self.engine.now if self.engine else 0.0
        if isinstance(payload, CentralTaskRequest):
            self._hand_out(payload.worker, now)
        elif isinstance(payload, CentralResult):
            self._absorb_result(payload, now)

    def _hand_out(self, worker: str, now: float) -> None:
        if self.terminated:
            self.send(worker, CentralNoWork(terminated=True))
            return
        while self.pool:
            sub = self.pool.pop()
            bound = self.problem.bound(sub.state)
            from ..bnb.problem import worse_than

            if worse_than(bound, self.incumbent, minimize=self.problem.minimize):
                self.nodes_completed += 1  # pruned at the manager
                continue
            self.outstanding[sub.code] = (worker, now)
            self.send(worker, CentralTaskAssignment(code=sub.code, incumbent=self.incumbent))
            return
        self.send(worker, CentralNoWork(terminated=self._check_termination(now)))

    def _absorb_result(self, result: CentralResult, now: float) -> None:
        self.outstanding.pop(result.code, None)
        self.nodes_completed += 1
        if result.incumbent is not None and self.problem.is_improvement(
            result.incumbent, self.incumbent
        ):
            self.incumbent = result.incumbent
        for code in result.child_codes:
            sub = self.problem.rebuild_subproblem(code)
            if sub is not None:
                self.pool.push(sub, bound=self.problem.bound(sub.state))
        self._check_termination(now)

    def _check_termination(self, now: float) -> bool:
        if not self.terminated and not self.pool and not self.outstanding:
            self.terminated = True
            self.terminated_at = now
            for worker in self.worker_names:
                self.send(worker, CentralNoWork(terminated=True))
        return self.terminated


class CentralWorkerEntity(Entity):
    """A worker in the centralised design: fetch, expand, report, repeat."""

    def __init__(
        self,
        name: str,
        problem: BranchAndBoundProblem,
        manager: str,
        *,
        retry_interval: float = 1.0,
        nowork_retry_interval: float = 0.2,
    ) -> None:
        super().__init__(name)
        self.problem = problem
        self.manager = manager
        self.retry_interval = retry_interval
        self.nowork_retry_interval = nowork_retry_interval
        self.expander = NodeExpander(problem)
        self.incumbent: Optional[float] = None
        self.terminated = False
        self.nodes_expanded = 0
        self._waiting = False
        self._busy = False
        self._pending: Optional[Tuple[PathCode, Subproblem]] = None
        #: Assignments that arrived while an expansion was in flight (possible
        #: when a slow reply races a retried request); processed next.
        self._backlog: List[PathCode] = []
        self._request_seq = 0

    def on_start(self) -> None:
        self._request_work()

    def _request_work(self) -> None:
        if not self.alive or self.terminated or self._busy:
            return
        self._waiting = True
        self._request_seq += 1
        self.send(self.manager, CentralTaskRequest(worker=self.name))
        # A single retry watchdog per request: stale watchdogs (identified by
        # their sequence number) are ignored, which keeps the retry traffic
        # linear even when the manager is slow or dead.
        self.set_timer(self.retry_interval, f"retry:{self._request_seq}")

    def on_wakeup(self, reason: str) -> None:
        if not self.alive or self.terminated:
            return
        if reason.startswith("retry:"):
            seq = int(reason.split(":", 1)[1])
            if self._waiting and not self._busy and seq == self._request_seq:
                # The manager did not answer (it may have crashed).  Keep
                # retrying: in the centralised design there is nothing else a
                # worker can do.
                self._request_work()
        elif reason == "retry-nowork":
            if not self._waiting and not self._busy:
                self._request_work()
        elif reason == "work-done":
            self._finish_expansion()

    def on_message_queued(self, message: QueuedMessage) -> None:
        self.process_pending_messages()

    def on_message(self, message: QueuedMessage) -> None:
        payload = message.payload
        if isinstance(payload, CentralTaskAssignment):
            self._waiting = False
            if payload.incumbent is not None and self.problem.is_improvement(
                payload.incumbent, self.incumbent
            ):
                self.incumbent = payload.incumbent
            if self._busy:
                self._backlog.append(payload.code)
            else:
                self._begin_expansion(payload.code)
        elif isinstance(payload, CentralNoWork):
            self._waiting = False
            if payload.terminated:
                self.terminated = True
            elif not self._busy:
                self.set_timer(self.nowork_retry_interval, "retry-nowork")

    # ------------------------------------------------------------------ #
    # Expansion (spread over simulated time via a timer)
    # ------------------------------------------------------------------ #
    def _begin_expansion(self, code: PathCode) -> None:
        sub = self.problem.rebuild_subproblem(code)
        if sub is None:
            self.send(self.manager, CentralResult(self.name, code, (), self.incumbent))
            self._continue()
            return
        self._busy = True
        self._pending = (code, sub)
        cost = self.problem.node_cost(sub.state)
        self.set_timer(cost, "work-done")

    def _finish_expansion(self) -> None:
        if self._pending is None:
            return
        code, sub = self._pending
        self._pending = None
        self._busy = False
        outcome = self.expander.expand(sub, self.incumbent)
        self.nodes_expanded += 1
        if outcome.incumbent_value is not None:
            self.incumbent = outcome.incumbent_value
        child_codes = tuple(child.code for child, _ in outcome.children)
        self.send(self.manager, CentralResult(self.name, code, child_codes, self.incumbent))
        self._continue()

    def _continue(self) -> None:
        """Work through the backlog before asking the manager for more."""
        if self._backlog:
            self._begin_expansion(self._backlog.pop(0))
        else:
            self._request_work()


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
@dataclass
class CentralRunResult:
    """Result of a centralised-baseline run."""

    n_workers: int
    makespan: float
    best_value: Optional[float]
    terminated: bool
    manager_crashed: bool
    crashed_workers: List[str] = field(default_factory=list)
    nodes_expanded: int = 0
    total_bytes_sent: int = 0
    #: Subproblems the manager re-queued after their worker went silent.
    reassignments: int = 0
    #: Messages injected into the network.
    messages_sent: int = 0
    #: Bytes injected per protocol message kind (:func:`central_message_kind`).
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Nodes expanded per worker.
    nodes_by_worker: Dict[str, int] = field(default_factory=dict)
    #: Workers that learned of termination before the run ended.
    terminated_workers: List[str] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        """True when the manager detected termination (work all accounted for)."""
        return self.terminated


def run_central_simulation(
    problem: BranchAndBoundProblem,
    n_workers: int,
    *,
    failures: Sequence[CrashEvent] = (),
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    loss_probability: float = 0.0,
    network: Optional["NetworkConfig"] = None,
    max_sim_time: float = 10_000.0,
    reassign_timeout: float = 2.0,
) -> CentralRunResult:
    """Run the centralised manager/worker baseline and return its result.

    ``failures`` may name workers or the manager (``"manager"``); crashing the
    manager demonstrates the single point of failure — the run then stops at
    ``max_sim_time`` without terminating.

    ``network`` takes a full :class:`~repro.distributed.runner.NetworkConfig`
    (latency, loss *and* partitions) and supersedes the older ``latency`` /
    ``loss_probability`` keywords, which are kept as deprecated shims for one
    release.  This function itself is superseded by the unified Scenario API
    (``repro.scenario``, backend ``"central"``); prefer that for experiments.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    partitions: Sequence[Partition] = ()
    if network is not None:
        latency = network.latency
        loss_probability = network.loss_probability
        partitions = network.partitions
    rng = RngRegistry(seed)
    engine = SimulationEngine()
    net = Network(
        engine,
        latency=latency if latency is not None else LatencyModel.paper_default(),
        loss_probability=loss_probability,
        partitions=partitions,
        rng=rng.stream("network"),
    )
    net.classify = central_message_kind

    names = central_worker_names(n_workers)
    manager = CentralManagerEntity(
        "manager", problem, names, reassign_timeout=reassign_timeout
    )
    net.register(manager)
    workers = []
    for name in names:
        worker = CentralWorkerEntity(name, problem, "manager")
        net.register(worker)
        workers.append(worker)

    injector = FailureInjector(failures)
    injector.install(engine, net)

    manager.on_start()
    for worker in workers:
        worker.on_start()

    def _stop() -> bool:
        if not manager.alive:
            return False  # run until max_sim_time to show non-termination
        return manager.terminated

    engine.run(until=max_sim_time, stop_when=_stop)

    crashed = [w.name for w in workers if not w.alive]
    best = manager.incumbent
    for worker in workers:
        if worker.alive and worker.incumbent is not None:
            if best is None or problem.is_improvement(worker.incumbent, best):
                best = worker.incumbent

    return CentralRunResult(
        n_workers=n_workers,
        makespan=manager.terminated_at if manager.terminated_at is not None else engine.now,
        best_value=best,
        terminated=manager.terminated,
        manager_crashed=not manager.alive,
        crashed_workers=crashed,
        nodes_expanded=sum(w.nodes_expanded for w in workers),
        total_bytes_sent=net.stats.bytes_sent,
        reassignments=manager.reassignments,
        messages_sent=net.stats.messages_sent,
        bytes_by_kind=dict(net.kind_bytes),
        nodes_by_worker={w.name: w.nodes_expanded for w in workers},
        terminated_workers=[w.name for w in workers if w.alive and w.terminated],
    )
