"""Baseline parallel B&B designs the paper positions itself against.

* :mod:`repro.baselines.central` — the classic centralised manager/worker
  design (Section 3's related work), whose manager is a single point of
  failure;
* :mod:`repro.baselines.dib` — a DIB-style decentralised design with
  responsibility tracking (Finkel & Manber 1987, Sections 3 and 5.5), which
  recovers from worker failures by redoing handed-out work but depends on a
  reliable root machine for termination.

Both baselines run on the same simulation substrate and problem interface as
the paper's algorithm, so the fault-tolerance benchmarks compare mechanisms,
not implementations.
"""

from .central import (
    CentralManagerEntity,
    CentralRunResult,
    CentralWorkerEntity,
    central_message_kind,
    central_worker_names,
    run_central_simulation,
)
from .dib import (
    DibRunResult,
    DibWorkerEntity,
    dib_message_kind,
    dib_worker_names,
    run_dib_simulation,
)

__all__ = [
    "CentralManagerEntity",
    "CentralWorkerEntity",
    "CentralRunResult",
    "central_worker_names",
    "central_message_kind",
    "run_central_simulation",
    "DibWorkerEntity",
    "DibRunResult",
    "dib_worker_names",
    "dib_message_kind",
    "run_dib_simulation",
]
