"""DIB-style decentralised baseline (Finkel & Manber, 1987).

DIB — "Distributed Implementation of Backtracking" — is the only fully
decentralised, fault-tolerant tree-search algorithm the paper compares against
(Sections 3 and 5.5).  Its recovery mechanism is *responsibility tracking*:

* every machine remembers the problems **it is responsible for** (the ones it
  received), the machines it sent subproblems to and the machine each problem
  came from;
* the completion of a problem is reported to the machine it came from;
* a machine that suspects the work it handed out will never complete (the
  donee failed, or the report was lost) simply **redoes that work** itself.

The crucial structural difference from the paper's mechanism is that the
responsibility graph is a tree rooted at the machine that holds the original
problem: if that machine fails, nobody else can decide that the computation
has finished, so DIB "imposes the need for a reliable or duplicated node for
the root of this hierarchy", and the failure of any node also invalidates the
completion reports of the problems it was responsible for.  The
fault-tolerance benchmarks demonstrate exactly this asymmetry: our algorithm
survives the loss of all but one member, the DIB-style baseline does not
survive the loss of its root machine.

The implementation below runs on the same simulation substrate and the same
:class:`~repro.bnb.problem.BranchAndBoundProblem` interface as the main
algorithm, so the comparison isolates the recovery mechanism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..bnb.pool import SelectionRule, SubproblemPool
from ..bnb.problem import BranchAndBoundProblem, Subproblem
from ..bnb.sequential import NodeExpander
from ..core.codeset import CodeSet
from ..core.encoding import ROOT, PathCode
from ..simulation.engine import SimulationEngine
from ..simulation.entity import Entity, QueuedMessage
from ..simulation.failures import CrashEvent, FailureInjector
from ..simulation.network import LatencyModel, Network, Partition
from ..simulation.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..distributed.runner import NetworkConfig

__all__ = [
    "DibWorkRequest",
    "DibWorkGrant",
    "DibCompletionReport",
    "DibTerminationAnnounce",
    "DibWorkerEntity",
    "DibRunResult",
    "dib_worker_names",
    "dib_message_kind",
    "run_dib_simulation",
]


def dib_worker_names(n: int) -> List[str]:
    """Canonical worker names of the DIB backend (``dworker-NN``)."""
    return [f"dworker-{i:02d}" for i in range(n)]


def dib_message_kind(payload: object) -> str:
    """Classify a DIB-protocol payload for per-kind traffic stats."""
    if isinstance(payload, DibWorkRequest):
        return "work_request"
    if isinstance(payload, DibWorkGrant):
        return "work_grant"
    if isinstance(payload, DibWorkDenied):
        return "work_denied"
    if isinstance(payload, DibCompletionReport):
        return "completion_report"
    if isinstance(payload, DibTerminationAnnounce):
        return "termination_announce"
    return "unknown"


# --------------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class DibWorkRequest:
    """A starving DIB worker asking a random peer for work."""

    requester: str

    def wire_size(self) -> int:
        return 32


@dataclass(frozen=True, slots=True)
class DibWorkGrant:
    """Donated subproblems; the donor stays responsible for them."""

    donor: str
    codes: Tuple[PathCode, ...]
    incumbent: Optional[float]

    def wire_size(self) -> int:
        return 32 + sum(c.wire_size() for c in self.codes) + 10


@dataclass(frozen=True, slots=True)
class DibWorkDenied:
    """Negative answer to a work request."""

    donor: str
    incumbent: Optional[float]

    def wire_size(self) -> int:
        return 32


@dataclass(frozen=True, slots=True)
class DibCompletionReport:
    """Completion of a received problem, reported to the machine it came from."""

    worker: str
    code: PathCode
    incumbent: Optional[float]

    def wire_size(self) -> int:
        return 32 + self.code.wire_size() + 10


@dataclass(frozen=True, slots=True)
class DibTerminationAnnounce:
    """Broadcast by the root machine when the original problem completes."""

    best_value: Optional[float]

    def wire_size(self) -> int:
        return 42


@dataclass(frozen=True, slots=True)
class _Responsibility:
    """A problem this worker handed out and is still responsible for."""

    code: PathCode
    donee: str
    sent_at: float


# --------------------------------------------------------------------------- #
# Worker
# --------------------------------------------------------------------------- #
class DibWorkerEntity(Entity):
    """One machine of the DIB-style baseline."""

    def __init__(
        self,
        name: str,
        problem: BranchAndBoundProblem,
        members: Sequence[str],
        *,
        rng: Optional[random.Random] = None,
        redo_timeout: float = 5.0,
        poll_interval: float = 0.1,
        donation_max: int = 4,
        keep_at_least: int = 2,
        selection_rule: SelectionRule = SelectionRule.DEPTH_FIRST,
    ) -> None:
        super().__init__(name)
        self.problem = problem
        self.members = list(members)
        self.peers = [m for m in members if m != name]
        self.rng = rng if rng is not None else random.Random(0)
        self.redo_timeout = redo_timeout
        self.poll_interval = poll_interval
        self.donation_max = donation_max
        self.keep_at_least = keep_at_least

        self.expander = NodeExpander(problem)
        self.pool: SubproblemPool = SubproblemPool(selection_rule, minimize=problem.minimize)
        self.incumbent: Optional[float] = None
        #: Everything this worker knows to be completed (its own work plus
        #: completion reports from machines it donated to).
        self.done = CodeSet()
        #: Problems received from other machines (code -> donor), for which a
        #: completion report is owed.
        self.received_from: Dict[PathCode, str] = {}
        #: Problems handed out to other machines, still unconfirmed.
        self.handed_out: Dict[PathCode, _Responsibility] = {}
        self.terminated = False
        self.terminated_at: Optional[float] = None
        self.nodes_expanded = 0
        self.redone_problems = 0
        self._step_scheduled = False
        self._idle_poll_armed = False
        self._last_request: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        self._schedule_step(0.0)
        self.set_timer(self.redo_timeout, "redo-check")

    def on_message_queued(self, message: QueuedMessage) -> None:
        if self.alive and not self.terminated and not self._step_scheduled:
            self._schedule_step(0.0)

    def on_wakeup(self, reason: str) -> None:
        if not self.alive or self.terminated:
            return
        if reason == "redo-check":
            self._redo_stale()
            self.set_timer(self.redo_timeout, "redo-check")
        elif reason == "idle-poll":
            self._idle_poll_armed = False
        if not self._step_scheduled:
            self._schedule_step(0.0)

    def _schedule_step(self, delay: float) -> None:
        if not self.alive or self.terminated or self._step_scheduled:
            return
        self._step_scheduled = True
        assert self.engine is not None
        self.engine.schedule(delay, self._step, label=f"{self.name}:dib-step")

    # ------------------------------------------------------------------ #
    # Responsibility management
    # ------------------------------------------------------------------ #
    def _redo_stale(self) -> None:
        """Redo problems handed to machines that never reported completion.

        This is DIB's recovery action.  The redo may duplicate work that is
        actually in progress at a slow (but healthy) machine; like the paper's
        mechanism, DIB accepts redundant work as the price of simplicity.
        """
        now = self.engine.now if self.engine else 0.0
        for code, responsibility in list(self.handed_out.items()):
            if self.done.covers(code):
                del self.handed_out[code]
                continue
            donee_dead = False
            if self.network is not None:
                try:
                    donee_dead = not self.network.entity(responsibility.donee).alive
                except KeyError:
                    donee_dead = True
            if donee_dead or (now - responsibility.sent_at) >= self.redo_timeout:
                del self.handed_out[code]
                sub = self.problem.rebuild_subproblem(code)
                self.redone_problems += 1
                if sub is None:
                    self._mark_done(code)
                else:
                    self.pool.push(sub, bound=self.problem.bound(sub.state))

    def _mark_done(self, code: PathCode) -> None:
        """Record a completed subtree and propagate completion upward."""
        self.done.add(code)
        # Report every received problem whose subtree is now fully covered to
        # the machine it came from.
        for received_code, donor in list(self.received_from.items()):
            if self.done.covers(received_code):
                del self.received_from[received_code]
                self.send(
                    donor,
                    DibCompletionReport(self.name, received_code, self.incumbent),
                )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def _step(self) -> None:
        self._step_scheduled = False
        if not self.alive or self.terminated:
            return
        self.process_pending_messages()
        if self.terminated:
            return

        if self._check_root_completion():
            return

        if not self.pool:
            now = self.engine.now if self.engine else 0.0
            may_request = self._last_request is None or (now - self._last_request) >= self.poll_interval
            if self.peers and may_request:
                victim = self.rng.choice(self.peers)
                self.send(victim, DibWorkRequest(requester=self.name))
                self._last_request = now
            if not self._idle_poll_armed:
                self._idle_poll_armed = True
                self.set_timer(self.poll_interval, "idle-poll")
            return

        sub = self.pool.pop()
        if self.done.covers(sub.code):
            self._schedule_step(0.0)
            return
        outcome = self.expander.expand(sub, self.incumbent)
        self.nodes_expanded += 1
        if outcome.incumbent_value is not None:
            self.incumbent = outcome.incumbent_value
        for code in outcome.completed:
            self._mark_done(code)
        for child, bound in outcome.children:
            self.pool.push(child, bound=bound)
        self._schedule_step(outcome.cost)

    def _check_root_completion(self) -> bool:
        """Only the machine responsible for the original problem can terminate."""
        if self.name == self.members[0] and self.done.covers(ROOT):
            self.terminated = True
            self.terminated_at = self.engine.now if self.engine else 0.0
            for peer in self.peers:
                self.send(peer, DibTerminationAnnounce(best_value=self.incumbent))
            return True
        return False

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def on_message(self, message: QueuedMessage) -> None:
        payload = message.payload
        now = self.engine.now if self.engine else 0.0
        if isinstance(payload, DibWorkRequest):
            self._answer_request(payload.requester, now)
        elif isinstance(payload, DibWorkGrant):
            self._accept_grant(payload)
        elif isinstance(payload, DibWorkDenied):
            if payload.incumbent is not None and self.problem.is_improvement(
                payload.incumbent, self.incumbent
            ):
                self.incumbent = payload.incumbent
        elif isinstance(payload, DibCompletionReport):
            if payload.incumbent is not None and self.problem.is_improvement(
                payload.incumbent, self.incumbent
            ):
                self.incumbent = payload.incumbent
            self.handed_out.pop(payload.code, None)
            self._mark_done(payload.code)
        elif isinstance(payload, DibTerminationAnnounce):
            if payload.best_value is not None and self.problem.is_improvement(
                payload.best_value, self.incumbent
            ):
                self.incumbent = payload.best_value
            self.terminated = True
            self.terminated_at = now

    def _answer_request(self, requester: str, now: float) -> None:
        if len(self.pool) > self.keep_at_least:
            donated = self.pool.take_for_donation(
                max_count=self.donation_max,
                keep_at_least=self.keep_at_least,
                prefer_shallow=True,
            )
            codes = tuple(sub.code for sub in donated)
            for code in codes:
                self.handed_out[code] = _Responsibility(code=code, donee=requester, sent_at=now)
            self.send(requester, DibWorkGrant(donor=self.name, codes=codes, incumbent=self.incumbent))
        else:
            self.send(requester, DibWorkDenied(donor=self.name, incumbent=self.incumbent))

    def _accept_grant(self, grant: DibWorkGrant) -> None:
        if grant.incumbent is not None and self.problem.is_improvement(
            grant.incumbent, self.incumbent
        ):
            self.incumbent = grant.incumbent
        for code in grant.codes:
            self.received_from[code] = grant.donor
            sub = self.problem.rebuild_subproblem(code)
            if sub is None:
                self._mark_done(code)
            else:
                self.pool.push(sub, bound=self.problem.bound(sub.state))


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
@dataclass
class DibRunResult:
    """Result of a DIB-baseline run."""

    n_workers: int
    makespan: float
    best_value: Optional[float]
    terminated: bool
    root_machine_crashed: bool
    crashed_workers: List[str] = field(default_factory=list)
    nodes_expanded: int = 0
    redone_problems: int = 0
    total_bytes_sent: int = 0
    #: Messages injected into the network.
    messages_sent: int = 0
    #: Bytes injected per protocol message kind (:func:`dib_message_kind`).
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Nodes expanded per worker.
    nodes_by_worker: Dict[str, int] = field(default_factory=dict)
    #: Problems redone per worker (DIB's recovery counter).
    redone_by_worker: Dict[str, int] = field(default_factory=dict)
    #: Workers that learned of termination before the run ended.
    terminated_workers: List[str] = field(default_factory=list)


def run_dib_simulation(
    problem: BranchAndBoundProblem,
    n_workers: int,
    *,
    failures: Sequence[CrashEvent] = (),
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    loss_probability: float = 0.0,
    network: Optional["NetworkConfig"] = None,
    max_sim_time: float = 10_000.0,
    redo_timeout: float = 5.0,
) -> DibRunResult:
    """Run the DIB-style baseline and return its result.

    The machine named ``dworker-00`` holds the original problem and the root
    of the responsibility hierarchy; crashing it demonstrates DIB's reliance
    on a reliable root (the run then stops at ``max_sim_time`` without
    detecting termination).

    ``network`` takes a full :class:`~repro.distributed.runner.NetworkConfig`
    (latency, loss *and* partitions) and supersedes the older ``latency`` /
    ``loss_probability`` keywords, which are kept as deprecated shims for one
    release.  This function itself is superseded by the unified Scenario API
    (``repro.scenario``, backend ``"dib"``); prefer that for experiments.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    partitions: Sequence[Partition] = ()
    if network is not None:
        latency = network.latency
        loss_probability = network.loss_probability
        partitions = network.partitions
    rng = RngRegistry(seed)
    engine = SimulationEngine()
    net = Network(
        engine,
        latency=latency if latency is not None else LatencyModel.paper_default(),
        loss_probability=loss_probability,
        partitions=partitions,
        rng=rng.stream("network"),
    )
    net.classify = dib_message_kind

    names = dib_worker_names(n_workers)
    workers: List[DibWorkerEntity] = []
    for name in names:
        worker = DibWorkerEntity(
            name,
            problem,
            names,
            rng=rng.stream(f"dib:{name}"),
            redo_timeout=redo_timeout,
        )
        net.register(worker)
        workers.append(worker)

    root_sub = problem.root_subproblem()
    workers[0].pool.push(root_sub, bound=problem.bound(root_sub.state))

    injector = FailureInjector(failures)
    injector.install(engine, net)

    for worker in workers:
        worker.on_start()

    def _stop() -> bool:
        return all((not w.alive) or w.terminated for w in workers)

    engine.run(until=max_sim_time, stop_when=_stop)

    crashed = [w.name for w in workers if not w.alive]
    living = [w for w in workers if w.alive]
    best = None
    for worker in living:
        if worker.incumbent is not None:
            if best is None or problem.is_improvement(worker.incumbent, best):
                best = worker.incumbent
    terminated = bool(living) and all(w.terminated for w in living)
    makespan = max((w.terminated_at for w in living if w.terminated_at is not None), default=engine.now)

    return DibRunResult(
        n_workers=n_workers,
        makespan=makespan,
        best_value=best,
        terminated=terminated,
        root_machine_crashed=names[0] in crashed,
        crashed_workers=crashed,
        nodes_expanded=sum(w.nodes_expanded for w in workers),
        redone_problems=sum(w.redone_problems for w in workers),
        total_bytes_sent=net.stats.bytes_sent,
        messages_sent=net.stats.messages_sent,
        bytes_by_kind=dict(net.kind_bytes),
        nodes_by_worker={w.name: w.nodes_expanded for w in workers},
        redone_by_worker={w.name: w.redone_problems for w in workers},
        terminated_workers=[w.name for w in workers if w.alive and w.terminated],
    )
