"""A real worker process running the fault-tolerant algorithm.

The worker reuses the exact core objects the simulator uses — the tree
encoding, :class:`~repro.core.completion.CompletionTracker`, the recovery
policy and the work-report payloads — but drives them with a plain loop on a
real OS process, receiving messages over a ``multiprocessing`` pipe.  Node
"cost" is not simulated: the process simply does the Python work of expanding
the replayed tree node (an optional ``time.sleep`` can emulate heavier nodes).

All protocol traffic is encoded with the :mod:`repro.wire` binary codec (no
pickling of protocol payloads): the worker decodes each incoming envelope
frame at the pipe boundary and encodes every outgoing message the same way.
The final :class:`WorkerOutcome` is itself a registered wire message
(extension tag next to the transport's envelope).

Each worker speaks a configurable **wire-format generation**
(:attr:`RealWorkerConfig.wire_generation`).  A generation-2 worker gossips
its completed table as deltas (:class:`~repro.distributed.messages.
DeltaGossipMsg`, acknowledged with digest echoes) while starved; a
generation-1 worker sends whole-table snapshots and *rejects* generation-2
frames at the pipe boundary exactly like the original release would — so a
mixed-generation :class:`~repro.realexec.driver.LocalCluster` run is a real
rolling upgrade: deltas to old workers are dropped as unsupported, the
generation-1 report/snapshot traffic keeps every worker converging, and the
computation still terminates on the optimum.

The protocol mirrors :mod:`repro.distributed.worker` in miniature; it trades
the detailed time accounting of the simulator for the ability to kill real
processes in the fault-injection tests.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bnb.basic_tree import BasicTree
from ..bnb.pool import SelectionRule, SubproblemPool
from ..bnb.sequential import NodeExpander
from ..bnb.tree_problem import TreeReplayProblem
from ..core.completion import CompletionTracker
from ..core.recovery import RecoveryPolicy
from ..core.termination import make_root_report
from ..core.work_report import BestSolution
from ..distributed.messages import (
    DeltaGossipMsg,
    TableGossipAck,
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from ..obs import MetricsRegistry, Tracer
from ..wire import FRAME_VERSION, WireFormatError
from ..wire.frame import Tag, register
from ..wire.varint import (
    read_bool,
    read_float64,
    read_string,
    read_uvarint,
    write_bool,
    write_float64,
    write_string,
    write_uvarint,
)
from .transport import (
    Envelope,
    recv_envelope,
    register_payload_kind,
    resolve_connection,
    send_envelope,
)

__all__ = ["RealWorkerConfig", "WorkerOutcome", "WorkerTelemetry", "worker_main"]

#: Wire tag of the worker-outcome message (transport extension range).
WORKER_OUTCOME_TAG = int(Tag.EXTENSION_BASE) + 1
#: Wire tag of the worker-telemetry message (transport extension range).
WORKER_TELEMETRY_TAG = int(Tag.EXTENSION_BASE) + 2


@dataclass(frozen=True)
class RealWorkerConfig:
    """Configuration shipped (pickled) to every real worker process."""

    name: str
    members: tuple
    tree_data: dict
    has_root: bool = False
    report_threshold: int = 5
    report_fanout: int = 2
    recovery_failed_threshold: int = 3
    poll_timeout: float = 0.02
    node_sleep: float = 0.0
    seed: int = 0
    max_seconds: float = 30.0
    prune: bool = True
    #: Wire-format generation this worker speaks: 2 gossips table deltas and
    #: accepts the whole protocol; 1 models a not-yet-upgraded binary that
    #: sends whole-table snapshots and rejects generation-2 frames.
    wire_generation: int = FRAME_VERSION
    #: Minimum wall-clock seconds between table-gossip pushes while starved.
    gossip_interval: float = 0.2
    #: Collect run telemetry (trace records + a metrics snapshot) and ship it
    #: to the driver as a :class:`WorkerTelemetry` frame before the outcome.
    telemetry: bool = False


@dataclass(frozen=True)
class WorkerOutcome:
    """What a real worker reports back to the driver when it finishes."""

    name: str
    terminated: bool
    best_value: Optional[float]
    nodes_expanded: int
    reports_sent: int
    recoveries: int


def _write_worker_outcome(out: bytearray, outcome: WorkerOutcome) -> None:
    """Outcome body: name, terminated flag, optional best value, counters."""
    write_string(out, outcome.name)
    write_bool(out, outcome.terminated)
    write_bool(out, outcome.best_value is not None)
    if outcome.best_value is not None:
        write_float64(out, float(outcome.best_value))
    write_uvarint(out, outcome.nodes_expanded)
    write_uvarint(out, outcome.reports_sent)
    write_uvarint(out, outcome.recoveries)


def _read_worker_outcome(data, pos: int) -> Tuple[WorkerOutcome, int]:
    """Read an outcome body written by :func:`_write_worker_outcome`."""
    name, pos = read_string(data, pos)
    terminated, pos = read_bool(data, pos)
    has_best, pos = read_bool(data, pos)
    best_value = None
    if has_best:
        best_value, pos = read_float64(data, pos)
    nodes_expanded, pos = read_uvarint(data, pos)
    reports_sent, pos = read_uvarint(data, pos)
    recoveries, pos = read_uvarint(data, pos)
    return (
        WorkerOutcome(
            name=name,
            terminated=terminated,
            best_value=best_value,
            nodes_expanded=nodes_expanded,
            reports_sent=reports_sent,
            recoveries=recoveries,
        ),
        pos,
    )


register(WORKER_OUTCOME_TAG, WorkerOutcome, _write_worker_outcome, _read_worker_outcome)
register_payload_kind(WORKER_OUTCOME_TAG, "worker_outcome")


@dataclass(frozen=True)
class WorkerTelemetry:
    """One worker's telemetry, shipped to the driver before the outcome.

    ``payload`` is a JSON document ``{"records": [...], "metrics": {...}}`` —
    the tracer's exported records (wall-clock timestamps, so the driver can
    merge every process onto one axis) and the worker's metrics-registry
    snapshot.  JSON keeps the frame body self-describing and forward
    compatible; telemetry volume is tiny next to the protocol traffic.
    """

    name: str
    payload: str

    def decoded(self) -> dict:
        """The parsed payload document."""
        return json.loads(self.payload)


def _write_worker_telemetry(out: bytearray, message: WorkerTelemetry) -> None:
    """Telemetry body: worker name, then the JSON document."""
    write_string(out, message.name)
    write_string(out, message.payload)


def _read_worker_telemetry(data, pos: int) -> Tuple[WorkerTelemetry, int]:
    """Read a telemetry body written by :func:`_write_worker_telemetry`."""
    name, pos = read_string(data, pos)
    payload, pos = read_string(data, pos)
    return WorkerTelemetry(name=name, payload=payload), pos


register(
    WORKER_TELEMETRY_TAG,
    WorkerTelemetry,
    _write_worker_telemetry,
    _read_worker_telemetry,
)
register_payload_kind(WORKER_TELEMETRY_TAG, "worker_telemetry")


def worker_main(config: RealWorkerConfig, connection) -> None:
    """Entry point executed in the child process.

    ``connection`` is either a ready pipe Connection or a transport endpoint
    (:class:`~repro.realexec.transport.WorkerEndpoint`) the child connects
    first — the loop below is transport-agnostic.

    The loop: drain the transport, merge reports, answer work requests,
    expand one node, occasionally emit work reports, recover starved work
    from the complement, and stop when the completed table contracts to the
    root code (sending the final root report first).  The final
    :class:`WorkerOutcome` is sent to the driver over the same channel.
    """
    connection = resolve_connection(connection)
    run_start = time.time()
    # Telemetry is opt-in; the loop below guards every recording site with
    # one ``is not None`` check so disabled runs pay nothing.
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    if config.telemetry:
        tracer = Tracer(process=config.name, clock=time.time)
        registry = MetricsRegistry()
    tree = BasicTree.from_dict(config.tree_data)
    problem = TreeReplayProblem(tree, prune=config.prune)
    expander = NodeExpander(problem)
    pool: SubproblemPool = SubproblemPool(SelectionRule.DEPTH_FIRST, minimize=problem.minimize)
    tracker = CompletionTracker(config.name, report_threshold=config.report_threshold)
    recovery = RecoveryPolicy(failed_request_threshold=config.recovery_failed_threshold)
    rng = random.Random(config.seed)
    peers = [m for m in config.members if m != config.name]
    incumbent: Optional[float] = None
    reports_sent = 0
    deadline = time.monotonic() + config.max_seconds
    outstanding_request = False
    root_broadcast_sent = False

    if config.has_root:
        pool.push(problem.root_subproblem(), bound=problem.bound(problem.root_state()))

    def send(destination: str, payload) -> None:
        try:
            send_envelope(connection, Envelope(config.name, destination, payload))
        except (BrokenPipeError, OSError):  # pragma: no cover - driver gone
            pass

    def my_best() -> BestSolution:
        return BestSolution(value=incumbent, origin=config.name)

    def absorb_best(payload) -> None:
        nonlocal incumbent
        best = getattr(payload, "best", None)
        if isinstance(best, BestSolution) and best.value is not None:
            if problem.is_improvement(best.value, incumbent):
                incumbent = best.value

    def flush_report(force: bool = False) -> None:
        nonlocal reports_sent
        if tracker.pending_report_size == 0:
            return
        if not force and tracker.pending_report_size < config.report_threshold:
            return
        report = tracker.build_report(best=my_best())
        if report.is_empty:
            return
        for target in rng.sample(peers, min(config.report_fanout, len(peers))) if peers else []:
            send(target, WorkReportMsg(report))
        reports_sent += 1

    last_gossip = 0.0
    terminated = False
    while not terminated and time.monotonic() < deadline:
        # ------------------------------------------------------------ drain
        while connection.poll(0 if pool else config.poll_timeout):
            try:
                envelope = recv_envelope(connection, max_version=config.wire_generation)
            except (EOFError, OSError):
                terminated = True
                break
            except WireFormatError:
                # A corrupt frame — or, for a generation-1 worker, a
                # generation-2 payload from an upgraded peer — is
                # indistinguishable from a lost message in the paper's
                # unreliable-channel model: drop it and move on.
                if registry is not None:
                    registry.counter(
                        "worker_frames_dropped", worker=config.name
                    ).inc()
                continue
            if registry is not None:
                registry.counter("worker_frames_received", worker=config.name).inc()
            payload = envelope.payload
            absorb_best(payload)
            if isinstance(payload, WorkRequest):
                if len(pool) > 1:
                    donated = pool.take_for_donation(max_count=2, keep_at_least=1)
                    send(
                        payload.requester,
                        WorkGrant(
                            donor=config.name,
                            codes=tuple(s.code for s in donated),
                            best=my_best(),
                        ),
                    )
                else:
                    send(payload.requester, WorkDenied(donor=config.name, best=my_best()))
            elif isinstance(payload, WorkGrant):
                outstanding_request = False
                got_any = False
                for code in payload.codes:
                    if tracker.table.covers(code):
                        continue
                    sub = problem.rebuild_subproblem(code)
                    if sub is None:
                        tracker.record_completed(code)
                    else:
                        pool.push(sub, bound=problem.bound(sub.state))
                        got_any = True
                if got_any:
                    recovery.note_work_obtained()
                else:
                    recovery.note_request_failed(time.monotonic())
            elif isinstance(payload, WorkDenied):
                outstanding_request = False
                recovery.note_request_failed(time.monotonic())
            elif isinstance(payload, (WorkReportMsg, TableGossipMsg)):
                report = (
                    payload.report
                    if isinstance(payload, WorkReportMsg)
                    else payload.snapshot.as_report()
                )
                tracker.merge_report(report)
                if config.wire_generation >= 2:
                    tracker.note_peer_covers(envelope.sender, report.codes)
            elif isinstance(payload, DeltaGossipMsg):
                delta = payload.delta
                tracker.merge_delta(delta)
                tracker.note_peer_covers(delta.sender, delta.codes)
                my_digest = tracker.table_digest_now()
                if my_digest == delta.full_digest:
                    tracker.note_peer_converged(delta.sender)
                send(
                    delta.sender,
                    TableGossipAck(
                        sender=config.name,
                        digest=delta.full_digest,
                        table_digest=my_digest,
                        best=my_best(),
                    ),
                )
            elif isinstance(payload, TableGossipAck):
                tracker.note_snapshot_ack(payload.sender, payload.digest)
                if payload.table_digest and payload.table_digest == tracker.table_digest_now():
                    tracker.note_peer_converged(payload.sender)

        if tracker.is_tree_complete():
            terminated = True
            break

        # ------------------------------------------------------------ work
        sub = None
        while pool:
            candidate = pool.pop()
            if not tracker.table.covers(candidate.code):
                sub = candidate
                break
        if sub is None:
            flush_report(force=True)
            # Starved workers use their spare capacity to converge the
            # completed-table views: deltas at generation 2, whole snapshots
            # at generation 1 (the paper's literal behaviour).
            now_wall = time.monotonic()
            if peers and (now_wall - last_gossip) >= config.gossip_interval and len(tracker.table):
                target = rng.choice(peers)
                last_gossip = now_wall
                gossip_kind = None
                if config.wire_generation >= 2:
                    gossip_delta = tracker.build_delta_snapshot(target, best=my_best())
                    if not gossip_delta.is_empty:
                        send(target, DeltaGossipMsg(gossip_delta))
                        gossip_kind = "delta_gossip"
                else:
                    send(target, TableGossipMsg(tracker.build_table_snapshot(best=my_best())))
                    gossip_kind = "table_gossip"
                if gossip_kind is not None and tracer is not None:
                    tracer.span(
                        gossip_kind,
                        now_wall,
                        time.time() - now_wall if time.time() > now_wall else 0.0,
                        category="gossip",
                        args={"target": target},
                    )
            if peers and not outstanding_request:
                send(rng.choice(peers), WorkRequest(requester=config.name, best=my_best()))
                outstanding_request = True
            else:
                recovery.note_request_failed(time.monotonic())
                outstanding_request = False
            decision = recovery.evaluate(tracker, time.monotonic())
            if decision.code is not None:
                recovery.note_recovery_started(decision.code)
                if tracer is not None:
                    tracer.event(
                        "recovery_start",
                        category="recovery",
                        args={"depth": decision.code.depth},
                    )
                rebuilt = problem.rebuild_subproblem(decision.code)
                if rebuilt is None:
                    tracker.record_completed(decision.code)
                else:
                    pool.push(rebuilt, bound=problem.bound(rebuilt.state))
            continue

        outcome = expander.expand(sub, incumbent)
        if config.node_sleep > 0:
            time.sleep(config.node_sleep)
        if outcome.incumbent_value is not None:
            incumbent = outcome.incumbent_value
        for code in outcome.completed:
            tracker.record_completed(code)
        for child, bound in outcome.children:
            pool.push(child, bound=bound)
        flush_report()

    # ------------------------------------------------------------ shutdown
    if tracker.is_tree_complete() and not root_broadcast_sent:
        root_report = make_root_report(config.name, best=my_best())
        for target in peers:
            send(target, WorkReportMsg(root_report))
        root_broadcast_sent = True

    outcome_message = WorkerOutcome(
        name=config.name,
        terminated=tracker.is_tree_complete(),
        best_value=incumbent,
        nodes_expanded=expander.nodes_expanded,
        reports_sent=reports_sent,
        recoveries=recovery.stats.activations,
    )
    if tracer is not None and registry is not None:
        # Whole-lifetime span for this worker, in absolute wall time: the
        # driver shifts everything onto a shared origin at export.
        tracer.span(
            "run",
            run_start,
            time.time() - run_start,
            category="worker",
            args={"nodes_expanded": expander.nodes_expanded},
        )
        registry.counter("worker_reports_sent", worker=config.name).inc(reports_sent)
        registry.counter("worker_recoveries", worker=config.name).inc(
            recovery.stats.activations
        )
        # The telemetry frame must precede the outcome: pipe delivery is
        # FIFO, and the driver stops reading a worker once its outcome
        # triggers the completion check.
        send(
            "__driver__",
            WorkerTelemetry(
                name=config.name,
                payload=json.dumps(
                    {
                        "records": list(tracer.iter_records()),
                        "metrics": registry.snapshot(),
                    }
                ),
            ),
        )
    send("__driver__", outcome_message)
    try:
        connection.close()
    except OSError:  # pragma: no cover
        pass
