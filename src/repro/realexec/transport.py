"""Binary-framed transport for the real execution backend.

The paper evaluates its algorithm purely in simulation; this backend runs the
*same* core objects (:class:`~repro.core.completion.CompletionTracker`,
:class:`~repro.core.recovery.RecoveryPolicy`, the tree encoding, the work
messages) on real operating-system processes connected by ``multiprocessing``
pipes.  It exists to demonstrate that the algorithm is not tied to the
simulator and to let the fault-injection tests kill actual processes.

Protocol payloads travel as :mod:`repro.wire` frames, not pickles: each
message on a pipe is one length-prefixed byte string (``Connection.
send_bytes``) containing an :class:`Envelope` frame — sender, destination and
the nested payload frame.  The router parses only the envelope's routing
header and forwards the raw bytes untouched, so the parent process never
decodes (or re-encodes) payload bodies; full decoding happens once, at the
receiving worker.  Byte-for-byte forwarding also gives the router exact
per-link traffic counters, the real-execution counterpart of the simulator's
:class:`~repro.simulation.network.TrafficStats`.

The transport remains deliberately simple: a star of duplex pipes terminated
at a small router thread in the parent process.  Messages are addressed by
worker name; the router forwards them and never retries — an unreliable,
asynchronous channel, like the paper assumes.  Frames that do not parse as
envelopes (truncated, corrupt, or foreign bytes) are counted and dropped.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..wire import FRAME_VERSION, WireFormatError, decode, encode
from ..wire.frame import Tag, read_header, register
from ..wire.varint import read_string, read_uvarint, write_string, write_uvarint

__all__ = [
    "Envelope",
    "PipeRouter",
    "encode_envelope",
    "decode_envelope",
    "envelope_route",
    "send_envelope",
    "recv_envelope",
]

#: Wire tag of the realexec envelope (transport extension range).
ENVELOPE_TAG = int(Tag.EXTENSION_BASE)


@dataclass(frozen=True)
class Envelope:
    """One routed message: sender, destination and an arbitrary payload."""

    sender: str
    destination: str
    payload: Any


def _write_envelope(out: bytearray, envelope: Envelope) -> None:
    """Envelope body: sender, destination, then the nested payload frame."""
    write_string(out, envelope.sender)
    write_string(out, envelope.destination)
    payload = encode(envelope.payload)
    write_uvarint(out, len(payload))
    out += payload


def _read_envelope_body(
    data, pos: int, *, max_version: int = FRAME_VERSION
) -> Tuple[Envelope, int]:
    """Parse an envelope body (the single definition of its layout).

    ``max_version`` bounds the wire-format generation accepted for the
    *nested payload* frame (see :func:`decode_envelope`).
    """
    sender, pos = read_string(data, pos)
    destination, pos = read_string(data, pos)
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireFormatError("envelope payload runs past end of frame")
    payload = decode(bytes(data[pos:end]), max_version=max_version)
    return Envelope(sender, destination, payload), end


def _read_envelope(data, pos: int) -> Tuple[Envelope, int]:
    """Registry reader: an envelope body at the current generation."""
    return _read_envelope_body(data, pos)


register(ENVELOPE_TAG, Envelope, _write_envelope, _read_envelope)


def encode_envelope(envelope: Envelope) -> bytes:
    """Encode an envelope (and its payload) into one frame."""
    return encode(envelope)


def decode_envelope(data: bytes, *, max_version: int = FRAME_VERSION) -> Envelope:
    """Decode an envelope frame produced by :func:`encode_envelope`.

    ``max_version`` bounds the wire-format generation of the *nested
    payload*: a worker running an older protocol generation passes its own
    (``RealWorkerConfig.wire_generation``), so payloads from newer peers are
    rejected exactly as its real decoder would reject them — the frame is
    dropped like a lost message, which is the rolling-upgrade behaviour the
    mixed-version cluster tests exercise.  The envelope itself is a
    generation-1 frame, so routing keeps working across generations.
    """
    _version, tag, body_start, body_len = read_header(data)
    if tag != ENVELOPE_TAG:
        raise WireFormatError(f"expected envelope tag {ENVELOPE_TAG}, got {tag}")
    body_end = body_start + body_len
    if body_end != len(data):
        raise WireFormatError(f"{len(data) - body_end} trailing bytes after frame")
    try:
        envelope, pos = _read_envelope_body(data, body_start, max_version=max_version)
    except WireFormatError:
        raise
    except ValueError as exc:
        raise WireFormatError(f"corrupt envelope body: {exc}") from exc
    if pos != body_end:
        raise WireFormatError(
            f"envelope body consumed {pos - body_start} bytes but frame declared {body_len}"
        )
    return envelope


def envelope_route(data) -> Tuple[str, str]:
    """Parse only ``(sender, destination)`` from an envelope frame.

    This is the router's fast path: it validates the frame header and reads
    the two routing strings without touching the payload bytes.  Any
    malformation — in the header or in the routing strings themselves —
    surfaces as :class:`~repro.wire.WireFormatError`, so the router can treat
    "unroutable" as a single error class.
    """
    _version, tag, pos, _body_len = read_header(data)
    if tag != ENVELOPE_TAG:
        raise WireFormatError(f"expected envelope tag {ENVELOPE_TAG}, got {tag}")
    try:
        sender, pos = read_string(data, pos)
        destination, _pos = read_string(data, pos)
    except WireFormatError:
        raise
    except ValueError as exc:
        raise WireFormatError(f"corrupt envelope routing header: {exc}") from exc
    return sender, destination


def send_envelope(connection, envelope: Envelope) -> None:
    """Encode and send one envelope over a pipe connection."""
    connection.send_bytes(encode_envelope(envelope))


def recv_envelope(connection, *, max_version: int = FRAME_VERSION) -> Envelope:
    """Receive and decode one envelope from a pipe connection.

    Raises :class:`~repro.wire.WireFormatError` on corrupt frames (including
    payloads from a newer wire-format generation than ``max_version``) and
    the usual ``EOFError``/``OSError`` on closed pipes.
    """
    return decode_envelope(connection.recv_bytes(), max_version=max_version)


class PipeRouter:
    """Routes envelope frames between worker processes through the parent.

    The router owns one duplex pipe per worker.  A background thread in the
    parent process polls the worker ends, parses each frame's routing header
    and forwards the raw bytes to their destination.  Messages to unknown or
    finished workers, and frames that fail to parse, are dropped silently,
    matching the lossy network model of the paper.
    """

    def __init__(self) -> None:
        self._parent_ends: Dict[str, mp.connection.Connection] = {}
        self._child_ends: Dict[str, mp.connection.Connection] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Count of forwarded messages, for tests and reporting.
        self.forwarded = 0
        #: Count of dropped messages (unknown/closed destination, bad frame).
        self.dropped = 0
        #: Total payload-carrying bytes forwarded.
        self.bytes_forwarded = 0
        #: Per-link traffic: ``(sender, destination) -> bytes forwarded``.
        self.link_bytes: Dict[Tuple[str, str], int] = {}
        #: Per-link traffic: ``(sender, destination) -> messages forwarded``.
        self.link_messages: Dict[Tuple[str, str], int] = {}

    def add_worker(self, name: str) -> mp.connection.Connection:
        """Create the pipe pair for a worker; returns the child end."""
        if name in self._parent_ends:
            raise ValueError(f"duplicate worker name: {name!r}")
        parent_end, child_end = mp.Pipe(duplex=True)
        self._parent_ends[name] = parent_end
        self._child_ends[name] = child_end
        return child_end

    def child_end(self, name: str) -> mp.connection.Connection:
        """The connection a worker process should use."""
        return self._child_ends[name]

    def start(self) -> None:
        """Start the forwarding thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="pipe-router", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the forwarding thread and close the parent pipe ends."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        for conn in self._parent_ends.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def _run(self) -> None:
        import multiprocessing.connection as mpc

        while not self._stop.is_set():
            ends = list(self._parent_ends.values())
            if not ends:
                self._stop.wait(0.05)
                continue
            ready = mpc.wait(ends, timeout=0.05)
            for conn in ready:
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    continue
                try:
                    link = envelope_route(frame)
                except WireFormatError:
                    self.dropped += 1
                    continue
                destination = self._parent_ends.get(link[1])
                if destination is None:
                    self.dropped += 1
                    continue
                try:
                    destination.send_bytes(frame)
                except (BrokenPipeError, OSError):
                    self.dropped += 1
                    continue
                self.forwarded += 1
                size = len(frame)
                self.bytes_forwarded += size
                self.link_bytes[link] = self.link_bytes.get(link, 0) + size
                self.link_messages[link] = self.link_messages.get(link, 0) + 1
