"""Binary-framed transport for the real execution backend.

The paper evaluates its algorithm purely in simulation; this backend runs the
*same* core objects (:class:`~repro.core.completion.CompletionTracker`,
:class:`~repro.core.recovery.RecoveryPolicy`, the tree encoding, the work
messages) on real operating-system processes connected by ``multiprocessing``
pipes.  It exists to demonstrate that the algorithm is not tied to the
simulator and to let the fault-injection tests kill actual processes.

Protocol payloads travel as :mod:`repro.wire` frames, not pickles: each
message on a pipe is one length-prefixed byte string (``Connection.
send_bytes``) containing an :class:`Envelope` frame — sender, destination and
the nested payload frame.  The router parses only the envelope's routing
header and forwards the raw bytes untouched, so the parent process never
decodes (or re-encodes) payload bodies; full decoding happens once, at the
receiving worker.  Byte-for-byte forwarding also gives the router exact
per-link traffic counters, the real-execution counterpart of the simulator's
:class:`~repro.simulation.network.TrafficStats`.

The transport remains deliberately simple: a star topology terminated at a
small router thread in the parent process.  Messages are addressed by worker
name; the router forwards them and never retries — an unreliable,
asynchronous channel, like the paper assumes.  Frames that do not parse as
envelopes (truncated, corrupt, or foreign bytes) are counted and dropped.

The star's *links* are pluggable (the ``Transport`` seam): the shared
:class:`EnvelopeRouter` owns the traffic counters and forward accounting,
and a concrete transport decides how worker connections are established and
multiplexed — :class:`PipeRouter` over ``multiprocessing`` duplex pipes,
:class:`UdsRouter` over Unix-domain sockets and :class:`TcpRouter` over TCP
(workers connect to one listener socket and identify themselves by name).
The two socket transports share :class:`StreamRouter`: a single
non-blocking ``selectors`` event loop that multiplexes every worker
connection in one thread, reassembles the self-delimiting wire frames at
the stream boundary and applies per-connection write-queue backpressure so
one slow or frozen worker can never stall forwarding for the rest.  Every
transport hands each worker process a Connection-compatible endpoint, so
the payload code in :mod:`repro.realexec.node` is transport-agnostic; the
driver selects the transport by name (``LocalCluster(transport="tcp")``, or
``Scenario(transport="tcp")`` through the scenario API).
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mpc
import os
import select
import selectors
import socket
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..obs import get_logger
from ..wire import FRAME_VERSION, WireFormatError, decode, encode
from ..wire.frame import Tag, TruncatedFrameError, read_header, register
from ..wire.varint import read_string, read_uvarint, write_string, write_uvarint

logger = get_logger("realexec.transport")

__all__ = [
    "Envelope",
    "EnvelopeRouter",
    "StreamRouter",
    "PipeRouter",
    "UdsRouter",
    "TcpRouter",
    "WorkerEndpoint",
    "UdsEndpoint",
    "TcpEndpoint",
    "StreamConnection",
    "create_router",
    "resolve_connection",
    "register_payload_kind",
    "payload_kind",
    "encode_envelope",
    "decode_envelope",
    "envelope_route",
    "envelope_route_info",
    "frame_extent",
    "send_envelope",
    "recv_envelope",
]

#: Wire tag of the realexec envelope (transport extension range).
ENVELOPE_TAG = int(Tag.EXTENSION_BASE)


@dataclass(frozen=True)
class Envelope:
    """One routed message: sender, destination and an arbitrary payload."""

    sender: str
    destination: str
    payload: Any


def _write_envelope(out: bytearray, envelope: Envelope) -> None:
    """Envelope body: sender, destination, then the nested payload frame."""
    write_string(out, envelope.sender)
    write_string(out, envelope.destination)
    payload = encode(envelope.payload)
    write_uvarint(out, len(payload))
    out += payload


def _read_envelope_body(
    data, pos: int, *, max_version: int = FRAME_VERSION
) -> Tuple[Envelope, int]:
    """Parse an envelope body (the single definition of its layout).

    ``max_version`` bounds the wire-format generation accepted for the
    *nested payload* frame (see :func:`decode_envelope`).
    """
    sender, pos = read_string(data, pos)
    destination, pos = read_string(data, pos)
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireFormatError("envelope payload runs past end of frame")
    payload = decode(bytes(data[pos:end]), max_version=max_version)
    return Envelope(sender, destination, payload), end


def _read_envelope(data, pos: int) -> Tuple[Envelope, int]:
    """Registry reader: an envelope body at the current generation."""
    return _read_envelope_body(data, pos)


register(ENVELOPE_TAG, Envelope, _write_envelope, _read_envelope)


def encode_envelope(envelope: Envelope) -> bytes:
    """Encode an envelope (and its payload) into one frame."""
    return encode(envelope)


def decode_envelope(data: bytes, *, max_version: int = FRAME_VERSION) -> Envelope:
    """Decode an envelope frame produced by :func:`encode_envelope`.

    ``max_version`` bounds the wire-format generation of the *nested
    payload*: a worker running an older protocol generation passes its own
    (``RealWorkerConfig.wire_generation``), so payloads from newer peers are
    rejected exactly as its real decoder would reject them — the frame is
    dropped like a lost message, which is the rolling-upgrade behaviour the
    mixed-version cluster tests exercise.  The envelope itself is a
    generation-1 frame, so routing keeps working across generations.
    """
    _version, tag, body_start, body_len = read_header(data)
    if tag != ENVELOPE_TAG:
        raise WireFormatError(f"expected envelope tag {ENVELOPE_TAG}, got {tag}")
    body_end = body_start + body_len
    if body_end != len(data):
        raise WireFormatError(f"{len(data) - body_end} trailing bytes after frame")
    try:
        envelope, pos = _read_envelope_body(data, body_start, max_version=max_version)
    except WireFormatError:
        raise
    except ValueError as exc:
        raise WireFormatError(f"corrupt envelope body: {exc}") from exc
    if pos != body_end:
        raise WireFormatError(
            f"envelope body consumed {pos - body_start} bytes but frame declared {body_len}"
        )
    return envelope


def envelope_route_info(data) -> Tuple[str, str, Optional[int]]:
    """Parse ``(sender, destination, payload_tag)`` from an envelope frame.

    This is the router's fast path: it validates the frame header and reads
    the two routing strings without touching the payload *body*.  The nested
    payload frame's tag sits right behind the routing header, so the router
    can additionally account traffic per message kind (see
    :func:`payload_kind`) for the cost of three varint reads; a payload whose
    own header does not parse yields tag ``None`` (the frame is still
    forwarded — payload corruption is the receiver's business).  Any
    malformation in the envelope header or the routing strings themselves
    surfaces as :class:`~repro.wire.WireFormatError`, so the router can treat
    "unroutable" as a single error class.
    """
    _version, tag, pos, _body_len = read_header(data)
    if tag != ENVELOPE_TAG:
        raise WireFormatError(f"expected envelope tag {ENVELOPE_TAG}, got {tag}")
    try:
        sender, pos = read_string(data, pos)
        destination, pos = read_string(data, pos)
    except WireFormatError:
        raise
    except ValueError as exc:
        raise WireFormatError(f"corrupt envelope routing header: {exc}") from exc
    payload_tag: Optional[int] = None
    try:
        length, pos = read_uvarint(data, pos)
        if length >= 3 and pos + length <= len(data):
            # A zero-copy view suffices: read_header only touches the first
            # few bytes (magic, version, two varints) of the nested frame.
            _pver, ptag, _ppos, _plen = read_header(memoryview(data)[pos : pos + length])
            payload_tag = ptag
    except (ValueError, WireFormatError):
        payload_tag = None
    return sender, destination, payload_tag


def envelope_route(data) -> Tuple[str, str]:
    """Parse only ``(sender, destination)`` from an envelope frame."""
    sender, destination, _tag = envelope_route_info(data)
    return sender, destination


#: Payload-tag → kind label, for the router's per-kind traffic accounting.
#: Mirrors :class:`~repro.distributed.messages.MessageKinds` where the kinds
#: overlap, so simulated and real runs report comparable ``bytes_by_kind``.
_PAYLOAD_KINDS: Dict[int, str] = {
    int(Tag.WORK_REQUEST): "work_request",
    int(Tag.WORK_GRANT): "work_grant",
    int(Tag.WORK_DENIED): "work_denied",
    int(Tag.WORK_REPORT_MSG): "work_report",
    int(Tag.TABLE_GOSSIP_MSG): "table_gossip",
    int(Tag.DELTA_GOSSIP_MSG): "delta_gossip",
    int(Tag.TABLE_GOSSIP_ACK): "gossip_ack",
    int(Tag.VIEW_GOSSIP): "view_gossip",
    int(Tag.JOIN_ANNOUNCEMENT): "join_announcement",
}


def register_payload_kind(tag: int, name: str) -> None:
    """Name the traffic kind of an extension tag (used by ``node``)."""
    _PAYLOAD_KINDS[int(tag)] = name


def payload_kind(tag: Optional[int]) -> str:
    """Kind label of a payload tag (``unknown`` when it could not be read)."""
    if tag is None:
        return "unknown"
    return _PAYLOAD_KINDS.get(tag, f"tag_{tag}")


def send_envelope(connection, envelope: Envelope) -> None:
    """Encode and send one envelope over a pipe connection."""
    connection.send_bytes(encode_envelope(envelope))


def recv_envelope(connection, *, max_version: int = FRAME_VERSION) -> Envelope:
    """Receive and decode one envelope from a pipe connection.

    Raises :class:`~repro.wire.WireFormatError` on corrupt frames (including
    payloads from a newer wire-format generation than ``max_version``) and
    the usual ``EOFError``/``OSError`` on closed pipes.
    """
    return decode_envelope(connection.recv_bytes(), max_version=max_version)


# --------------------------------------------------------------------------- #
# Stream framing: reassembly of self-delimiting frames on a byte boundary
# --------------------------------------------------------------------------- #

#: Bytes pulled off a stream socket per ``recv`` call.
STREAM_CHUNK = 65536

#: Upper bound on the identity preamble (uvarint length + utf-8 name).
_IDENTITY_LIMIT = 300

#: Forward-latency histogram buckets (seconds): forwarding one frame is a
#: sub-millisecond operation, so the buckets sit well below
#: :data:`repro.obs.metrics.DEFAULT_BUCKETS`.
FORWARD_LATENCY_BUCKETS = (
    0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
)


def frame_extent(data) -> Optional[int]:
    """Length of the single complete frame at the head of ``data``, if any.

    Wire frames are self-delimiting — the header declares the body length —
    so a byte stream needs no extra length prefix: try-parse the header and
    either the frame's extent is known or the buffer is still a prefix.
    Returns ``None`` when ``data`` holds only a partial frame (the caller
    keeps the bytes and waits for more — the partial-read invariant);
    raises :class:`~repro.wire.WireFormatError` when the head cannot start
    a frame at all (bad magic: the stream is desynchronised and cannot be
    trusted again).
    """
    try:
        _version, _tag, body_start, body_len = read_header(data)
    except TruncatedFrameError:
        return None
    return body_start + body_len


def _encode_identity(name: str) -> bytes:
    """The first bytes a stream client sends: uvarint length + utf-8 name."""
    encoded = name.encode("utf-8")
    out = bytearray()
    write_uvarint(out, len(encoded))
    out += encoded
    return bytes(out)


def _parse_identity(buffer) -> Optional[Tuple[str, int]]:
    """Parse the identity preamble; ``None`` while it is still incomplete.

    Raises :class:`~repro.wire.WireFormatError` for a preamble that can
    never become valid (oversized length or undecodable name).
    """
    try:
        length, pos = read_uvarint(buffer, 0)
    except ValueError:
        if len(buffer) > _IDENTITY_LIMIT:
            raise WireFormatError("unparseable identity preamble")
        return None
    if length > _IDENTITY_LIMIT:
        raise WireFormatError(f"identity name of {length} bytes exceeds limit")
    if pos + length > len(buffer):
        return None
    try:
        name = bytes(buffer[pos : pos + length]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"identity is not utf-8: {exc}") from exc
    return name, pos + length


class StreamConnection:
    """Connection-compatible adapter over a blocking stream socket.

    Gives worker processes the same ``poll``/``recv_bytes``/``send_bytes``
    surface as a ``multiprocessing`` pipe Connection, with message framing
    recovered from the byte stream via :func:`frame_extent`: ``poll`` is
    true once a *complete* frame is buffered, ``recv_bytes`` returns exactly
    one frame.  Sends are plain ``sendall`` — a worker blocking on a slow
    router mirrors a worker blocking on a full pipe.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rbuf = bytearray()
        self._eof = False

    def fileno(self) -> int:
        return self._sock.fileno()

    def send_bytes(self, data) -> None:
        self._sock.sendall(data)

    def _buffered_frame(self) -> Optional[int]:
        try:
            return frame_extent(self._rbuf)
        except WireFormatError:
            # Desync is surfaced from recv_bytes, inside callers' handlers.
            return len(self._rbuf)

    def poll(self, timeout: Optional[float] = 0.0) -> bool:
        """True once a complete frame (or EOF) is ready for ``recv_bytes``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._buffered_frame() is not None or self._eof:
                return True
            if deadline is None:
                wait: Optional[float] = None
            else:
                wait = deadline - time.monotonic()
                if wait < 0:
                    return False
            readable, _, _ = select.select([self._sock], [], [], wait)
            if not readable:
                return False
            try:
                chunk = self._sock.recv(STREAM_CHUNK)
            except BlockingIOError:  # pragma: no cover - spurious wakeup
                continue
            except OSError:
                self._eof = True
                return True
            if not chunk:
                self._eof = True
                return True
            self._rbuf += chunk

    def recv_bytes(self, maxlength: Optional[int] = None) -> bytes:
        """Return the next complete frame (blocking until it arrives)."""
        while True:
            try:
                extent = frame_extent(self._rbuf)
            except WireFormatError:
                # The stream can no longer be trusted; discard the buffer so
                # the error is raised once, not on every later call.
                del self._rbuf[:]
                raise
            if extent is not None:
                frame = bytes(self._rbuf[:extent])
                del self._rbuf[:extent]
                return frame
            if self._eof:
                raise EOFError
            try:
                chunk = self._sock.recv(STREAM_CHUNK)
            except OSError as exc:
                raise EOFError from exc
            if not chunk:
                self._eof = True
            else:
                self._rbuf += chunk

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass


def _connect_with_retry(factory, deadline_seconds: float):
    """Dial until ``factory`` succeeds, with bounded exponential backoff.

    Workers regularly dial before the router's listener is up (the driver
    starts them concurrently); retrying with backoff instead of failing is
    what makes the socket transports usable on a real fabric.
    """
    deadline = time.monotonic() + deadline_seconds
    delay = 0.01
    while True:
        try:
            return factory()
        except (FileNotFoundError, ConnectionRefusedError, ConnectionResetError, OSError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 0.5)


class WorkerEndpoint:
    """A picklable handle a worker process turns into its connection.

    Concrete transports return either a ready Connection (pipes — the child
    inherits the pipe end) or an endpoint like :class:`UdsEndpoint` /
    :class:`TcpEndpoint` that the child must :meth:`connect` first;
    :func:`resolve_connection` accepts both, so driver and worker code stay
    transport-agnostic.
    """

    #: Seconds :meth:`connect` keeps retrying before giving up.
    CONNECT_DEADLINE = 10.0

    def connect(self):  # pragma: no cover - interface
        raise NotImplementedError


class UdsEndpoint(WorkerEndpoint):
    """Connects to a :class:`UdsRouter` socket and identifies by name."""

    def __init__(self, address: str, name: str) -> None:
        self.address = address
        self.name = name

    def _dial(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(self.address)
        except OSError:
            sock.close()
            raise
        return sock

    def connect(self) -> StreamConnection:
        """Connect to the router socket; retries while the listener comes up."""
        sock = _connect_with_retry(self._dial, self.CONNECT_DEADLINE)
        # The router reads this identity preamble to bind the connection to
        # a worker name; everything after it is ordinary envelope frames.
        sock.sendall(_encode_identity(self.name))
        return StreamConnection(sock)


class TcpEndpoint(WorkerEndpoint):
    """Connects to a :class:`TcpRouter` listener and identifies by name."""

    def __init__(self, host: str, port: int, name: str) -> None:
        self.host = host
        self.port = port
        self.name = name

    def _dial(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            # Envelope frames are small and latency-sensitive; without
            # NODELAY, Nagle + delayed ACK serialises the request/grant
            # ping-pong at ~40ms a round trip (bench_transport measures it).
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.connect((self.host, self.port))
        except OSError:
            sock.close()
            raise
        return sock

    def connect(self) -> StreamConnection:
        """Connect to the router's TCP listener; retries with backoff."""
        sock = _connect_with_retry(self._dial, self.CONNECT_DEADLINE)
        sock.sendall(_encode_identity(self.name))
        return StreamConnection(sock)


def resolve_connection(handle):
    """Turn an ``add_worker`` return value into a usable connection."""
    if hasattr(handle, "recv_bytes"):
        return handle
    return handle.connect()


class EnvelopeRouter:
    """Routes envelope frames between worker processes through the parent.

    The shared half of every transport: the per-link / per-payload-kind
    traffic accounting, the telemetry hooks and the thread lifecycle.  A
    background thread in the parent process moves frames between the
    router-side connections, parsing only each frame's routing header and
    forwarding the raw bytes to their destination.  Messages to unknown or
    finished workers, and frames that fail to parse, are dropped silently,
    matching the lossy network model of the paper.

    Subclasses implement :meth:`add_worker` (how a worker obtains its
    endpoint), connection establishment/teardown and the concrete
    forwarding loop (:meth:`_run`).
    """

    #: Transport name, for reporting (``LocalClusterResult.transport``).
    transport = "abstract"

    def __init__(self) -> None:
        #: Router-side connections, keyed by worker name.
        self._parent_ends: Dict[str, Any] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Count of forwarded messages, for tests and reporting.
        self.forwarded = 0
        #: Count of dropped messages (unknown/closed destination, bad frame).
        self.dropped = 0
        #: Total payload-carrying bytes forwarded.
        self.bytes_forwarded = 0
        #: Per-link traffic: ``(sender, destination) -> bytes forwarded``.
        self.link_bytes: Dict[Tuple[str, str], int] = {}
        #: Per-link traffic: ``(sender, destination) -> messages forwarded``.
        self.link_messages: Dict[Tuple[str, str], int] = {}
        #: Forwarded bytes per payload kind (see :func:`payload_kind`).
        self.kind_bytes: Dict[str, int] = {}
        #: Forwarded messages per payload kind.
        self.kind_messages: Dict[str, int] = {}
        #: Optional :class:`repro.obs.Tracer` recording forward spans.  Set
        #: by the driver when telemetry is on; appends from the router
        #: thread are GIL-atomic list operations, so no extra locking.
        self.tracer = None
        #: Optional :class:`repro.obs.MetricsRegistry`.  Set by the driver
        #: when metrics are on; the router observes its forward latencies
        #: into ``router_forward_latency_seconds{link=...,transport=...}``.
        self.metrics = None
        self._latency_hists: Dict[Tuple[str, str], Any] = {}
        #: Workers whose traffic is currently dropped (SIGSTOP churn).  A
        #: stopped process cannot drain its pipe, so forwarding to it would
        #: eventually fill the buffer and block the router thread; dropping
        #: instead models the lossy network the paper assumes.  Mutated by
        #: the driver thread; set operations are GIL-atomic.
        self.paused: set = set()

    # ------------------------------------------------------------------ #
    # Transport interface
    # ------------------------------------------------------------------ #
    def add_worker(self, name: str):  # pragma: no cover - interface
        """Register a worker; returns its endpoint (or ready connection)."""
        raise NotImplementedError

    def remove_worker(self, name: str) -> None:
        """Forget a worker's registration so the name can be registered again.

        Used by churn restarts: the driver removes the departed worker,
        respawns the process and calls :meth:`add_worker` with the same name
        for a fresh endpoint.  Messages addressed to the name in between
        count as dropped, like any message to a dead entity.
        """
        self.paused.discard(name)
        conn = self._parent_ends.pop(name, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def start(self) -> None:
        """Start the forwarding thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"{self.transport}-router", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the forwarding thread and close the router-side connections.

        Idempotent.  A forwarding thread that fails to join within the
        timeout is abandoned (it is a daemon thread) with a loud warning —
        never a silently dangling reference — and the connections are
        closed regardless so the run's file descriptors are reclaimed.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            if thread.is_alive():
                logger.warning(
                    "%s router thread %r did not stop within 2.0s; "
                    "abandoning the daemon thread and closing its connections",
                    self.transport,
                    thread.name,
                )
            self._thread = None
        for conn in self._parent_ends.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    # ------------------------------------------------------------------ #
    # Shared forward accounting
    # ------------------------------------------------------------------ #
    def _account(
        self, sender: str, dest: str, tag: Optional[int], size: int, start: float
    ) -> None:
        """Count one forwarded frame (counters, tracer span, histogram).

        Every concrete forwarding loop calls this at the hand-off point, so
        pipe and stream transports report identical counter families.
        """
        self.forwarded += 1
        elapsed = time.time() - start
        kind = payload_kind(tag)
        if self.tracer is not None:
            self.tracer.span(
                kind,
                start,
                elapsed,
                process="router",
                category="transport",
                args={"link": f"{sender}->{dest}", "bytes": size},
            )
        if self.metrics is not None:
            link = (sender, dest)
            hist = self._latency_hists.get(link)
            if hist is None:
                hist = self.metrics.histogram(
                    "router_forward_latency_seconds",
                    buckets=FORWARD_LATENCY_BUCKETS,
                    link=f"{sender}->{dest}",
                    transport=self.transport,
                )
                self._latency_hists[link] = hist
            hist.observe(elapsed)
        self.bytes_forwarded += size
        link = (sender, dest)
        self.link_bytes[link] = self.link_bytes.get(link, 0) + size
        self.link_messages[link] = self.link_messages.get(link, 0) + 1
        self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + size
        self.kind_messages[kind] = self.kind_messages.get(kind, 0) + 1

    def _run(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class PipeRouter(EnvelopeRouter):
    """The pipe transport: a star of ``multiprocessing`` duplex pipes.

    ``add_worker`` returns the child end of the worker's pipe directly —
    child processes inherit it through the ``Process`` arguments, so no
    connection step is needed.  The forwarding loop polls with ``mpc.wait``
    and sends with blocking ``send_bytes``, byte-identical to the original
    single-transport router.
    """

    transport = "pipe"

    def __init__(self) -> None:
        super().__init__()
        self._child_ends: Dict[str, mpc.Connection] = {}

    def add_worker(self, name: str) -> mpc.Connection:
        """Create the pipe pair for a worker; returns the child end."""
        if name in self._parent_ends:
            raise ValueError(f"duplicate worker name: {name!r}")
        parent_end, child_end = mp.Pipe(duplex=True)
        self._parent_ends[name] = parent_end
        self._child_ends[name] = child_end
        return child_end

    def child_end(self, name: str) -> mpc.Connection:
        """The connection a worker process should use."""
        return self._child_ends[name]

    def remove_worker(self, name: str) -> None:
        """Forget both pipe ends (the churn-restart path)."""
        super().remove_worker(name)
        child = self._child_ends.pop(name, None)
        if child is not None:
            try:
                child.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    # ------------------------------------------------------------------ #
    # Forwarding loop
    # ------------------------------------------------------------------ #
    def _drop_connection(self, conn) -> None:
        """Forget a dead connection so ``mpc.wait`` stops reporting it ready.

        Without this, a closed connection is permanently "ready" and the
        forwarding loop busy-spins on its EOF at 100% CPU for the rest of
        the run.  Later messages to the departed worker simply count as
        dropped, like any message to a dead entity.
        """
        for name, end in list(self._parent_ends.items()):
            if end is conn:
                del self._parent_ends[name]
                break
        try:
            conn.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def _run(self) -> None:
        while not self._stop.is_set():
            ends = list(self._parent_ends.values())
            if not ends:
                self._stop.wait(0.05)
                continue
            ready = mpc.wait(ends, timeout=0.05)
            for conn in ready:
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    self._drop_connection(conn)
                    continue
                try:
                    sender, dest, tag = envelope_route_info(frame)
                except WireFormatError:
                    self.dropped += 1
                    continue
                destination = self._parent_ends.get(dest)
                if destination is None or dest in self.paused:
                    self.dropped += 1
                    continue
                forward_start = time.time()
                try:
                    destination.send_bytes(frame)
                except (BrokenPipeError, OSError):
                    self.dropped += 1
                    continue
                self._account(sender, dest, tag, len(frame), forward_start)


class _StreamPeer:
    """Per-connection state of the stream router's event loop."""

    __slots__ = ("sock", "name", "rbuf", "wbuf", "identified", "identify_by")

    def __init__(self, sock: socket.socket, identify_by: float) -> None:
        self.sock = sock
        self.name: Optional[str] = None
        self.rbuf = bytearray()
        self.wbuf = bytearray()
        self.identified = False
        #: Monotonic deadline for the identity preamble to arrive.
        self.identify_by = identify_by

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass


class StreamRouter(EnvelopeRouter):
    """Shared machinery of the socket transports: one event loop, no threads
    per connection.

    A single ``selectors``-based non-blocking loop multiplexes the listener
    socket, a wakeup channel and every worker connection in one thread:

    * **accept + identify** — new connections register for reads; the first
      bytes must be the identity preamble (uvarint length + utf-8 name)
      within :attr:`IDENTITY_TIMEOUT` seconds, or the connection is closed —
      a stillborn client can never stall later registrations, because
      nothing here blocks.
    * **partial-frame reassembly** — reads append to a per-connection buffer
      and :func:`frame_extent` carves out complete frames; a partial frame
      simply stays buffered (TCP segmentation never corrupts a message).
    * **write-queue backpressure** — forwards append to the destination's
      bounded write buffer and drain as the socket allows; when a slow or
      frozen (SIGSTOP) worker's buffer is full, further frames to *it* are
      dropped and counted, and every other link keeps flowing.  The
      driver-maintained :attr:`paused` set short-circuits the same way.

    Subclasses supply the listener socket (:meth:`_create_listener`), the
    worker endpoint (:meth:`_make_endpoint`) and per-socket options
    (:meth:`_configure_socket`).
    """

    #: Seconds a connected client has to send its identity preamble before
    #: the event loop gives up on it.
    IDENTITY_TIMEOUT = 2.0

    #: Per-connection write-buffer cap; frames beyond it are dropped, which
    #: bounds the router's memory against any one unresponsive worker.
    WRITE_BUFFER_LIMIT = 1 << 20

    #: Seconds an expected worker gets to dial in before frames addressed
    #: to it are dropped instead of deferred.  Unlike the pipe transport,
    #: whose links exist before any process starts, socket workers register
    #: asynchronously — an early frame to a peer that has not identified
    #: yet is a startup artefact, not a lost message.
    CONNECT_GRACE = 5.0

    #: Cap on frames parked for not-yet-connected workers.
    _DEFER_LIMIT = 4096

    def __init__(self) -> None:
        super().__init__()
        self._expected: set = set()
        self._listener: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        #: Peers detached by the driver thread; the loop thread reaps them.
        self._defunct: Deque[_StreamPeer] = deque()
        #: Accepted but not yet identified connections.
        self._pending: List[_StreamPeer] = []
        #: Expected name -> monotonic deadline for its connection to appear.
        self._connect_grace: Dict[str, float] = {}
        #: ``(destination, frame)`` parked until the destination identifies.
        self._deferred: Deque[Tuple[str, bytes]] = deque()

    # -- subclass hooks ------------------------------------------------- #
    def _create_listener(self) -> socket.socket:  # pragma: no cover - interface
        raise NotImplementedError

    def _make_endpoint(self, name: str) -> WorkerEndpoint:  # pragma: no cover
        raise NotImplementedError

    def _configure_socket(self, sock: socket.socket) -> None:
        """Per-connection socket options (e.g. ``TCP_NODELAY``)."""

    # -- transport interface -------------------------------------------- #
    def add_worker(self, name: str) -> WorkerEndpoint:
        """Register a worker; returns the endpoint it connects with."""
        if name in self._expected:
            raise ValueError(f"duplicate worker name: {name!r}")
        self._expected.add(name)
        self._connect_grace[name] = time.monotonic() + self.CONNECT_GRACE
        return self._make_endpoint(name)

    def remove_worker(self, name: str) -> None:
        """Drop the identity so a respawned worker may re-identify.

        Called from the driver thread while the event loop runs: the name
        is unlinked here (dict operations are GIL-atomic, so the loop
        either still saw the peer or no longer does — never half of it) and
        the socket itself is handed to the loop thread for unregistration,
        which is the only thread that touches the selector.
        """
        self.paused.discard(name)
        self._expected.discard(name)
        self._connect_grace.pop(name, None)
        peer = self._parent_ends.pop(name, None)
        if peer is not None:
            self._defunct.append(peer)
            if self._thread is not None and self._thread.is_alive():
                self._wake()
            else:
                self._reap_defunct()

    def _wake(self) -> None:
        """Nudge the event loop out of ``select`` (driver-thread safe)."""
        sock = self._wake_w
        if sock is not None:
            try:
                sock.send(b"\0")
            except (BlockingIOError, OSError):  # pragma: no cover - full/closed
                pass

    def start(self) -> None:
        if self._thread is not None:
            return
        if self._listener is None:
            self._listener = self._create_listener()
        self._listener.setblocking(False)
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wakeup")
        # The grace clock starts when the fabric is actually listening, not
        # when the driver pre-registered the names.
        now = time.monotonic()
        for name in self._expected:
            self._connect_grace[name] = now + self.CONNECT_GRACE
        super().start()

    def stop(self) -> None:
        self._stop.set()
        self._wake()
        super().stop()
        self._reap_defunct()
        for peer in self._pending:
            peer.close()
        self._pending.clear()
        for sock in (self._listener, self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - platform dependent
                    pass
        self._listener = None
        self._wake_r = None
        self._wake_w = None
        if self._selector is not None:
            try:
                self._selector.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            self._selector = None

    # -- the event loop -------------------------------------------------- #
    def _run(self) -> None:
        selector = self._selector
        assert selector is not None
        while not self._stop.is_set():
            try:
                events = selector.select(timeout=0.05)
            except OSError:  # pragma: no cover - selector torn down under us
                return
            now = time.monotonic()
            for key, mask in events:
                data = key.data
                if data == "listener":
                    self._accept(now)
                elif data == "wakeup":
                    self._drain_wakeup()
                else:
                    peer = data
                    if peer.sock.fileno() < 0:
                        continue
                    if mask & selectors.EVENT_READ:
                        self._on_readable(peer)
                    if mask & selectors.EVENT_WRITE and peer.sock.fileno() >= 0:
                        self._on_writable(peer)
            self._reap_defunct()
            self._expire_unidentified(now)
            self._expire_deferred(now)

    def _drain_wakeup(self) -> None:
        sock = self._wake_r
        if sock is None:
            return
        try:
            while sock.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _accept(self, now: float) -> None:
        listener = self._listener
        selector = self._selector
        if listener is None or selector is None:
            return
        while True:
            try:
                sock, _addr = listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            self._configure_socket(sock)
            peer = _StreamPeer(sock, now + self.IDENTITY_TIMEOUT)
            self._pending.append(peer)
            try:
                selector.register(sock, selectors.EVENT_READ, peer)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                peer.close()
                self._pending.remove(peer)

    def _detach(self, peer: _StreamPeer) -> None:
        """Unregister and close one connection (event-loop thread only)."""
        selector = self._selector
        if selector is not None:
            try:
                selector.unregister(peer.sock)
            except (KeyError, ValueError, OSError):
                pass
        if peer in self._pending:
            self._pending.remove(peer)
        if peer.name is not None and self._parent_ends.get(peer.name) is peer:
            del self._parent_ends[peer.name]
        peer.close()

    def _reap_defunct(self) -> None:
        while self._defunct:
            peer = self._defunct.popleft()
            selector = self._selector
            if selector is not None:
                try:
                    selector.unregister(peer.sock)
                except (KeyError, ValueError, OSError):
                    pass
            peer.close()

    def _expire_unidentified(self, now: float) -> None:
        for peer in list(self._pending):
            if now >= peer.identify_by:
                self._detach(peer)

    def _on_readable(self, peer: _StreamPeer) -> None:
        try:
            chunk = peer.sock.recv(STREAM_CHUNK)
        except BlockingIOError:  # pragma: no cover - spurious wakeup
            return
        except OSError:
            self._detach(peer)
            return
        if not chunk:
            self._detach(peer)
            return
        peer.rbuf += chunk
        if not peer.identified and not self._try_identify(peer):
            return
        self._pump_frames(peer)

    def _try_identify(self, peer: _StreamPeer) -> bool:
        """Bind the connection to its worker name once the preamble is in."""
        try:
            parsed = _parse_identity(peer.rbuf)
        except WireFormatError:
            self._detach(peer)
            return False
        if parsed is None:
            return False
        name, consumed = parsed
        del peer.rbuf[:consumed]
        if name not in self._expected or name in self._parent_ends:
            self._detach(peer)
            return False
        peer.name = name
        peer.identified = True
        if peer in self._pending:
            self._pending.remove(peer)
        self._parent_ends[name] = peer
        self._flush_deferred(name)
        return True

    def _flush_deferred(self, name: str) -> None:
        """Forward frames parked for ``name`` now that it has identified."""
        if not self._deferred:
            return
        remaining: Deque[Tuple[str, bytes]] = deque()
        for dest, frame in self._deferred:
            if dest == name:
                self._forward(frame)
            else:
                remaining.append((dest, frame))
        self._deferred = remaining

    def _expire_deferred(self, now: float) -> None:
        """Drop parked frames whose destination's connect grace ran out."""
        if not self._deferred:
            return
        remaining: Deque[Tuple[str, bytes]] = deque()
        for dest, frame in self._deferred:
            grace = self._connect_grace.get(dest)
            if grace is not None and now < grace and dest in self._expected:
                remaining.append((dest, frame))
            else:
                self.dropped += 1
        self._deferred = remaining

    def _pump_frames(self, peer: _StreamPeer) -> None:
        """Carve complete frames out of the read buffer and forward them."""
        while True:
            try:
                extent = frame_extent(peer.rbuf)
            except WireFormatError:
                # The stream is desynchronised (bad magic mid-stream); no
                # later byte can be trusted to start a frame, so the only
                # safe recovery is to drop the connection.
                self.dropped += 1
                self._detach(peer)
                return
            if extent is None:
                return
            frame = bytes(peer.rbuf[:extent])
            del peer.rbuf[:extent]
            self._forward(frame)

    def _forward(self, frame: bytes) -> None:
        try:
            sender, dest, tag = envelope_route_info(frame)
        except WireFormatError:
            self.dropped += 1
            return
        if dest in self.paused:
            self.dropped += 1
            return
        peer = self._parent_ends.get(dest)
        if peer is None:
            grace = self._connect_grace.get(dest)
            if (
                grace is not None
                and dest in self._expected
                and time.monotonic() < grace
                and len(self._deferred) < self._DEFER_LIMIT
            ):
                # An expected worker that has not dialed in yet; park the
                # frame instead of losing it to the startup race.
                self._deferred.append((dest, frame))
            else:
                self.dropped += 1
            return
        forward_start = time.time()
        if not self._enqueue(peer, frame):
            self.dropped += 1
            return
        self._account(sender, dest, tag, len(frame), forward_start)

    def _enqueue(self, peer: _StreamPeer, frame: bytes) -> bool:
        """Queue ``frame`` for ``peer``; False when backpressure drops it."""
        if peer.wbuf:
            if len(peer.wbuf) + len(frame) > self.WRITE_BUFFER_LIMIT:
                return False
            peer.wbuf += frame
            return True
        # Empty queue: try the kernel directly and only buffer the remainder,
        # so the common case costs no extra selector round trip.
        try:
            sent = peer.sock.send(frame)
        except BlockingIOError:
            sent = 0
        except OSError:
            self._detach(peer)
            return False
        if sent < len(frame):
            peer.wbuf += frame[sent:]
            self._set_write_interest(peer, True)
        return True

    def _on_writable(self, peer: _StreamPeer) -> None:
        if peer.wbuf:
            try:
                sent = peer.sock.send(peer.wbuf)
            except BlockingIOError:  # pragma: no cover - spurious wakeup
                return
            except OSError:
                self._detach(peer)
                return
            del peer.wbuf[:sent]
        if not peer.wbuf:
            self._set_write_interest(peer, False)

    def _set_write_interest(self, peer: _StreamPeer, on: bool) -> None:
        selector = self._selector
        if selector is None:
            return
        events = selectors.EVENT_READ | (selectors.EVENT_WRITE if on else 0)
        try:
            selector.modify(peer.sock, events, peer)
        except (KeyError, ValueError, OSError):  # pragma: no cover - detached
            pass


#: Listen backlog for the socket transports; 100+ workers dial at once in
#: the saturation benchmark, so this must exceed the default of a few dozen.
_LISTEN_BACKLOG = 256


class UdsRouter(StreamRouter):
    """The Unix-domain-socket transport, on the shared stream event loop.

    One listener socket in the parent; every worker (and the driver)
    connects to it and sends its identity preamble.  Unknown or duplicate
    identities are closed immediately.
    """

    transport = "uds"

    def __init__(self, address: Optional[str] = None) -> None:
        super().__init__()
        self._address = address
        self._socket_dir: Optional[str] = None

    @property
    def address(self) -> str:
        """The socket path; the backing temp directory is created lazily,
        so a router that is constructed but never used leaves no files."""
        if self._address is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-uds-")
            self._address = os.path.join(self._socket_dir, "router.sock")
        return self._address

    def _make_endpoint(self, name: str) -> UdsEndpoint:
        return UdsEndpoint(self.address, name)

    def _create_listener(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(self.address)
            sock.listen(_LISTEN_BACKLOG)
        except OSError:
            sock.close()
            raise
        return sock

    def stop(self) -> None:
        super().stop()
        if self._socket_dir is not None:
            try:
                if self._address is not None and os.path.exists(self._address):
                    os.unlink(self._address)
                os.rmdir(self._socket_dir)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._socket_dir = None


class TcpRouter(StreamRouter):
    """The TCP transport: the step off the single host.

    Behaves exactly like :class:`UdsRouter` — connect, identify by name,
    envelope frames — but listens on ``host:port`` (default loopback with an
    ephemeral port, resolved at bind time so endpoints carry the real port)
    and sets ``TCP_NODELAY`` on every connection: the protocol is a
    ping-pong of small frames, which Nagle + delayed ACK would serialise at
    tens of milliseconds a round trip.
    """

    transport = "tcp"

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__()
        self._host = host
        self._port = port

    def _ensure_listener(self) -> socket.socket:
        """Bind lazily but *before* any endpoint is handed out, so an
        ephemeral port 0 is resolved to the real listening port."""
        if self._listener is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self._host, self._port))
                sock.listen(_LISTEN_BACKLOG)
            except OSError:
                sock.close()
                raise
            self._port = sock.getsockname()[1]
            self._listener = sock
        return self._listener

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` workers dial (binds the listener if needed)."""
        self._ensure_listener()
        return (self._host, self._port)

    def _make_endpoint(self, name: str) -> TcpEndpoint:
        host, port = self.address
        return TcpEndpoint(host, port, name)

    def _create_listener(self) -> socket.socket:
        return self._ensure_listener()

    def _configure_socket(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


#: Registered transports, by the name ``LocalCluster``/``Scenario`` select.
TRANSPORTS = {
    "pipe": PipeRouter,
    "uds": UdsRouter,
    "tcp": TcpRouter,
}


def validate_transport(transport: str) -> str:
    """Check a transport name against the registry; returns it unchanged.

    The single validation point — ``Scenario``, ``LocalCluster`` and
    :func:`create_router` all call this, so registering a new transport in
    :data:`TRANSPORTS` is the only change needed to make it selectable.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} (known: {', '.join(sorted(TRANSPORTS))})"
        )
    return transport


def create_router(transport: str) -> EnvelopeRouter:
    """Instantiate the router for a named transport."""
    return TRANSPORTS[validate_transport(transport)]()
