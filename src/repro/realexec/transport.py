"""Pickle-over-multiprocessing transport for the real execution backend.

The paper evaluates its algorithm purely in simulation; this backend runs the
*same* core objects (:class:`~repro.core.completion.CompletionTracker`,
:class:`~repro.core.recovery.RecoveryPolicy`, the tree encoding, the work
messages) on real operating-system processes connected by pickled messages
over ``multiprocessing`` pipes.  It exists to demonstrate that the algorithm
is not tied to the simulator and to let the fault-injection tests kill actual
processes.

The transport is deliberately simple: a star of duplex pipes terminated at a
small router thread in the parent process.  Messages are addressed by worker
name; the router forwards them and never retries — an unreliable, asynchronous
channel, like the paper assumes.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Envelope", "PipeRouter"]


@dataclass(frozen=True)
class Envelope:
    """One routed message: sender, destination and an arbitrary payload."""

    sender: str
    destination: str
    payload: Any


class PipeRouter:
    """Routes envelopes between worker processes through the parent.

    The router owns one duplex pipe per worker.  A background thread in the
    parent process polls the worker ends and forwards envelopes to their
    destination.  Messages to unknown or finished workers are dropped
    silently, matching the lossy network model of the paper.
    """

    def __init__(self) -> None:
        self._parent_ends: Dict[str, mp.connection.Connection] = {}
        self._child_ends: Dict[str, mp.connection.Connection] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Count of forwarded messages, for tests and reporting.
        self.forwarded = 0
        #: Count of dropped messages (unknown/closed destination).
        self.dropped = 0

    def add_worker(self, name: str) -> mp.connection.Connection:
        """Create the pipe pair for a worker; returns the child end."""
        if name in self._parent_ends:
            raise ValueError(f"duplicate worker name: {name!r}")
        parent_end, child_end = mp.Pipe(duplex=True)
        self._parent_ends[name] = parent_end
        self._child_ends[name] = child_end
        return child_end

    def child_end(self, name: str) -> mp.connection.Connection:
        """The connection a worker process should use."""
        return self._child_ends[name]

    def start(self) -> None:
        """Start the forwarding thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="pipe-router", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the forwarding thread and close the parent pipe ends."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        for conn in self._parent_ends.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def _run(self) -> None:
        import multiprocessing.connection as mpc

        while not self._stop.is_set():
            ends = list(self._parent_ends.values())
            if not ends:
                self._stop.wait(0.05)
                continue
            ready = mpc.wait(ends, timeout=0.05)
            for conn in ready:
                try:
                    envelope = conn.recv()
                except (EOFError, OSError):
                    continue
                if not isinstance(envelope, Envelope):
                    self.dropped += 1
                    continue
                destination = self._parent_ends.get(envelope.destination)
                if destination is None:
                    self.dropped += 1
                    continue
                try:
                    destination.send(envelope)
                    self.forwarded += 1
                except (BrokenPipeError, OSError):
                    self.dropped += 1
