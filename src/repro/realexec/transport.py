"""Binary-framed transport for the real execution backend.

The paper evaluates its algorithm purely in simulation; this backend runs the
*same* core objects (:class:`~repro.core.completion.CompletionTracker`,
:class:`~repro.core.recovery.RecoveryPolicy`, the tree encoding, the work
messages) on real operating-system processes connected by ``multiprocessing``
pipes.  It exists to demonstrate that the algorithm is not tied to the
simulator and to let the fault-injection tests kill actual processes.

Protocol payloads travel as :mod:`repro.wire` frames, not pickles: each
message on a pipe is one length-prefixed byte string (``Connection.
send_bytes``) containing an :class:`Envelope` frame — sender, destination and
the nested payload frame.  The router parses only the envelope's routing
header and forwards the raw bytes untouched, so the parent process never
decodes (or re-encodes) payload bodies; full decoding happens once, at the
receiving worker.  Byte-for-byte forwarding also gives the router exact
per-link traffic counters, the real-execution counterpart of the simulator's
:class:`~repro.simulation.network.TrafficStats`.

The transport remains deliberately simple: a star topology terminated at a
small router thread in the parent process.  Messages are addressed by worker
name; the router forwards them and never retries — an unreliable,
asynchronous channel, like the paper assumes.  Frames that do not parse as
envelopes (truncated, corrupt, or foreign bytes) are counted and dropped.

The star's *links* are pluggable (the ``Transport`` seam): the shared
:class:`EnvelopeRouter` owns the forwarding loop and the traffic counters,
and a concrete transport only decides how worker connections are
established — :class:`PipeRouter` over ``multiprocessing`` duplex pipes,
:class:`UdsRouter` over Unix-domain sockets (workers connect to one listener
socket and identify themselves by name).  Both hand each worker process a
Connection-compatible endpoint, so the payload code in
:mod:`repro.realexec.node` is transport-agnostic; the driver selects the
transport by name (``LocalCluster(transport="uds")``, or
``Scenario(transport="uds")`` through the scenario API).
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection as mpc
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..wire import FRAME_VERSION, WireFormatError, decode, encode
from ..wire.frame import Tag, read_header, register
from ..wire.varint import read_string, read_uvarint, write_string, write_uvarint

__all__ = [
    "Envelope",
    "EnvelopeRouter",
    "PipeRouter",
    "UdsRouter",
    "WorkerEndpoint",
    "UdsEndpoint",
    "create_router",
    "resolve_connection",
    "register_payload_kind",
    "payload_kind",
    "encode_envelope",
    "decode_envelope",
    "envelope_route",
    "envelope_route_info",
    "send_envelope",
    "recv_envelope",
]

#: Wire tag of the realexec envelope (transport extension range).
ENVELOPE_TAG = int(Tag.EXTENSION_BASE)


@dataclass(frozen=True)
class Envelope:
    """One routed message: sender, destination and an arbitrary payload."""

    sender: str
    destination: str
    payload: Any


def _write_envelope(out: bytearray, envelope: Envelope) -> None:
    """Envelope body: sender, destination, then the nested payload frame."""
    write_string(out, envelope.sender)
    write_string(out, envelope.destination)
    payload = encode(envelope.payload)
    write_uvarint(out, len(payload))
    out += payload


def _read_envelope_body(
    data, pos: int, *, max_version: int = FRAME_VERSION
) -> Tuple[Envelope, int]:
    """Parse an envelope body (the single definition of its layout).

    ``max_version`` bounds the wire-format generation accepted for the
    *nested payload* frame (see :func:`decode_envelope`).
    """
    sender, pos = read_string(data, pos)
    destination, pos = read_string(data, pos)
    length, pos = read_uvarint(data, pos)
    end = pos + length
    if end > len(data):
        raise WireFormatError("envelope payload runs past end of frame")
    payload = decode(bytes(data[pos:end]), max_version=max_version)
    return Envelope(sender, destination, payload), end


def _read_envelope(data, pos: int) -> Tuple[Envelope, int]:
    """Registry reader: an envelope body at the current generation."""
    return _read_envelope_body(data, pos)


register(ENVELOPE_TAG, Envelope, _write_envelope, _read_envelope)


def encode_envelope(envelope: Envelope) -> bytes:
    """Encode an envelope (and its payload) into one frame."""
    return encode(envelope)


def decode_envelope(data: bytes, *, max_version: int = FRAME_VERSION) -> Envelope:
    """Decode an envelope frame produced by :func:`encode_envelope`.

    ``max_version`` bounds the wire-format generation of the *nested
    payload*: a worker running an older protocol generation passes its own
    (``RealWorkerConfig.wire_generation``), so payloads from newer peers are
    rejected exactly as its real decoder would reject them — the frame is
    dropped like a lost message, which is the rolling-upgrade behaviour the
    mixed-version cluster tests exercise.  The envelope itself is a
    generation-1 frame, so routing keeps working across generations.
    """
    _version, tag, body_start, body_len = read_header(data)
    if tag != ENVELOPE_TAG:
        raise WireFormatError(f"expected envelope tag {ENVELOPE_TAG}, got {tag}")
    body_end = body_start + body_len
    if body_end != len(data):
        raise WireFormatError(f"{len(data) - body_end} trailing bytes after frame")
    try:
        envelope, pos = _read_envelope_body(data, body_start, max_version=max_version)
    except WireFormatError:
        raise
    except ValueError as exc:
        raise WireFormatError(f"corrupt envelope body: {exc}") from exc
    if pos != body_end:
        raise WireFormatError(
            f"envelope body consumed {pos - body_start} bytes but frame declared {body_len}"
        )
    return envelope


def envelope_route_info(data) -> Tuple[str, str, Optional[int]]:
    """Parse ``(sender, destination, payload_tag)`` from an envelope frame.

    This is the router's fast path: it validates the frame header and reads
    the two routing strings without touching the payload *body*.  The nested
    payload frame's tag sits right behind the routing header, so the router
    can additionally account traffic per message kind (see
    :func:`payload_kind`) for the cost of three varint reads; a payload whose
    own header does not parse yields tag ``None`` (the frame is still
    forwarded — payload corruption is the receiver's business).  Any
    malformation in the envelope header or the routing strings themselves
    surfaces as :class:`~repro.wire.WireFormatError`, so the router can treat
    "unroutable" as a single error class.
    """
    _version, tag, pos, _body_len = read_header(data)
    if tag != ENVELOPE_TAG:
        raise WireFormatError(f"expected envelope tag {ENVELOPE_TAG}, got {tag}")
    try:
        sender, pos = read_string(data, pos)
        destination, pos = read_string(data, pos)
    except WireFormatError:
        raise
    except ValueError as exc:
        raise WireFormatError(f"corrupt envelope routing header: {exc}") from exc
    payload_tag: Optional[int] = None
    try:
        length, pos = read_uvarint(data, pos)
        if length >= 3 and pos + length <= len(data):
            # A zero-copy view suffices: read_header only touches the first
            # few bytes (magic, version, two varints) of the nested frame.
            _pver, ptag, _ppos, _plen = read_header(memoryview(data)[pos : pos + length])
            payload_tag = ptag
    except (ValueError, WireFormatError):
        payload_tag = None
    return sender, destination, payload_tag


def envelope_route(data) -> Tuple[str, str]:
    """Parse only ``(sender, destination)`` from an envelope frame."""
    sender, destination, _tag = envelope_route_info(data)
    return sender, destination


#: Payload-tag → kind label, for the router's per-kind traffic accounting.
#: Mirrors :class:`~repro.distributed.messages.MessageKinds` where the kinds
#: overlap, so simulated and real runs report comparable ``bytes_by_kind``.
_PAYLOAD_KINDS: Dict[int, str] = {
    int(Tag.WORK_REQUEST): "work_request",
    int(Tag.WORK_GRANT): "work_grant",
    int(Tag.WORK_DENIED): "work_denied",
    int(Tag.WORK_REPORT_MSG): "work_report",
    int(Tag.TABLE_GOSSIP_MSG): "table_gossip",
    int(Tag.DELTA_GOSSIP_MSG): "delta_gossip",
    int(Tag.TABLE_GOSSIP_ACK): "gossip_ack",
    int(Tag.VIEW_GOSSIP): "view_gossip",
    int(Tag.JOIN_ANNOUNCEMENT): "join_announcement",
}


def register_payload_kind(tag: int, name: str) -> None:
    """Name the traffic kind of an extension tag (used by ``node``)."""
    _PAYLOAD_KINDS[int(tag)] = name


def payload_kind(tag: Optional[int]) -> str:
    """Kind label of a payload tag (``unknown`` when it could not be read)."""
    if tag is None:
        return "unknown"
    return _PAYLOAD_KINDS.get(tag, f"tag_{tag}")


def send_envelope(connection, envelope: Envelope) -> None:
    """Encode and send one envelope over a pipe connection."""
    connection.send_bytes(encode_envelope(envelope))


def recv_envelope(connection, *, max_version: int = FRAME_VERSION) -> Envelope:
    """Receive and decode one envelope from a pipe connection.

    Raises :class:`~repro.wire.WireFormatError` on corrupt frames (including
    payloads from a newer wire-format generation than ``max_version``) and
    the usual ``EOFError``/``OSError`` on closed pipes.
    """
    return decode_envelope(connection.recv_bytes(), max_version=max_version)


class WorkerEndpoint:
    """A picklable handle a worker process turns into its connection.

    Concrete transports return either a ready Connection (pipes — the child
    inherits the pipe end) or an endpoint like :class:`UdsEndpoint` that the
    child must :meth:`connect` first; :func:`resolve_connection` accepts
    both, so driver and worker code stay transport-agnostic.
    """

    def connect(self):  # pragma: no cover - interface
        raise NotImplementedError


class UdsEndpoint(WorkerEndpoint):
    """Connects to a :class:`UdsRouter` socket and identifies by name."""

    def __init__(self, address: str, name: str) -> None:
        self.address = address
        self.name = name

    def connect(self):
        """Connect to the router socket; retries while the listener comes up."""
        deadline = time.monotonic() + 5.0
        while True:
            try:
                conn = mpc.Client(self.address, family="AF_UNIX")
                break
            except (FileNotFoundError, ConnectionRefusedError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.02)
        # The accept loop reads this identity frame to bind the connection
        # to a worker name; everything after it is ordinary envelope frames.
        conn.send_bytes(self.name.encode("utf-8"))
        return conn


def resolve_connection(handle):
    """Turn an ``add_worker`` return value into a usable connection."""
    if hasattr(handle, "recv_bytes"):
        return handle
    return handle.connect()


class EnvelopeRouter:
    """Routes envelope frames between worker processes through the parent.

    The shared half of every transport: a background thread in the parent
    process polls the router-side connections, parses each frame's routing
    header and forwards the raw bytes to their destination, accounting
    traffic per link and per payload kind.  Messages to unknown or finished
    workers, and frames that fail to parse, are dropped silently, matching
    the lossy network model of the paper.

    Subclasses only implement :meth:`add_worker` (how a worker obtains its
    endpoint) and connection establishment/teardown.
    """

    #: Transport name, for reporting (``LocalClusterResult.transport``).
    transport = "abstract"

    def __init__(self) -> None:
        #: Router-side connections, keyed by worker name.
        self._parent_ends: Dict[str, mpc.Connection] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Count of forwarded messages, for tests and reporting.
        self.forwarded = 0
        #: Count of dropped messages (unknown/closed destination, bad frame).
        self.dropped = 0
        #: Total payload-carrying bytes forwarded.
        self.bytes_forwarded = 0
        #: Per-link traffic: ``(sender, destination) -> bytes forwarded``.
        self.link_bytes: Dict[Tuple[str, str], int] = {}
        #: Per-link traffic: ``(sender, destination) -> messages forwarded``.
        self.link_messages: Dict[Tuple[str, str], int] = {}
        #: Forwarded bytes per payload kind (see :func:`payload_kind`).
        self.kind_bytes: Dict[str, int] = {}
        #: Forwarded messages per payload kind.
        self.kind_messages: Dict[str, int] = {}
        #: Optional :class:`repro.obs.Tracer` recording forward spans.  Set
        #: by the driver when telemetry is on; appends from the router
        #: thread are GIL-atomic list operations, so no extra locking.
        self.tracer = None
        #: Workers whose traffic is currently dropped (SIGSTOP churn).  A
        #: stopped process cannot drain its pipe, so forwarding to it would
        #: eventually fill the buffer and block the router thread; dropping
        #: instead models the lossy network the paper assumes.  Mutated by
        #: the driver thread; set operations are GIL-atomic.
        self.paused: set = set()

    # ------------------------------------------------------------------ #
    # Transport interface
    # ------------------------------------------------------------------ #
    def add_worker(self, name: str):  # pragma: no cover - interface
        """Register a worker; returns its endpoint (or ready connection)."""
        raise NotImplementedError

    def remove_worker(self, name: str) -> None:
        """Forget a worker's registration so the name can be registered again.

        Used by churn restarts: the driver removes the departed worker,
        respawns the process and calls :meth:`add_worker` with the same name
        for a fresh endpoint.  Messages addressed to the name in between
        count as dropped, like any message to a dead entity.
        """
        self.paused.discard(name)
        conn = self._parent_ends.pop(name, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    def start(self) -> None:
        """Start the forwarding thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"{self.transport}-router", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the forwarding thread and close the router-side connections."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        for conn in self._parent_ends.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - platform dependent
                pass

    # ------------------------------------------------------------------ #
    # Forwarding loop
    # ------------------------------------------------------------------ #
    def _drop_connection(self, conn) -> None:
        """Forget a dead connection so ``mpc.wait`` stops reporting it ready.

        Without this, a closed connection is permanently "ready" and the
        forwarding loop busy-spins on its EOF at 100% CPU for the rest of
        the run.  Later messages to the departed worker simply count as
        dropped, like any message to a dead entity.
        """
        for name, end in list(self._parent_ends.items()):
            if end is conn:
                del self._parent_ends[name]
                break
        try:
            conn.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def _run(self) -> None:
        while not self._stop.is_set():
            ends = list(self._parent_ends.values())
            if not ends:
                self._stop.wait(0.05)
                continue
            ready = mpc.wait(ends, timeout=0.05)
            for conn in ready:
                try:
                    frame = conn.recv_bytes()
                except (EOFError, OSError):
                    self._drop_connection(conn)
                    continue
                try:
                    sender, dest, tag = envelope_route_info(frame)
                except WireFormatError:
                    self.dropped += 1
                    continue
                destination = self._parent_ends.get(dest)
                if destination is None or dest in self.paused:
                    self.dropped += 1
                    continue
                forward_start = time.time()
                try:
                    destination.send_bytes(frame)
                except (BrokenPipeError, OSError):
                    self.dropped += 1
                    continue
                self.forwarded += 1
                size = len(frame)
                if self.tracer is not None:
                    self.tracer.span(
                        payload_kind(tag),
                        forward_start,
                        time.time() - forward_start,
                        process="router",
                        category="transport",
                        args={"link": f"{sender}->{dest}", "bytes": size},
                    )
                self.bytes_forwarded += size
                link = (sender, dest)
                self.link_bytes[link] = self.link_bytes.get(link, 0) + size
                self.link_messages[link] = self.link_messages.get(link, 0) + 1
                kind = payload_kind(tag)
                self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + size
                self.kind_messages[kind] = self.kind_messages.get(kind, 0) + 1


class PipeRouter(EnvelopeRouter):
    """The pipe transport: a star of ``multiprocessing`` duplex pipes.

    ``add_worker`` returns the child end of the worker's pipe directly —
    child processes inherit it through the ``Process`` arguments, so no
    connection step is needed.
    """

    transport = "pipe"

    def __init__(self) -> None:
        super().__init__()
        self._child_ends: Dict[str, mpc.Connection] = {}

    def add_worker(self, name: str) -> mpc.Connection:
        """Create the pipe pair for a worker; returns the child end."""
        if name in self._parent_ends:
            raise ValueError(f"duplicate worker name: {name!r}")
        parent_end, child_end = mp.Pipe(duplex=True)
        self._parent_ends[name] = parent_end
        self._child_ends[name] = child_end
        return child_end

    def child_end(self, name: str) -> mpc.Connection:
        """The connection a worker process should use."""
        return self._child_ends[name]

    def remove_worker(self, name: str) -> None:
        """Forget both pipe ends (the churn-restart path)."""
        super().remove_worker(name)
        child = self._child_ends.pop(name, None)
        if child is not None:
            try:
                child.close()
            except OSError:  # pragma: no cover - platform dependent
                pass


class UdsRouter(EnvelopeRouter):
    """The Unix-domain-socket transport (the ROADMAP's cross-transport item).

    One listener socket in the parent; every worker (and the driver) connects
    to it and sends its name as the first frame.  An accept thread binds each
    incoming connection to its worker name, after which the shared forwarding
    loop treats it exactly like a pipe — byte-identical envelope frames, no
    payload-code changes anywhere.  Unknown or duplicate identities are
    closed immediately.
    """

    transport = "uds"

    #: Seconds a connected client has to send its identity frame before the
    #: accept loop gives up on it — bounds how long one stillborn client
    #: (killed between connect and identify) can stall later registrations.
    IDENTITY_TIMEOUT = 2.0

    def __init__(self, address: Optional[str] = None) -> None:
        super().__init__()
        self._address = address
        self._socket_dir: Optional[str] = None
        self._expected: set = set()
        self._listener: Optional[mpc.Listener] = None
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The socket path; the backing temp directory is created lazily,
        so a router that is constructed but never used leaves no files."""
        if self._address is None:
            self._socket_dir = tempfile.mkdtemp(prefix="repro-uds-")
            self._address = os.path.join(self._socket_dir, "router.sock")
        return self._address

    def add_worker(self, name: str) -> UdsEndpoint:
        """Register a worker; returns the endpoint it connects with."""
        if name in self._expected:
            raise ValueError(f"duplicate worker name: {name!r}")
        self._expected.add(name)
        return UdsEndpoint(self.address, name)

    def remove_worker(self, name: str) -> None:
        """Drop the identity so a respawned worker may re-identify."""
        super().remove_worker(name)
        self._expected.discard(name)

    def start(self) -> None:
        if self._thread is not None:
            return
        self._listener = mpc.Listener(self.address, family="AF_UNIX")
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="uds-accept", daemon=True
        )
        self._accept_thread.start()
        super().start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                assert self._listener is not None
                conn = self._listener.accept()
            except (OSError, EOFError, AssertionError):
                if self._stop.is_set():
                    return
                continue
            try:
                if not conn.poll(self.IDENTITY_TIMEOUT):
                    conn.close()
                    continue
                name = conn.recv_bytes(256).decode("utf-8")
            except (EOFError, OSError, UnicodeDecodeError):
                conn.close()
                continue
            if name not in self._expected or name in self._parent_ends:
                conn.close()
                continue
            self._parent_ends[name] = conn

    def stop(self) -> None:
        self._stop.set()
        # Closing a listening socket does not reliably interrupt a blocked
        # accept(); poke it with a throwaway connection so the accept loop
        # wakes up, observes the stop flag and exits promptly.
        if self._listener is not None:
            try:
                mpc.Client(self.address, family="AF_UNIX").close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            self._listener = None
        super().stop()
        if self._socket_dir is not None:
            try:
                if self._address is not None and os.path.exists(self._address):
                    os.unlink(self._address)
                os.rmdir(self._socket_dir)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._socket_dir = None


#: Registered transports, by the name ``LocalCluster``/``Scenario`` select.
TRANSPORTS = {
    "pipe": PipeRouter,
    "uds": UdsRouter,
}


def validate_transport(transport: str) -> str:
    """Check a transport name against the registry; returns it unchanged.

    The single validation point — ``Scenario``, ``LocalCluster`` and
    :func:`create_router` all call this, so registering a new transport in
    :data:`TRANSPORTS` is the only change needed to make it selectable.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} (known: {', '.join(sorted(TRANSPORTS))})"
        )
    return transport


def create_router(transport: str) -> EnvelopeRouter:
    """Instantiate the router for a named transport."""
    return TRANSPORTS[validate_transport(transport)]()
