"""Real (multiprocessing) execution backend.

Runs the same core algorithm objects used by the simulator on real operating
system processes connected by :mod:`repro.wire` binary frames over
``multiprocessing`` pipes (no protocol payload is pickled; see
``docs/WIRE_FORMAT.md``).  Small-scale by design: it demonstrates that the
mechanism is not an
artefact of the simulator and lets the test-suite kill real processes, while
the quantitative evaluation stays on the simulator as in the paper.

* :mod:`repro.realexec.transport` — the pluggable transport seam: the
  shared envelope router plus the pipe and Unix-domain-socket transports;
* :mod:`repro.realexec.node` — the per-process worker loop;
* :mod:`repro.realexec.driver` — the local cluster driver with fault
  injection and transport selection (``LocalCluster(transport="uds")``).
"""

from .driver import LocalCluster, LocalClusterResult, run_local_cluster
from .node import RealWorkerConfig, WorkerOutcome, worker_main
from .transport import (
    Envelope,
    EnvelopeRouter,
    PipeRouter,
    UdsRouter,
    create_router,
)

__all__ = [
    "Envelope",
    "EnvelopeRouter",
    "PipeRouter",
    "UdsRouter",
    "create_router",
    "RealWorkerConfig",
    "WorkerOutcome",
    "worker_main",
    "LocalCluster",
    "LocalClusterResult",
    "run_local_cluster",
]
