"""Driver for small real (multiprocessing) runs of the algorithm.

:class:`LocalCluster` spawns one OS process per worker, wires them through a
:class:`~repro.realexec.transport.PipeRouter`, optionally kills a subset of
them mid-run (real fault injection), collects each survivor's
:class:`~repro.realexec.node.WorkerOutcome` and checks that the surviving
workers agree on the optimum.  It is intentionally small-scale — the paper's
performance evaluation belongs to the simulator — but it closes the loop on
"the same algorithm objects run outside the simulator".
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bnb.basic_tree import BasicTree
from ..obs import MetricsRegistry, Telemetry, TelemetryConfig, Tracer, get_logger
from ..obs.ingest import ingest_router
from ..wire import WireFormatError
from .node import RealWorkerConfig, WorkerOutcome, WorkerTelemetry, worker_main
from .transport import create_router, recv_envelope, resolve_connection, validate_transport

logger = get_logger("realexec.driver")

__all__ = ["LocalClusterResult", "LocalCluster", "run_local_cluster"]


@dataclass
class LocalClusterResult:
    """Result of one real multiprocessing run."""

    n_workers: int
    outcomes: Dict[str, WorkerOutcome] = field(default_factory=dict)
    killed: List[str] = field(default_factory=list)
    #: Workers that left through churn and returned (rejoined) during the run.
    rejoined: List[str] = field(default_factory=list)
    #: Workers that left through churn and never returned.
    churned_out: List[str] = field(default_factory=list)
    #: Total worker-seconds spent unavailable to churn (wall clock).
    unavailable_time: float = 0.0
    wall_time: float = 0.0
    reference_optimum: Optional[float] = None
    #: Transport the cluster ran on (``pipe``, ``uds`` or ``tcp``).
    transport: str = "pipe"
    #: Router traffic counters (real encoded bytes, not the analytic model).
    messages_forwarded: int = 0
    messages_dropped: int = 0
    bytes_forwarded: int = 0
    #: Forwarded bytes per payload kind (frame-tag classification).
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Merged :class:`repro.obs.Telemetry` (driver + workers + router) when
    #: the cluster ran with telemetry enabled; ``None`` otherwise.
    telemetry: Optional[Telemetry] = None

    def _departed(self) -> set:
        """Workers excluded from the surviving set (killed or churned out).

        A worker that was churn-killed and rejoined is *not* departed — its
        post-rejoin outcome counts like any survivor's.
        """
        return set(self.killed) | set(self.churned_out)

    @property
    def surviving_terminated(self) -> bool:
        """True when every surviving worker detected termination."""
        departed = self._departed()
        survivors = [o for name, o in self.outcomes.items() if name not in departed]
        return bool(survivors) and all(o.terminated for o in survivors)

    @property
    def best_value(self) -> Optional[float]:
        """Best value reported by any surviving worker."""
        departed = self._departed()
        values = [
            o.best_value
            for name, o in self.outcomes.items()
            if name not in departed and o.best_value is not None
        ]
        if not values:
            return None
        return min(values) if self._minimize else max(values)

    # Set by the driver so best_value knows the optimisation sense.
    _minimize: bool = True

    @property
    def solved_correctly(self) -> Optional[bool]:
        """True when the surviving workers found the reference optimum."""
        if self.reference_optimum is None or self.best_value is None:
            return None
        return abs(self.best_value - self.reference_optimum) <= 1e-9 * max(
            1.0, abs(self.reference_optimum)
        )


class LocalCluster:
    """Spawns and supervises a small cluster of real worker processes."""

    def __init__(
        self,
        tree: BasicTree,
        n_workers: int,
        *,
        seed: int = 0,
        node_sleep: float = 0.0,
        max_seconds: float = 30.0,
        prune: bool = True,
        report_threshold: int = 5,
        report_fanout: int = 2,
        recovery_failed_threshold: int = 3,
        wire_generations: Optional[Sequence[int]] = None,
        transport: str = "pipe",
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        """``wire_generations`` optionally assigns a wire-format generation
        per worker index (defaults to the current generation for all) — a
        mixed list models a rolling upgrade where generation-1 and
        generation-2 binaries coexist in one cluster.  ``transport`` selects
        how the workers are wired: ``"pipe"`` (multiprocessing pipes),
        ``"uds"`` (Unix-domain sockets) or ``"tcp"`` (a TCP listener the
        workers dial); the protocol bytes are identical on all three."""
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        transport = validate_transport(transport)
        self.tree = tree
        self.n_workers = n_workers
        self.seed = seed
        self.node_sleep = node_sleep
        self.max_seconds = max_seconds
        self.prune = prune
        self.report_threshold = report_threshold
        self.report_fanout = report_fanout
        self.recovery_failed_threshold = recovery_failed_threshold
        self.transport = transport
        if wire_generations is not None:
            if len(wire_generations) != n_workers:
                raise ValueError("wire_generations must name one generation per worker")
            from ..wire import FRAME_VERSION, FRAME_VERSION_V1

            for generation in wire_generations:
                if not (FRAME_VERSION_V1 <= generation <= FRAME_VERSION):
                    raise ValueError(
                        f"unknown wire-format generation {generation} "
                        f"(known: {FRAME_VERSION_V1}..{FRAME_VERSION})"
                    )
        self.wire_generations = list(wire_generations) if wire_generations is not None else None
        self.telemetry = telemetry
        self.names = [f"rworker-{i:02d}" for i in range(n_workers)]
        self._tree_data = None

    def _worker_config(
        self, index: int, name: str, *, has_root: bool, seed: int, telemetry_on: bool
    ) -> RealWorkerConfig:
        """Build one worker's config (shared by initial spawn and rejoin)."""
        return RealWorkerConfig(
            name=name,
            members=tuple(self.names),
            tree_data=self._tree_data,
            has_root=has_root,
            seed=seed,
            node_sleep=self.node_sleep,
            max_seconds=self.max_seconds,
            prune=self.prune,
            report_threshold=self.report_threshold,
            report_fanout=self.report_fanout,
            recovery_failed_threshold=self.recovery_failed_threshold,
            wire_generation=(
                self.wire_generations[index]
                if self.wire_generations is not None
                else RealWorkerConfig.wire_generation
            ),
            telemetry=telemetry_on,
        )

    def run(
        self,
        *,
        kill: Sequence[str] = (),
        kill_after: float = 0.5,
        kill_schedule: Sequence[Tuple[float, Sequence[str]]] = (),
        churn_schedule: Sequence[Tuple[float, str, str]] = (),
        churn_mode: str = "restart",
    ) -> LocalClusterResult:
        """Run the cluster, optionally killing workers mid-run.

        ``kill``/``kill_after`` terminate one group of workers after one
        delay; ``kill_schedule`` generalises that to several
        ``(delay_seconds, worker_names)`` groups, each fired at its own
        wall-clock offset (the scenario backend maps one ``FailureSpec``
        per group).  Both forms may be combined.

        ``churn_schedule`` is a sequence of ``(delay_seconds, worker,
        action)`` events with ``action`` in ``{"leave", "return"}`` — the
        resolved form of a :class:`~repro.scenario.spec.ChurnSpec`.  In
        ``"suspend"`` mode a leave sends SIGSTOP and a return SIGCONT (the
        worker resumes with its state intact); in ``"restart"`` mode a leave
        terminates the process and a return respawns it fresh (``has_root=
        False``), so the rejoiner must re-converge through the gossip
        first-contact path.  A worker that leaves and never returns is
        recorded in :attr:`LocalClusterResult.churned_out`.
        """
        if churn_mode not in ("restart", "suspend"):
            raise ValueError(f"unknown churn mode {churn_mode!r}")
        ctx = mp.get_context()
        router = create_router(self.transport)
        driver_handle = router.add_worker("__driver__")

        telemetry_cfg = self.telemetry
        telemetry_on = telemetry_cfg is not None and telemetry_cfg.enabled
        tracer: Optional[Tracer] = None
        if telemetry_cfg is not None and telemetry_cfg.trace:
            # Workers record absolute wall timestamps; the driver's tracer
            # shifts everything onto the cluster-start origin at export.
            tracer = Tracer(process="driver", clock=time.time)
            router.tracer = tracer
        if telemetry_cfg is not None and telemetry_cfg.metrics:
            # The router observes per-link forward-latency histograms into
            # this live registry; ingest_router folds it into the merged
            # telemetry after the run.
            router.metrics = MetricsRegistry()

        self._tree_data = self.tree.to_dict()
        processes: Dict[str, mp.Process] = {}
        for index, name in enumerate(self.names):
            endpoint = router.add_worker(name)
            config = self._worker_config(
                index, name, has_root=(index == 0), seed=self.seed + index,
                telemetry_on=telemetry_on,
            )
            process = ctx.Process(target=worker_main, args=(config, endpoint), daemon=True)
            processes[name] = process

        # The router must be listening before the driver (and, for socket
        # transports, the workers) can connect.
        router.start()
        driver_end = resolve_connection(driver_handle)
        logger.info(
            "starting cluster: %d workers, transport=%s", self.n_workers, router.transport
        )
        start = time.monotonic()
        start_wall = time.time()
        for process in processes.values():
            process.start()

        result = LocalClusterResult(
            n_workers=self.n_workers,
            reference_optimum=self.tree.optimal_value(),
            transport=router.transport,
        )
        result._minimize = self.tree.minimize

        killed: List[str] = []
        worker_telemetry: Dict[str, WorkerTelemetry] = {}
        deadline = start + self.max_seconds + 5.0
        pending_kills: List[Tuple[float, Tuple[str, ...]]] = sorted(
            [(start + delay, tuple(names)) for delay, names in kill_schedule]
            + ([(start + kill_after, tuple(kill))] if kill else []),
            key=lambda entry: entry[0],
        )
        pending_churn: List[Tuple[float, str, str]] = sorted(
            (start + delay, name, action) for delay, name, action in churn_schedule
        )
        churn_down: Dict[str, float] = {}
        rejoined: List[str] = []
        unavailable_time = 0.0
        respawns: Dict[str, int] = {}

        def churn_leave(name: str) -> None:
            nonlocal unavailable_time
            process = processes.get(name)
            if process is None or not process.is_alive() or name in churn_down:
                return
            if churn_mode == "suspend":
                try:
                    os.kill(process.pid, signal.SIGSTOP)
                except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
                    return
                router.paused.add(name)
            else:
                process.terminate()
                router.remove_worker(name)
                # Only the post-rejoin incarnation's outcome may count.
                result.outcomes.pop(name, None)
            churn_down[name] = time.monotonic()
            logger.info("churn: %s left (%s)", name, churn_mode)
            if tracer is not None:
                tracer.event(
                    "churn_leave", process="driver", category="churn",
                    args={"worker": name, "mode": churn_mode},
                )

        def churn_return(name: str) -> None:
            nonlocal unavailable_time
            if name not in churn_down:
                return
            process = processes.get(name)
            if churn_mode == "suspend":
                if process is None or not process.is_alive():
                    churn_down.pop(name)
                    return
                router.paused.discard(name)
                try:
                    os.kill(process.pid, signal.SIGCONT)
                except (ProcessLookupError, OSError):  # pragma: no cover - raced exit
                    churn_down.pop(name)
                    return
            else:
                if process is not None:
                    process.join(timeout=2.0)
                index = self.names.index(name)
                respawns[name] = respawns.get(name, 0) + 1
                endpoint = router.add_worker(name)
                config = self._worker_config(
                    index, name, has_root=False,
                    seed=self.seed + index + 1009 * respawns[name],
                    telemetry_on=telemetry_on,
                )
                fresh = ctx.Process(target=worker_main, args=(config, endpoint), daemon=True)
                processes[name] = fresh
                fresh.start()
            unavailable_time += time.monotonic() - churn_down.pop(name)
            rejoined.append(name)
            logger.info("churn: %s returned (%s)", name, churn_mode)
            if tracer is not None:
                tracer.event(
                    "churn_return", process="driver", category="churn",
                    args={"worker": name, "mode": churn_mode},
                )

        try:
            while time.monotonic() < deadline:
                while pending_kills and time.monotonic() >= pending_kills[0][0]:
                    _, due = pending_kills.pop(0)
                    for name in due:
                        process = processes.get(name)
                        if process is not None and process.is_alive():
                            process.terminate()
                            if name not in killed:
                                killed.append(name)
                                logger.info("killed worker %s (fault injection)", name)
                                if tracer is not None:
                                    tracer.event(
                                        "kill",
                                        process="driver",
                                        category="driver",
                                        args={"worker": name},
                                    )
                while pending_churn and time.monotonic() >= pending_churn[0][0]:
                    _, name, action = pending_churn.pop(0)
                    if action == "leave":
                        churn_leave(name)
                    elif action == "return":
                        churn_return(name)
                    else:
                        raise ValueError(f"unknown churn action {action!r}")
                while driver_end.poll(0.05):
                    try:
                        envelope = recv_envelope(driver_end)
                    except (EOFError, OSError):
                        break
                    except WireFormatError:
                        continue
                    if isinstance(envelope.payload, WorkerOutcome):
                        result.outcomes[envelope.payload.name] = envelope.payload
                    elif isinstance(envelope.payload, WorkerTelemetry):
                        worker_telemetry[envelope.payload.name] = envelope.payload
                if pending_churn:
                    # A scheduled leave/return is still due; completion can
                    # only be judged once the churn process has played out.
                    continue
                expected = {
                    n for n in self.names if n not in killed and n not in churn_down
                }
                if expected.issubset(result.outcomes.keys()):
                    break
                if all(not p.is_alive() for p in processes.values()):
                    break
        finally:
            # Completion time excludes transport/process teardown below.
            result.wall_time = time.monotonic() - start
            if churn_mode == "suspend":
                # A SIGSTOPped process ignores SIGTERM until continued.
                for name in list(churn_down):
                    process = processes.get(name)
                    if process is not None and process.is_alive():
                        try:
                            os.kill(process.pid, signal.SIGCONT)
                        except (ProcessLookupError, OSError):  # pragma: no cover
                            pass
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join(timeout=2.0)
            try:
                driver_end.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            router.stop()

        result.killed = killed
        result.rejoined = rejoined
        result.churned_out = sorted(churn_down)
        for name in result.churned_out:
            # A worker that left and never came back is not a survivor; any
            # outcome it managed to flush before leaving must not count.
            result.outcomes.pop(name, None)
        result.unavailable_time = unavailable_time + sum(
            max(0.0, result.wall_time - (down_at - start)) for down_at in churn_down.values()
        )
        result.messages_forwarded = router.forwarded
        result.messages_dropped = router.dropped
        result.bytes_forwarded = router.bytes_forwarded
        result.bytes_by_kind = dict(router.kind_bytes)
        if telemetry_on:
            result.telemetry = self._merge_telemetry(
                result, router, tracer, worker_telemetry, start_wall
            )
        logger.info(
            "cluster finished: wall=%.3fs outcomes=%d killed=%d forwarded=%d",
            result.wall_time,
            len(result.outcomes),
            len(result.killed),
            result.messages_forwarded,
        )
        return result

    def _merge_telemetry(
        self,
        result: LocalClusterResult,
        router,
        tracer: Optional[Tracer],
        worker_telemetry: Dict[str, WorkerTelemetry],
        start_wall: float,
    ) -> Telemetry:
        """Merge driver, router and worker telemetry into one view.

        Worker records arrive as JSON payloads with absolute wall
        timestamps; the merged tracer rebases everything on the cluster's
        start time so the exported trace begins near zero.
        """
        decoded = {}
        for name, frame in worker_telemetry.items():
            try:
                decoded[name] = frame.decoded()
            except ValueError:  # pragma: no cover - defensive
                logger.warning("discarding corrupt telemetry frame from %s", name)
        metrics = MetricsRegistry()
        for payload in decoded.values():
            snapshot = payload.get("metrics")
            if snapshot:
                metrics.merge_snapshot(snapshot)
        ingest_router(metrics, router)
        metrics.counter("cluster_workers_killed").inc(len(result.killed))
        merged = tracer if tracer is not None else Tracer(process="driver", clock=time.time)
        merged.span(
            "run",
            start_wall,
            result.wall_time,
            process="driver",
            category="driver",
            args={"workers": self.n_workers, "transport": router.transport},
        )
        for payload in decoded.values():
            merged.merge_records(payload.get("records", []))
        merged.time_origin = start_wall
        cfg = self.telemetry
        return Telemetry(
            tracer=merged if (cfg is None or cfg.trace) else None,
            metrics=metrics if (cfg is None or cfg.metrics) else None,
            meta={
                "backend": "realexec",
                "transport": router.transport,
                "clock": "wall",
                "workers": self.n_workers,
            },
        )


def run_local_cluster(
    tree: BasicTree,
    n_workers: int,
    *,
    kill: Sequence[str] = (),
    kill_after: float = 0.5,
    seed: int = 0,
    node_sleep: float = 0.0,
    max_seconds: float = 30.0,
    prune: bool = True,
    transport: str = "pipe",
) -> LocalClusterResult:
    """One-call helper: build a :class:`LocalCluster` and run it.

    Superseded by the unified Scenario API (``repro.scenario``, backend
    ``"realexec"``); kept as a thin shim for one release.
    """
    cluster = LocalCluster(
        tree,
        n_workers,
        seed=seed,
        node_sleep=node_sleep,
        max_seconds=max_seconds,
        prune=prune,
        transport=transport,
    )
    return cluster.run(kill=kill, kill_after=kill_after)
