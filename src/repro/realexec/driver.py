"""Driver for small real (multiprocessing) runs of the algorithm.

:class:`LocalCluster` spawns one OS process per worker, wires them through a
:class:`~repro.realexec.transport.PipeRouter`, optionally kills a subset of
them mid-run (real fault injection), collects each survivor's
:class:`~repro.realexec.node.WorkerOutcome` and checks that the surviving
workers agree on the optimum.  It is intentionally small-scale — the paper's
performance evaluation belongs to the simulator — but it closes the loop on
"the same algorithm objects run outside the simulator".
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bnb.basic_tree import BasicTree
from ..wire import WireFormatError
from .node import RealWorkerConfig, WorkerOutcome, worker_main
from .transport import create_router, recv_envelope, resolve_connection, validate_transport

__all__ = ["LocalClusterResult", "LocalCluster", "run_local_cluster"]


@dataclass
class LocalClusterResult:
    """Result of one real multiprocessing run."""

    n_workers: int
    outcomes: Dict[str, WorkerOutcome] = field(default_factory=dict)
    killed: List[str] = field(default_factory=list)
    wall_time: float = 0.0
    reference_optimum: Optional[float] = None
    #: Transport the cluster ran on (``pipe`` or ``uds``).
    transport: str = "pipe"
    #: Router traffic counters (real encoded bytes, not the analytic model).
    messages_forwarded: int = 0
    messages_dropped: int = 0
    bytes_forwarded: int = 0
    #: Forwarded bytes per payload kind (frame-tag classification).
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def surviving_terminated(self) -> bool:
        """True when every surviving worker detected termination."""
        survivors = [o for name, o in self.outcomes.items() if name not in self.killed]
        return bool(survivors) and all(o.terminated for o in survivors)

    @property
    def best_value(self) -> Optional[float]:
        """Best value reported by any surviving worker."""
        values = [
            o.best_value
            for name, o in self.outcomes.items()
            if name not in self.killed and o.best_value is not None
        ]
        if not values:
            return None
        return min(values) if self._minimize else max(values)

    # Set by the driver so best_value knows the optimisation sense.
    _minimize: bool = True

    @property
    def solved_correctly(self) -> Optional[bool]:
        """True when the surviving workers found the reference optimum."""
        if self.reference_optimum is None or self.best_value is None:
            return None
        return abs(self.best_value - self.reference_optimum) <= 1e-9 * max(
            1.0, abs(self.reference_optimum)
        )


class LocalCluster:
    """Spawns and supervises a small cluster of real worker processes."""

    def __init__(
        self,
        tree: BasicTree,
        n_workers: int,
        *,
        seed: int = 0,
        node_sleep: float = 0.0,
        max_seconds: float = 30.0,
        prune: bool = True,
        report_threshold: int = 5,
        report_fanout: int = 2,
        recovery_failed_threshold: int = 3,
        wire_generations: Optional[Sequence[int]] = None,
        transport: str = "pipe",
    ) -> None:
        """``wire_generations`` optionally assigns a wire-format generation
        per worker index (defaults to the current generation for all) — a
        mixed list models a rolling upgrade where generation-1 and
        generation-2 binaries coexist in one cluster.  ``transport`` selects
        how the workers are wired: ``"pipe"`` (multiprocessing pipes) or
        ``"uds"`` (Unix-domain sockets); the protocol bytes are identical."""
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        transport = validate_transport(transport)
        self.tree = tree
        self.n_workers = n_workers
        self.seed = seed
        self.node_sleep = node_sleep
        self.max_seconds = max_seconds
        self.prune = prune
        self.report_threshold = report_threshold
        self.report_fanout = report_fanout
        self.recovery_failed_threshold = recovery_failed_threshold
        self.transport = transport
        if wire_generations is not None:
            if len(wire_generations) != n_workers:
                raise ValueError("wire_generations must name one generation per worker")
            from ..wire import FRAME_VERSION, FRAME_VERSION_V1

            for generation in wire_generations:
                if not (FRAME_VERSION_V1 <= generation <= FRAME_VERSION):
                    raise ValueError(
                        f"unknown wire-format generation {generation} "
                        f"(known: {FRAME_VERSION_V1}..{FRAME_VERSION})"
                    )
        self.wire_generations = list(wire_generations) if wire_generations is not None else None
        self.names = [f"rworker-{i:02d}" for i in range(n_workers)]

    def run(
        self,
        *,
        kill: Sequence[str] = (),
        kill_after: float = 0.5,
        kill_schedule: Sequence[Tuple[float, Sequence[str]]] = (),
    ) -> LocalClusterResult:
        """Run the cluster, optionally killing workers mid-run.

        ``kill``/``kill_after`` terminate one group of workers after one
        delay; ``kill_schedule`` generalises that to several
        ``(delay_seconds, worker_names)`` groups, each fired at its own
        wall-clock offset (the scenario backend maps one ``FailureSpec``
        per group).  Both forms may be combined.
        """
        ctx = mp.get_context()
        router = create_router(self.transport)
        driver_handle = router.add_worker("__driver__")

        tree_data = self.tree.to_dict()
        processes: Dict[str, mp.Process] = {}
        for index, name in enumerate(self.names):
            endpoint = router.add_worker(name)
            config = RealWorkerConfig(
                name=name,
                members=tuple(self.names),
                tree_data=tree_data,
                has_root=(index == 0),
                seed=self.seed + index,
                node_sleep=self.node_sleep,
                max_seconds=self.max_seconds,
                prune=self.prune,
                report_threshold=self.report_threshold,
                report_fanout=self.report_fanout,
                recovery_failed_threshold=self.recovery_failed_threshold,
                wire_generation=(
                    self.wire_generations[index] if self.wire_generations is not None else RealWorkerConfig.wire_generation
                ),
            )
            process = ctx.Process(target=worker_main, args=(config, endpoint), daemon=True)
            processes[name] = process

        # The router must be listening before the driver (and, for socket
        # transports, the workers) can connect.
        router.start()
        driver_end = resolve_connection(driver_handle)
        start = time.monotonic()
        for process in processes.values():
            process.start()

        result = LocalClusterResult(
            n_workers=self.n_workers,
            reference_optimum=self.tree.optimal_value(),
            transport=router.transport,
        )
        result._minimize = self.tree.minimize

        killed: List[str] = []
        deadline = start + self.max_seconds + 5.0
        pending_kills: List[Tuple[float, Tuple[str, ...]]] = sorted(
            [(start + delay, tuple(names)) for delay, names in kill_schedule]
            + ([(start + kill_after, tuple(kill))] if kill else []),
            key=lambda entry: entry[0],
        )

        try:
            while time.monotonic() < deadline:
                while pending_kills and time.monotonic() >= pending_kills[0][0]:
                    _, due = pending_kills.pop(0)
                    for name in due:
                        process = processes.get(name)
                        if process is not None and process.is_alive():
                            process.terminate()
                            if name not in killed:
                                killed.append(name)
                while driver_end.poll(0.05):
                    try:
                        envelope = recv_envelope(driver_end)
                    except (EOFError, OSError):
                        break
                    except WireFormatError:
                        continue
                    if isinstance(envelope.payload, WorkerOutcome):
                        result.outcomes[envelope.payload.name] = envelope.payload
                expected = {n for n in self.names if n not in killed}
                if expected.issubset(result.outcomes.keys()):
                    break
                if all(not p.is_alive() for p in processes.values()):
                    break
        finally:
            # Completion time excludes transport/process teardown below.
            result.wall_time = time.monotonic() - start
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join(timeout=2.0)
            try:
                driver_end.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
            router.stop()

        result.killed = killed
        result.messages_forwarded = router.forwarded
        result.messages_dropped = router.dropped
        result.bytes_forwarded = router.bytes_forwarded
        result.bytes_by_kind = dict(router.kind_bytes)
        return result


def run_local_cluster(
    tree: BasicTree,
    n_workers: int,
    *,
    kill: Sequence[str] = (),
    kill_after: float = 0.5,
    seed: int = 0,
    node_sleep: float = 0.0,
    max_seconds: float = 30.0,
    prune: bool = True,
    transport: str = "pipe",
) -> LocalClusterResult:
    """One-call helper: build a :class:`LocalCluster` and run it.

    Superseded by the unified Scenario API (``repro.scenario``, backend
    ``"realexec"``); kept as a thin shim for one release.
    """
    cluster = LocalCluster(
        tree,
        n_workers,
        seed=seed,
        node_sleep=node_sleep,
        max_seconds=max_seconds,
        prune=prune,
        transport=transport,
    )
    return cluster.run(kill=kill, kill_after=kill_after)
