"""Sharded simulation engine: one run partitioned across several engines.

Large runs (1k–10k workers) stress a single event heap and a single Python
process.  This module partitions the workers of one distributed B&B run
across ``shards`` independent :class:`~repro.simulation.engine.SimulationEngine`
instances and keeps them causally consistent with a classic *conservative*
synchronisation scheme:

* every cross-shard message takes at least the latency model's ``base``
  delay (jitter only ever lengthens it), so ``base`` is a safe lookahead
  ``L``;
* each epoch computes the global minimum next-event time ``m`` and runs every
  shard up to the barrier ``T = m + L``; any message sent during the epoch is
  delivered at or after ``T``, i.e. never into a shard's past;
* cross-shard messages are exchanged at the barrier and injected in a single
  deterministic order (sorted by delivery time, send time, sender, receiver,
  shard and sequence number), so a sharded run is exactly reproducible.

Two execution modes share that epoch protocol:

* **in-process** (default on single-core hosts): the shards are plain objects
  stepped round-robin by the coordinating loop — no serialisation, no
  processes, but each shard keeps its own heap, network and completion-trie
  arena;
* **processes**: each shard runs in a forked OS process; cross-shard payloads
  are serialised with the :mod:`repro.wire` codecs and routed through the
  parent at each barrier, and per-shard results are merged at the end.

Determinism across modes and shard counts
-----------------------------------------
Every shard builds its own :class:`~repro.simulation.rng.RngRegistry` from
the run seed, so a worker's named random stream is identical no matter which
shard (or how many shards) it lands on.  With the paper-default network
(lossless, jitter-free) the network streams consume no randomness at all and
a sharded run solves the same problem with the same optimum and the same
termination outcome as the single-engine run; loss and jitter draw from
per-shard network streams and therefore sample different (but equally valid)
executions.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..bnb.basic_tree import BasicTree
from ..bnb.tree_problem import TreeReplayProblem
from ..core.arena import TrieArena
from ..obs import MetricsRegistry, Telemetry, TelemetryConfig, Tracer
from ..obs.ingest import ingest_run_result
from .engine import SimulationEngine
from .entity import QueuedMessage
from .failures import CrashEvent, FailureInjector
from .metrics import MetricsCollector
from .network import Network, TrafficStats
from .rng import RngRegistry

__all__ = [
    "ShardNetwork",
    "ShardedBnBSimulation",
    "run_sharded_tree_simulation",
    "shard_members",
]

#: A message crossing shard boundaries, as staged in a shard's outbox:
#: ``(delivered_at, sent_at, src, dst, payload, size_bytes)`` where
#: ``payload`` is the message object in-process and ``repro.wire`` bytes in
#: process mode.
RemoteMessage = Tuple[float, float, str, str, Any, int]


def shard_members(names: Sequence[str], shards: int) -> List[List[str]]:
    """Partition worker names round-robin across ``shards`` shards.

    Round-robin keeps the shards balanced for any worker count and pins
    worker 0 (the one seeded with the root subproblem) to shard 0.
    """
    return [list(names[i::shards]) for i in range(shards)]


class ShardNetwork(Network):
    """A :class:`Network` that stages messages to non-local workers.

    Local destinations behave exactly as in the base class.  A destination
    that belongs to another shard gets the same sender-side treatment
    (traffic accounting, kind classification, partitions, loss, latency
    sampling) but instead of scheduling a local delivery the message is
    appended to :attr:`outbox` for the epoch coordinator to route.  Liveness
    of a remote destination is checked on the *receiving* shard at delivery
    time — matching the paper's model, where a sender cannot observe a remote
    crash.
    """

    def __init__(self, *args: Any, members: Iterable[str] = (), **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: Every worker name in the whole run (local and remote).
        self.members: Set[str] = set(members)
        #: Messages bound for other shards, drained at each epoch barrier.
        self.outbox: List[RemoteMessage] = []

    def send(
        self, src: str, dst: str, payload: Any, *, size_bytes: Optional[int] = None
    ) -> bool:
        if dst in self._entities or dst not in self.members:
            return super().send(src, dst, payload, size_bytes=size_bytes)

        # Remote destination: replicate the base class's sender-side
        # bookkeeping, then stage the message for the coordinator.
        size = size_bytes if size_bytes is not None else self.payload_size(payload)
        now = self.engine.now
        sender_stats = self.per_entity.setdefault(src, TrafficStats())
        sender_stats.messages_sent += 1
        sender_stats.bytes_sent += size
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if self.classify is not None:
            kind = self.classify(payload)
            self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + size
            self.kind_messages[kind] = self.kind_messages.get(kind, 0) + 1
        for partition in self.partitions:
            if partition.blocks(now, src, dst):
                sender_stats.messages_blocked += 1
                self.stats.messages_blocked += 1
                return False
        if self.loss_probability > 0 and self.rng.random() < self.loss_probability:
            sender_stats.messages_lost += 1
            self.stats.messages_lost += 1
            return False
        delay = self.latency.latency(size, self.rng)
        self.outbox.append((now + delay, now, src, dst, payload, size))
        return True

    def drain_outbox(self) -> List[RemoteMessage]:
        """Remove and return every staged cross-shard message."""
        drained = self.outbox
        self.outbox = []
        return drained

    def inject_remote(
        self, delivered_at: float, sent_at: float, src: str, dst: str, payload: Any, size: int
    ) -> None:
        """Schedule the local delivery of a message from another shard."""
        message = QueuedMessage(
            sender=src,
            payload=payload,
            sent_at=sent_at,
            delivered_at=delivered_at,
            size_bytes=size,
        )

        def _deliver() -> None:
            target = self._entities.get(dst)
            if target is None or not target.alive:
                self.stats.messages_to_dead += 1
                return
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += size
            target.enqueue(message)

        self.engine.schedule_at(delivered_at, _deliver, label=f"deliver:{src}->{dst}")


def _merge_traffic(into: TrafficStats, other: TrafficStats) -> None:
    into.messages_sent += other.messages_sent
    into.messages_delivered += other.messages_delivered
    into.messages_lost += other.messages_lost
    into.messages_blocked += other.messages_blocked
    into.messages_to_dead += other.messages_to_dead
    into.bytes_sent += other.bytes_sent
    into.bytes_delivered += other.bytes_delivered


def _merge_kind_counts(into: Dict[str, int], other: Dict[str, int]) -> None:
    for kind, value in other.items():
        into[kind] = into.get(kind, 0) + value


def _merge_metrics(into: MetricsCollector, other: MetricsCollector) -> None:
    # Worker names are disjoint across shards, so merging is a dict union.
    into.time.update(other.time)
    into.storage.update(other.storage)
    into.counters.update(other.counters)


class _ShardWorkerResult:
    """Minimal stand-in for a :class:`WorkerEntity` after a process-mode run.

    Carries exactly what result assembly reads: the finalized stats and the
    set of expanded codes (for the redundant-work computation).
    """

    __slots__ = ("name", "stats", "_expanded_codes")

    def __init__(self, name: str, stats: Any, expanded_codes: Set[Any]) -> None:
        self.name = name
        self.stats = stats
        self._expanded_codes = expanded_codes

    def finalize_stats(self) -> Any:
        return self.stats


class _Shard:
    """One in-process shard: engine + shard network + local workers."""

    def __init__(
        self,
        index: int,
        local_names: Sequence[str],
        all_names: Sequence[str],
        problem: Any,
        config: Any,
        network_config: Any,
        failures: Sequence[CrashEvent],
        seed: int,
        expected_node_cost: float,
        use_arena: bool,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        from ..distributed.messages import MessageKinds
        from ..distributed.worker import WorkerEntity

        self.index = index
        # Every shard derives its streams from the same registry, so a
        # worker's named stream does not depend on shard placement.
        rng = RngRegistry(seed)
        self.engine = SimulationEngine()
        self.net = ShardNetwork(
            self.engine,
            latency=network_config.latency,
            loss_probability=network_config.loss_probability,
            partitions=network_config.partitions,
            rng=rng.stream(f"network:shard:{index}"),
            members=all_names,
        )
        self.net.classify = MessageKinds.of
        # In-process shards share the coordinator's tracer (single-threaded
        # round-robin stepping, so plain list appends are safe); forked shard
        # processes run without one.
        self.net.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsCollector()
        arena = TrieArena() if use_arena else None
        root_sub = problem.root_subproblem()
        root_owner = all_names[0]
        self.workers = []
        for name in local_names:
            worker = WorkerEntity(
                name,
                problem,
                config,
                list(all_names),
                rng=rng.stream(f"worker:{name}"),
                metrics=self.metrics,
                trace=None,
                initial_work=[root_sub] if name == root_owner else [],
                expected_node_cost=expected_node_cost,
                arena=arena,
                tracer=tracer,
            )
            self.net.register(worker)
            self.workers.append(worker)
        local = set(local_names)
        self.injector = FailureInjector([f for f in failures if f.entity in local])
        self.injector.install(self.engine, self.net)

    def start(self) -> None:
        for worker in self.workers:
            worker.on_start()

    def local_done(self) -> bool:
        return all((not w.alive) or w.terminated for w in self.workers)


class ShardedBnBSimulation:
    """Coordinates one distributed B&B run split across simulation shards."""

    def __init__(
        self,
        tree: BasicTree,
        n_workers: int,
        *,
        shards: int,
        processes: Optional[bool] = None,
        config: Any = None,
        network: Any = None,
        failures: Iterable[CrashEvent] = (),
        seed: int = 0,
        granularity: float = 1.0,
        prune: bool = True,
        max_sim_time: Optional[float] = None,
        max_events: Optional[int] = None,
        uniprocessor_time: Optional[float] = None,
        use_arena: bool = True,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        from ..distributed.config import AlgorithmConfig
        from ..distributed.runner import NetworkConfig, worker_names

        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if shards > n_workers:
            raise ValueError(
                f"cannot split {n_workers} worker(s) across {shards} shards: "
                "each shard needs at least one worker (reduce --shards or raise workers)"
            )
        self.tree = tree
        self.n_workers = n_workers
        self.shards = shards
        self.config = config if config is not None else AlgorithmConfig.paper_default()
        self.network_config = network if network is not None else NetworkConfig.paper_default()
        if shards > 1 and self.network_config.latency.base <= 0.0:
            raise ValueError(
                "sharded runs need a positive base network latency: it is the "
                "conservative lookahead that keeps cross-shard delivery causal"
            )
        self.failures = list(failures)
        self.seed = seed
        self.granularity = granularity
        self.prune = prune
        self.max_sim_time = max_sim_time
        self.max_events = max_events
        self.uniprocessor_time = uniprocessor_time
        self.use_arena = use_arena
        self.telemetry = telemetry
        if processes is None:
            # Processes only pay off with real parallel hardware; the forked
            # children otherwise just add serialisation overhead.
            cpus = os.cpu_count() or 1
            processes = cpus > 1 and shards > 1
        self.processes = bool(processes)
        self.names = worker_names(n_workers)
        self.partition = shard_members(self.names, shards)

    # ------------------------------------------------------------------ #
    # Epoch coordination (mode-independent pieces)
    # ------------------------------------------------------------------ #
    @property
    def lookahead(self) -> float:
        """The conservative lookahead: the minimum cross-shard latency."""
        return self.network_config.latency.base

    def run(self):
        """Run the sharded simulation and return a merged ``RunResult``."""
        problem = TreeReplayProblem(self.tree, granularity=self.granularity, prune=self.prune)
        if self.processes and self.shards > 1 and self._fork_available():
            return self._run_processes(problem)
        return self._run_inprocess(problem)

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def _make_tracer(self) -> Optional[Tracer]:
        if self.telemetry is not None and self.telemetry.trace:
            return Tracer(process="coordinator")
        return None

    def _finish_telemetry(
        self, result: Any, tracer: Optional[Tracer], end_time: float
    ) -> Optional[Telemetry]:
        """Assemble the merged run's :class:`~repro.obs.Telemetry`."""
        cfg = self.telemetry
        if cfg is None or not cfg.enabled:
            return None
        if cfg.trace and tracer is not None:
            tracer.span(
                "run",
                0.0,
                end_time,
                category="engine",
                args={"workers": self.n_workers, "shards": self.shards},
            )
        else:
            tracer = None
        metrics: Optional[MetricsRegistry] = None
        if cfg.metrics:
            metrics = ingest_run_result(MetricsRegistry(), result)
        return Telemetry(
            tracer=tracer,
            metrics=metrics,
            meta={
                "backend": "simulated",
                "clock": "sim-seconds",
                "shards": self.shards,
            },
        )

    # ------------------------------------------------------------------ #
    # In-process mode
    # ------------------------------------------------------------------ #
    def _run_inprocess(self, problem: TreeReplayProblem):
        from ..distributed.runner import assemble_run_result

        tracer = self._make_tracer()
        metrics = MetricsCollector()
        shards = [
            _Shard(
                i,
                self.partition[i],
                self.names,
                problem,
                self.config,
                self.network_config,
                self.failures,
                self.seed,
                self.tree.mean_node_time() * self.granularity,
                self.use_arena,
                metrics=metrics,
                tracer=tracer,
            )
            for i in range(self.shards)
        ]
        name_to_shard = {
            name: i for i, members in enumerate(self.partition) for name in members
        }
        for shard in shards:
            shard.start()

        lookahead = self.lookahead
        events_total = 0
        epochs = 0
        cross_shard_messages = 0
        while True:
            staged: List[Tuple[float, float, str, str, Any, int, int, int]] = []
            for shard in shards:
                for seq, msg in enumerate(shard.net.drain_outbox()):
                    staged.append(msg[:4] + (shard.index, seq) + msg[4:])
            cross_shard_messages += len(staged)
            # (delivered_at, sent_at, src, dst, shard, seq, payload, size):
            # the first six fields sort deterministically without ever
            # comparing payload objects.
            staged.sort(key=lambda item: item[:6])
            for delivered_at, sent_at, src, dst, _shard, _seq, payload, size in staged:
                shards[name_to_shard[dst]].net.inject_remote(
                    delivered_at, sent_at, src, dst, payload, size
                )

            if all(shard.local_done() for shard in shards):
                break
            times = [t for t in (s.engine.peek_time() for s in shards) if t is not None]
            if not times:
                break
            horizon = min(times)
            if self.max_sim_time is not None and horizon > self.max_sim_time:
                break
            barrier = horizon + lookahead
            if self.max_sim_time is not None:
                barrier = min(barrier, self.max_sim_time)
            epochs += 1
            if tracer is not None:
                tracer.span(
                    "epoch",
                    horizon,
                    barrier - horizon,
                    category="engine",
                    args={"epoch": epochs, "cross_shard": len(staged)},
                )
            for shard in shards:
                budget = None
                if self.max_events is not None:
                    budget = self.max_events - events_total
                    if budget <= 0:
                        break
                before = shard.engine.events_processed
                shard.engine.run(until=barrier, max_events=budget)
                events_total += shard.engine.events_processed - before
            if self.max_events is not None and events_total >= self.max_events:
                break

        end_time = max(shard.engine.now for shard in shards)
        all_workers = [w for shard in shards for w in shard.workers]
        net_stats = TrafficStats()
        kind_bytes: Dict[str, int] = {}
        peak_heap = 0
        compactions = 0
        for shard in shards:
            _merge_traffic(net_stats, shard.net.stats)
            _merge_kind_counts(kind_bytes, shard.net.kind_bytes)
            peak_heap = max(peak_heap, shard.engine.peak_heap_len)
            compactions += shard.engine.compactions
        result = assemble_run_result(
            all_workers,
            n_workers=self.n_workers,
            end_time=end_time,
            problem=problem,
            reference_optimum=self.tree.optimal_value(),
            uniprocessor_time=self.uniprocessor_time,
            metrics=metrics,
            network_stats=net_stats,
            kind_bytes=kind_bytes,
            trace=None,
            engine_counters={
                "events_processed": events_total,
                "peak_heap_len": peak_heap,
                "compactions": compactions,
                "shards": self.shards,
                "epochs": epochs,
                "cross_shard_messages": cross_shard_messages,
            },
        )
        result.telemetry = self._finish_telemetry(result, tracer, end_time)
        return result

    # ------------------------------------------------------------------ #
    # Process mode
    # ------------------------------------------------------------------ #
    def _run_processes(self, problem: TreeReplayProblem):
        from ..distributed.runner import assemble_run_result

        # Forked shards keep no tracer of their own (their records would need
        # another merge channel); the coordinator still traces the epoch
        # protocol, and the metrics registry is built from the merged result.
        tracer = self._make_tracer()
        ctx = multiprocessing.get_context("fork")
        conns = []
        procs = []
        for i in range(self.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_process_main,
                args=(
                    child_conn,
                    i,
                    self.partition[i],
                    self.names,
                    self.tree,
                    self.granularity,
                    self.prune,
                    self.config,
                    self.network_config,
                    self.failures,
                    self.seed,
                    self.use_arena,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        name_to_shard = {
            name: i for i, members in enumerate(self.partition) for name in members
        }
        try:
            reports = [conn.recv() for conn in conns]
            lookahead = self.lookahead
            events_total = 0
            epochs = 0
            cross_shard_messages = 0
            while True:
                staged = []
                for i, report in enumerate(reports):
                    for seq, msg in enumerate(report["outbox"]):
                        staged.append(msg[:4] + (i, seq) + msg[4:])
                staged.sort(key=lambda item: item[:6])
                cross_shard_messages += len(staged)
                inbound: List[List[Tuple]] = [[] for _ in range(self.shards)]
                for delivered_at, sent_at, src, dst, _shard, _seq, blob, size in staged:
                    inbound[name_to_shard[dst]].append(
                        (delivered_at, sent_at, src, dst, blob, size)
                    )
                events_total = sum(report["events"] for report in reports)

                done = all(report["local_done"] for report in reports)
                # The horizon must cover the messages about to be injected:
                # they may deliver before every shard's next scheduled event,
                # and their follow-up traffic is only safe within their own
                # lookahead window.
                times = [report["peek"] for report in reports if report["peek"] is not None]
                times.extend(item[0] for item in staged)
                out_of_time = False
                if not done and times:
                    horizon = min(times)
                    out_of_time = self.max_sim_time is not None and horizon > self.max_sim_time
                if done or not times or out_of_time or (
                    self.max_events is not None and events_total >= self.max_events
                ):
                    for conn in conns:
                        conn.send(("finish", None, None))
                    break
                barrier = horizon + lookahead
                if self.max_sim_time is not None:
                    barrier = min(barrier, self.max_sim_time)
                epochs += 1
                if tracer is not None:
                    tracer.span(
                        "epoch",
                        horizon,
                        barrier - horizon,
                        category="engine",
                        args={"epoch": epochs, "cross_shard": len(staged)},
                    )
                budget = None
                if self.max_events is not None:
                    budget = self.max_events - events_total
                for i, conn in enumerate(conns):
                    conn.send(("epoch", barrier, inbound[i], budget))
                reports = [conn.recv() for conn in conns]

            results = [conn.recv() for conn in conns]
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive cleanup
                    proc.terminate()

        metrics = MetricsCollector()
        net_stats = TrafficStats()
        kind_bytes: Dict[str, int] = {}
        all_workers: List[_ShardWorkerResult] = []
        end_time = 0.0
        peak_heap = 0
        events_final = 0
        compactions = 0
        for result in results:
            _merge_metrics(metrics, result["metrics"])
            _merge_traffic(net_stats, result["net_stats"])
            _merge_kind_counts(kind_bytes, result["kind_bytes"])
            end_time = max(end_time, result["now"])
            peak_heap = max(peak_heap, result["peak_heap_len"])
            events_final += result["events_processed"]
            compactions += result.get("compactions", 0)
            for name, stats, expanded in result["workers"]:
                all_workers.append(_ShardWorkerResult(name, stats, expanded))
        merged = assemble_run_result(
            all_workers,
            n_workers=self.n_workers,
            end_time=end_time,
            problem=problem,
            reference_optimum=self.tree.optimal_value(),
            uniprocessor_time=self.uniprocessor_time,
            metrics=metrics,
            network_stats=net_stats,
            kind_bytes=kind_bytes,
            trace=None,
            engine_counters={
                "events_processed": events_final,
                "peak_heap_len": peak_heap,
                "compactions": compactions,
                "shards": self.shards,
                "epochs": epochs,
                "cross_shard_messages": cross_shard_messages,
            },
        )
        merged.telemetry = self._finish_telemetry(merged, tracer, end_time)
        return merged


def _shard_process_main(
    conn,
    index: int,
    local_names: Sequence[str],
    all_names: Sequence[str],
    tree: BasicTree,
    granularity: float,
    prune: bool,
    config: Any,
    network_config: Any,
    failures: Sequence[CrashEvent],
    seed: int,
    use_arena: bool,
) -> None:
    """Entry point of one forked shard process.

    The child steps its shard between epoch barriers dictated by the parent;
    cross-shard payloads travel as :mod:`repro.wire` frames, everything else
    (commands, final statistics) as pickles over the pipe.
    """
    from .. import wire

    problem = TreeReplayProblem(tree, granularity=granularity, prune=prune)
    shard = _Shard(
        index,
        local_names,
        all_names,
        problem,
        config,
        network_config,
        failures,
        seed,
        tree.mean_node_time() * granularity,
        use_arena,
    )
    shard.start()

    def report() -> None:
        outbox = [
            msg[:4] + (wire.encode(msg[4]), msg[5]) for msg in shard.net.drain_outbox()
        ]
        conn.send(
            {
                "peek": shard.engine.peek_time(),
                "outbox": outbox,
                "local_done": shard.local_done(),
                "events": shard.engine.events_processed,
            }
        )

    report()
    while True:
        message = conn.recv()
        command, barrier, inbound = message[0], message[1], message[2]
        if command == "finish":
            break
        budget = message[3] if len(message) > 3 else None
        for delivered_at, sent_at, src, dst, blob, size in inbound:
            shard.net.inject_remote(
                delivered_at, sent_at, src, dst, wire.decode(blob), size
            )
        if budget is None or budget > 0:
            shard.engine.run(until=barrier, max_events=budget)
        report()

    workers = [
        (w.name, w.finalize_stats(), w._expanded_codes) for w in shard.workers
    ]
    conn.send(
        {
            "workers": workers,
            "metrics": shard.metrics,
            "net_stats": shard.net.stats,
            "kind_bytes": shard.net.kind_bytes,
            "now": shard.engine.now,
            "peak_heap_len": shard.engine.peak_heap_len,
            "events_processed": shard.engine.events_processed,
            "compactions": shard.engine.compactions,
        }
    )
    conn.close()


def run_sharded_tree_simulation(
    tree: BasicTree,
    n_workers: int,
    *,
    shards: int,
    processes: Optional[bool] = None,
    config: Any = None,
    network: Any = None,
    failures: Iterable[CrashEvent] = (),
    seed: int = 0,
    granularity: float = 1.0,
    prune: bool = True,
    enable_trace: bool = False,
    max_sim_time: Optional[float] = None,
    max_events: Optional[int] = None,
    uniprocessor_time: Optional[float] = None,
    use_arena: bool = True,
    telemetry: Optional[TelemetryConfig] = None,
):
    """Run one tree workload on the sharded engine and merge the results.

    The counterpart of
    :func:`repro.distributed.runner.run_tree_simulation` for ``shards > 1``
    (that function delegates here).  Tracing is a single-engine feature: the
    timeline would interleave incomparably across shards, so ``enable_trace``
    is rejected.
    """
    if enable_trace:
        raise ValueError("tracing is not supported with shards > 1")
    sim = ShardedBnBSimulation(
        tree,
        n_workers,
        shards=shards,
        processes=processes,
        config=config,
        network=network,
        failures=failures,
        seed=seed,
        granularity=granularity,
        prune=prune,
        max_sim_time=max_sim_time,
        max_events=max_events,
        uniprocessor_time=uniprocessor_time,
        use_arena=use_arena,
        telemetry=telemetry,
    )
    return sim.run()
