"""Seeded random-number streams for reproducible simulations.

Every stochastic component of a simulated run (network loss, gossip target
selection, work-stealing victim choice, per-worker recovery choices…) draws
from its own named stream, derived deterministically from the run's master
seed.  This keeps runs bit-for-bit reproducible while ensuring that changing
one component's consumption of randomness does not perturb the others — a
standard practice for simulation experiments with paired comparisons
(e.g. the same workload with and without failures).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, deterministically seeded random streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with the given name."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def spawn(self, suffix: str) -> "RngRegistry":
        """Derive a child registry (used by sub-experiments in sweeps)."""
        digest = hashlib.sha256(f"{self.master_seed}:registry:{suffix}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return f"RngRegistry(master_seed={self.master_seed}, streams={sorted(self._streams)})"
