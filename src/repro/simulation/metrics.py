"""Per-process time and storage accounting.

The paper's evaluation decomposes each processor's wall-clock into five
buckets (Figure 3): branch-and-bound time, communication time, list
contraction time, load-balancing time and idle time; and additionally reports
storage space (total and redundant) and communication volume per processor per
hour (Table 1).  :class:`TimeAccount` and :class:`MetricsCollector` implement
exactly this bookkeeping for the simulated workers, so the benchmark harness
can print the same rows the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TimeAccount", "StorageAccount", "MetricsCollector", "TIME_CATEGORIES"]

#: The five execution-time buckets of Figure 3.
TIME_CATEGORIES = ("bb", "communication", "contraction", "load_balancing", "idle")


@dataclass
class TimeAccount:
    """Time spent by one process, split into the paper's five categories."""

    bb: float = 0.0
    communication: float = 0.0
    contraction: float = 0.0
    load_balancing: float = 0.0
    idle: float = 0.0

    def add(self, category: str, amount: float) -> None:
        """Charge ``amount`` seconds to ``category``."""
        if amount < 0:
            raise ValueError("cannot charge negative time")
        if category not in TIME_CATEGORIES:
            raise ValueError(f"unknown time category: {category!r}")
        setattr(self, category, getattr(self, category) + amount)

    def total(self) -> float:
        """Total accounted time."""
        return self.bb + self.communication + self.contraction + self.load_balancing + self.idle

    def busy(self) -> float:
        """Accounted time excluding idle."""
        return self.total() - self.idle

    def fractions(self) -> Dict[str, float]:
        """Each category as a fraction of the total (0 when nothing accounted)."""
        total = self.total()
        if total <= 0:
            return {category: 0.0 for category in TIME_CATEGORIES}
        return {category: getattr(self, category) / total for category in TIME_CATEGORIES}

    def as_dict(self) -> Dict[str, float]:
        """Plain-dictionary view."""
        return {category: getattr(self, category) for category in TIME_CATEGORIES}


@dataclass
class StorageAccount:
    """Storage used by one process for completion information.

    ``current_bytes`` tracks the live footprint; ``peak_bytes`` its high-water
    mark; ``redundant_bytes`` estimates the portion of received completion
    information that was already known (the paper's "Redundant" storage
    column measures replicated information).
    """

    current_bytes: int = 0
    peak_bytes: int = 0
    redundant_bytes: int = 0

    def update(self, current: int, redundant: Optional[int] = None) -> None:
        """Record a new live footprint.

        ``redundant`` is the replicated (learned-from-others) portion of the
        footprint; the value captured at the peak is what the Table 1
        "Redundant" column reports.
        """
        self.current_bytes = current
        if current > self.peak_bytes:
            self.peak_bytes = current
            if redundant is not None:
                self.redundant_bytes = max(0, redundant)

    def add_redundant(self, amount: int) -> None:
        """Record receipt of already-known completion information."""
        self.redundant_bytes += max(0, amount)


class MetricsCollector:
    """Collects per-process accounts and produces system-wide aggregates."""

    def __init__(self) -> None:
        self.time: Dict[str, TimeAccount] = {}
        self.storage: Dict[str, StorageAccount] = {}
        self.counters: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Registration and charging
    # ------------------------------------------------------------------ #
    def register(self, name: str) -> None:
        """Create accounts for a process (idempotent)."""
        self.time.setdefault(name, TimeAccount())
        self.storage.setdefault(name, StorageAccount())
        self.counters.setdefault(name, {})

    def charge(self, name: str, category: str, amount: float) -> None:
        """Charge time to a process's account."""
        account = self.time.get(name)
        if account is None:
            self.register(name)
            account = self.time[name]
        account.add(category, amount)

    def count(self, name: str, counter: str, increment: int = 1) -> None:
        """Increment a named per-process counter."""
        counters = self.counters.get(name)
        if counters is None:
            self.register(name)
            counters = self.counters[name]
        counters[counter] = counters.get(counter, 0) + increment

    def update_storage(self, name: str, current_bytes: int, redundant_bytes: Optional[int] = None) -> None:
        """Record a process's live completion-state footprint."""
        self.register(name)
        self.storage[name].update(current_bytes, redundant_bytes)

    def add_redundant_storage(self, name: str, amount: int) -> None:
        """Record redundant (already-known) completion information received."""
        self.register(name)
        self.storage[name].add_redundant(amount)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def total_time(self, category: str) -> float:
        """Sum of one category across all processes."""
        return sum(getattr(account, category) for account in self.time.values())

    def system_fractions(self) -> Dict[str, float]:
        """System-wide fraction of each category (the Figure 3 stacking)."""
        total = sum(account.total() for account in self.time.values())
        if total <= 0:
            return {category: 0.0 for category in TIME_CATEGORIES}
        return {category: self.total_time(category) / total for category in TIME_CATEGORIES}

    def total_storage_bytes(self) -> int:
        """Peak completion-state storage summed over all processes (Table 1 'Total')."""
        return sum(account.peak_bytes for account in self.storage.values())

    def redundant_storage_bytes(self) -> int:
        """Redundant completion information received, summed (Table 1 'Redundant')."""
        return sum(account.redundant_bytes for account in self.storage.values())

    def counter_total(self, counter: str) -> int:
        """Sum of a named counter across processes."""
        return sum(counters.get(counter, 0) for counters in self.counters.values())

    def per_process_table(self) -> List[Dict[str, float]]:
        """One row per process with its time split and storage (for reports)."""
        rows = []
        for name in sorted(self.time):
            row: Dict[str, float] = {"process": name}
            row.update(self.time[name].as_dict())
            row["storage_peak_bytes"] = float(self.storage[name].peak_bytes)
            row["storage_redundant_bytes"] = float(self.storage[name].redundant_bytes)
            rows.append(row)
        return rows
