"""Discrete-event simulation engine.

The paper evaluates its algorithm with Parsec, a C-based discrete-event
simulation language in which "processes are modeled by objects; interactions
among objects are modeled by time stamped message exchanges".  This module is
the Python equivalent: a deterministic event heap with a logical clock,
cancellable events and stop conditions.  Entities (logical processes) live in
:mod:`repro.simulation.entity`; the network latency model in
:mod:`repro.simulation.network` turns message sends into future delivery
events on this engine.

Determinism
-----------
Runs must be exactly reproducible for a given configuration and seed, so the
engine breaks ties between simultaneous events by an insertion sequence
number, never by object identity or hash order.

Performance invariants
----------------------
The heap holds plain ``(time, sequence, record)`` tuples, so every sift
comparison is a C-level tuple compare on a float and an int — no dataclass
``__lt__`` dispatch.  The event record itself is a tiny ``__slots__`` object
carrying the callback and cancellation flag.  :meth:`SimulationEngine.run`
hoists its hot attribute lookups into locals, and automatically compacts the
heap in place when cancelled events exceed half of it (counted in
:attr:`SimulationEngine.compactions`), which bounds memory on long runs with
heavy timer churn without any manual :meth:`drain_cancelled` calls.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["EventHandle", "SimulationEngine", "SimulationError"]

#: Auto-compaction only considers heaps at least this large; below it the
#: rebuild costs more than the garbage it reclaims.
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (scheduling in the past, re-running…)."""


class _EventRecord:
    """Mutable per-event state referenced from the heap tuple."""

    __slots__ = ("time", "callback", "label", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[[], None], label: str) -> None:
        self.time = time
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False


#: A heap entry: comparison never reaches the record because the sequence
#: number is unique.
_HeapEntry = Tuple[float, int, _EventRecord]


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_engine", "_event")

    def __init__(self, engine: "SimulationEngine", event: _EventRecord) -> None:
        self._engine = engine
        self._event = event

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.fired:
                # Track in-heap garbage so the engine can auto-compact.
                self._engine._cancelled_in_heap += 1

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is (was) scheduled."""
        return self._event.time

    @property
    def label(self) -> str:
        """Optional diagnostic label."""
        return self._event.label


class SimulationEngine:
    """A minimal, deterministic discrete-event simulator.

    Typical usage::

        engine = SimulationEngine()
        engine.schedule(1.5, lambda: print("fires at t=1.5"))
        engine.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_HeapEntry] = []
        self._sequence = 0
        self._cancelled_in_heap = 0
        self._running = False
        self._stop_requested = False
        #: Total events executed (not counting cancelled ones).
        self.events_processed = 0
        #: High-water mark of the event heap (including cancelled entries).
        self.peak_heap_len = 0
        #: Number of heap compactions performed (automatic or explicit).
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = _EventRecord(time, callback, label)
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        if len(self._heap) > self.peak_heap_len:
            self.peak_heap_len = len(self._heap)
        return EventHandle(self, event)

    def post(self, delay: float, callback: Callable[[], None], *, label: str = "") -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle is built.

        Behaviour is identical to ``schedule`` except that nothing is
        returned, saving one object allocation per event on paths that never
        cancel (message delivery, step re-arming).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        event = _EventRecord(time, callback, label)
        seq = self._sequence
        self._sequence = seq + 1
        heap = self._heap
        heapq.heappush(heap, (time, seq, event))
        if len(heap) > self.peak_heap_len:
            self.peak_heap_len = len(heap)

    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled event time, or ``None`` for an empty heap.

        Cancelled entries are not skipped — they give a conservative (never
        late) lower bound, which is what the sharded epoch barrier needs.
        """
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the heap drains or a stop condition triggers.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events at exactly
            ``until`` are still executed).
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Predicate evaluated after every event; the run stops as soon as it
            returns ``True``.

        Returns the simulated time at which the run stopped.

        Cancelled events are skipped when popped; when they pile up to more
        than half of a non-trivial heap the engine compacts the heap in
        place instead of paying log-time pops for garbage.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stop_requested = False
        executed = 0
        # The heap list identity is stable (compaction mutates it in place),
        # so callbacks that schedule new events push into this same list.
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        try:
            while heap:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                cancelled_count = self._cancelled_in_heap
                if cancelled_count > _COMPACT_MIN_HEAP and cancelled_count * 2 > len(heap):
                    self._compact()
                    if not heap:
                        break
                entry = heappop(heap)
                event = entry[2]
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    # Put it back: the caller may resume the run later.
                    heappush(heap, entry)
                    self._now = until
                    break
                self._now = time
                event.fired = True
                event.callback()
                executed += 1
                self.events_processed += 1
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` to stop after the current event."""
        self._stop_requested = True

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events (in place)."""
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    def drain_cancelled(self) -> None:
        """Drop cancelled events from the heap (memory hygiene for long runs).

        Rarely needed by hand: :meth:`run` compacts automatically once
        cancelled events exceed half of the heap.
        """
        self._compact()
