"""Discrete-event simulation engine.

The paper evaluates its algorithm with Parsec, a C-based discrete-event
simulation language in which "processes are modeled by objects; interactions
among objects are modeled by time stamped message exchanges".  This module is
the Python equivalent: a deterministic event heap with a logical clock,
cancellable events and stop conditions.  Entities (logical processes) live in
:mod:`repro.simulation.entity`; the network latency model in
:mod:`repro.simulation.network` turns message sends into future delivery
events on this engine.

Determinism
-----------
Runs must be exactly reproducible for a given configuration and seed, so the
engine breaks ties between simultaneous events by an insertion sequence
number, never by object identity or hash order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["EventHandle", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (scheduling in the past, re-running…)."""


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled before firing."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is (was) scheduled."""
        return self._event.time

    @property
    def label(self) -> str:
        """Optional diagnostic label."""
        return self._event.label


class SimulationEngine:
    """A minimal, deterministic discrete-event simulator.

    Typical usage::

        engine = SimulationEngine()
        engine.schedule(1.5, lambda: print("fires at t=1.5"))
        engine.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False
        self._stop_requested = False
        #: Total events executed (not counting cancelled ones).
        self.events_processed = 0

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(self, time: float, callback: Callable[[], None], *, label: str = "") -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = _ScheduledEvent(time=time, sequence=next(self._sequence), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Process events until the heap drains or a stop condition triggers.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events at exactly
            ``until`` are still executed).
        max_events:
            Safety valve against runaway simulations.
        stop_when:
            Predicate evaluated after every event; the run stops as soon as it
            returns ``True``.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while self._heap:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    # Put it back: the caller may resume the run later.
                    heapq.heappush(self._heap, event)
                    self._now = until
                    break
                self._now = event.time
                event.callback()
                executed += 1
                self.events_processed += 1
                if stop_when is not None and stop_when():
                    break
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` to stop after the current event."""
        self._stop_requested = True

    def drain_cancelled(self) -> None:
        """Drop cancelled events from the heap (memory hygiene for long runs)."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
