"""Simulated logical processes (entities).

An :class:`Entity` models one participant of the distributed computation — a
worker, a gossip server, a central manager.  Entities follow the paper's
asynchronous processing model: incoming messages are *queued* on arrival and
the entity examines its queue at its own pace ("each process, after it has
solved a B&B subproblem, checks to see whether any messages are pending",
Section 6.2).  Crash failures follow the Crash model of Section 4: a crashed
entity halts, never handles another message or timer, and other entities are
not notified.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, TYPE_CHECKING

from .engine import EventHandle, SimulationEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import Network

__all__ = ["Entity", "QueuedMessage"]


@dataclass(frozen=True, slots=True)
class QueuedMessage:
    """A message sitting in an entity's inbox."""

    sender: str
    payload: Any
    sent_at: float
    delivered_at: float
    size_bytes: int


class Entity:
    """Base class for every simulated process.

    Subclasses override :meth:`on_start`, :meth:`on_message` and (optionally)
    :meth:`on_wakeup`.  The base class provides the inbox, crash semantics and
    timer helpers.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.engine: Optional[SimulationEngine] = None
        self.network: Optional["Network"] = None
        self.inbox: Deque[QueuedMessage] = deque()
        self.alive = True
        self.crashed_at: Optional[float] = None
        self._wakeup_handle: Optional[EventHandle] = None

    # ------------------------------------------------------------------ #
    # Wiring (called by the network / runner when the topology is built)
    # ------------------------------------------------------------------ #
    def bind(self, engine: SimulationEngine, network: "Network") -> None:
        """Attach the entity to an engine and a network."""
        self.engine = engine
        self.network = network

    # ------------------------------------------------------------------ #
    # Lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        """Called once when the simulation starts (override as needed)."""

    def on_message(self, message: QueuedMessage) -> None:
        """Called when the entity *processes* a queued message (override)."""

    def on_wakeup(self, reason: str) -> None:
        """Called when a timer set with :meth:`set_timer` fires (override)."""

    def on_crash(self) -> None:
        """Called once when the entity crashes (override for cleanup/tracing)."""

    def on_suspend(self) -> None:
        """Called once when the entity is suspended (override for accounting)."""

    def on_revive(self) -> None:
        """Called once when a suspended entity comes back (override)."""

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def enqueue(self, message: QueuedMessage) -> None:
        """Deliver a message into the inbox (called by the network)."""
        if not self.alive:
            return
        self.inbox.append(message)
        self.on_message_queued(message)

    def on_message_queued(self, message: QueuedMessage) -> None:
        """Hook invoked at delivery time (before the entity processes it).

        The default does nothing: entities poll their inbox when they choose
        to.  Reactive entities (gossip servers, the central manager baseline)
        override this to schedule immediate processing.
        """

    def drain_inbox(self) -> Deque[QueuedMessage]:
        """Remove and return every queued message."""
        drained = self.inbox
        self.inbox = deque()
        return drained

    def process_pending_messages(self) -> int:
        """Process (and remove) every queued message; returns how many."""
        count = 0
        while self.inbox and self.alive:
            message = self.inbox.popleft()
            self.on_message(message)
            count += 1
        return count

    def send(self, destination: str, payload: Any, *, size_bytes: Optional[int] = None) -> bool:
        """Send a message through the network (returns the network's verdict)."""
        if not self.alive:
            return False
        assert self.network is not None, "entity not bound to a network"
        return self.network.send(self.name, destination, payload, size_bytes=size_bytes)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def set_timer(self, delay: float, reason: str = "timer") -> EventHandle:
        """Schedule :meth:`on_wakeup` after ``delay`` seconds of simulated time."""
        assert self.engine is not None, "entity not bound to an engine"

        def _fire() -> None:
            if self.alive:
                self.on_wakeup(reason)

        return self.engine.schedule(delay, _fire, label=f"{self.name}:{reason}")

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #
    def crash(self) -> None:
        """Halt the entity permanently (Crash failure model)."""
        if not self.alive:
            return
        self.alive = False
        self.crashed_at = self.engine.now if self.engine is not None else None
        self.inbox.clear()
        self.on_crash()

    def suspend(self) -> None:
        """Take the entity offline *non-permanently* (churn leave).

        While suspended the entity is indistinguishable from a crashed one
        to the rest of the system — messages are dropped, timers do not
        fire — but :meth:`revive` can bring it back.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashed_at = self.engine.now if self.engine is not None else None
        self.inbox.clear()
        self.on_suspend()

    def revive(self) -> None:
        """Bring a suspended entity back online (churn return)."""
        if self.alive:
            return
        self.alive = True
        self.crashed_at = None
        self.on_revive()

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        status = "alive" if self.alive else f"crashed@{self.crashed_at}"
        return f"{type(self).__name__}({self.name!r}, {status})"
