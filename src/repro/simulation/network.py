"""Simulated network: the latency/loss/partition model between entities.

The paper models communication cost as ``1.5 + 0.005 × L`` milliseconds for a
message of ``L`` bytes (Figure 3 and Table 1 captions) and assumes an
unreliable transport: messages may be delayed arbitrarily or lost altogether,
and the network may partition temporarily (Section 4).  :class:`LatencyModel`
and :class:`Network` implement exactly that, plus the per-entity traffic
accounting (messages, bytes, and the MB/hour/processor rate reported in
Table 1).

Message sizes are taken from the payload's ``wire_size()`` method when it has
one (all the algorithm's payloads do), or passed explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .engine import SimulationEngine
from .entity import Entity, QueuedMessage

__all__ = ["LatencyModel", "Partition", "Network", "TrafficStats"]

#: Default message size when the payload has no ``wire_size`` method.
_DEFAULT_MESSAGE_BYTES = 64


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Linear latency model ``base + per_byte × size`` (seconds).

    The paper's parameters (1.5 ms + 0.005 ms/byte) are the defaults used by
    the benchmarks; :meth:`paper_default` spells them out.
    """

    base: float = 0.0015
    per_byte: float = 0.000005
    jitter_fraction: float = 0.0

    def latency(self, size_bytes: int, rng: Optional[random.Random] = None) -> float:
        """Delivery latency in seconds for a message of ``size_bytes``."""
        value = self.base + self.per_byte * max(0, size_bytes)
        if self.jitter_fraction > 0 and rng is not None:
            value *= 1.0 + rng.uniform(0.0, self.jitter_fraction)
        return value

    @classmethod
    def paper_default(cls) -> "LatencyModel":
        """The 1.5 ms + 0.005 ms/byte model used throughout the paper."""
        return cls(base=0.0015, per_byte=0.000005)


@dataclass(frozen=True, slots=True)
class Partition:
    """A temporary network partition between two groups of entities.

    While ``start <= now < end``, messages between ``group_a`` and ``group_b``
    are silently dropped (in both directions).  Entities not named in either
    group are unaffected.
    """

    start: float
    end: float
    group_a: frozenset
    group_b: frozenset

    def blocks(self, now: float, src: str, dst: str) -> bool:
        """True when this partition drops a ``src``→``dst`` message at ``now``."""
        if not (self.start <= now < self.end):
            return False
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass
class TrafficStats:
    """Per-entity traffic accounting."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_lost: int = 0
    messages_blocked: int = 0
    messages_to_dead: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dictionary view for reports."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_lost": self.messages_lost,
            "messages_blocked": self.messages_blocked,
            "messages_to_dead": self.messages_to_dead,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
        }


class Network:
    """Unreliable message transport between registered entities.

    Parameters
    ----------
    engine:
        The simulation engine messages are scheduled on.
    latency:
        Latency model (paper default when omitted).
    loss_probability:
        Independent probability that any message is silently lost.
    partitions:
        Time-windowed partitions.
    rng:
        Random stream for loss and jitter decisions (deterministic runs pass a
        seeded stream from :class:`~repro.simulation.rng.RngRegistry`).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        *,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        partitions: Iterable[Partition] = (),
        rng: Optional[random.Random] = None,
    ) -> None:
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        self.engine = engine
        self.latency = latency if latency is not None else LatencyModel.paper_default()
        self.loss_probability = loss_probability
        self.partitions: List[Partition] = list(partitions)
        self.rng = rng if rng is not None else random.Random(0)
        self._entities: Dict[str, Entity] = {}
        #: Global traffic counters.
        self.stats = TrafficStats()
        #: Per-entity traffic counters, keyed by sender name.
        self.per_entity: Dict[str, TrafficStats] = {}
        #: Optional payload-classification hook (``payload -> kind label``).
        #: The network itself is protocol-agnostic, so the owner installs a
        #: classifier (the distributed runner passes ``MessageKinds.of``);
        #: when set, injected traffic is additionally accounted per kind in
        #: :attr:`kind_bytes` / :attr:`kind_messages` — this is what the
        #: delta-gossip benchmark reads to compare dissemination costs.
        self.classify: Optional[Any] = None
        #: Bytes injected per message kind (only filled when ``classify`` set).
        self.kind_bytes: Dict[str, int] = {}
        #: Messages injected per message kind (ditto).
        self.kind_messages: Dict[str, int] = {}
        #: Optional :class:`repro.obs.Tracer`: when set, every scheduled
        #: delivery records a transport span (ts = send time, dur = modeled
        #: latency).  ``None`` keeps the hot path on one attribute check.
        self.tracer: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, entity: Entity) -> None:
        """Register an entity and bind it to the engine and this network."""
        if entity.name in self._entities:
            raise ValueError(f"duplicate entity name: {entity.name!r}")
        self._entities[entity.name] = entity
        self.per_entity[entity.name] = TrafficStats()
        entity.bind(self.engine, self)

    def entity(self, name: str) -> Entity:
        """Look up a registered entity by name."""
        return self._entities[name]

    def entities(self) -> List[Entity]:
        """All registered entities."""
        return list(self._entities.values())

    def living_entities(self) -> List[Entity]:
        """Entities that have not crashed."""
        return [e for e in self._entities.values() if e.alive]

    def add_partition(self, partition: Partition) -> None:
        """Add a partition window (may be done mid-run)."""
        self.partitions.append(partition)

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    @staticmethod
    def payload_size(payload: Any) -> int:
        """Byte size of a payload: its ``wire_size()`` if available."""
        try:
            return int(payload.wire_size())
        except AttributeError:
            return _DEFAULT_MESSAGE_BYTES

    def send(
        self, src: str, dst: str, payload: Any, *, size_bytes: Optional[int] = None
    ) -> bool:
        """Send a message; returns ``True`` when delivery was scheduled.

        A ``False`` return means the message will never arrive (lost,
        partitioned, unknown or dead destination).  Senders cannot distinguish
        these cases — exactly the asynchronous, unreliable model of Section 4.
        """
        size = size_bytes if size_bytes is not None else self.payload_size(payload)
        now = self.engine.now
        sender_stats = self.per_entity.get(src)
        if sender_stats is None:
            sender_stats = self.per_entity[src] = TrafficStats()
        sender_stats.messages_sent += 1
        sender_stats.bytes_sent += size
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        if self.classify is not None:
            kind = self.classify(payload)
            self.kind_bytes[kind] = self.kind_bytes.get(kind, 0) + size
            self.kind_messages[kind] = self.kind_messages.get(kind, 0) + 1

        destination = self._entities.get(dst)
        if destination is None or not destination.alive:
            sender_stats.messages_to_dead += 1
            self.stats.messages_to_dead += 1
            return False
        for partition in self.partitions:
            if partition.blocks(now, src, dst):
                sender_stats.messages_blocked += 1
                self.stats.messages_blocked += 1
                return False
        if self.loss_probability > 0 and self.rng.random() < self.loss_probability:
            sender_stats.messages_lost += 1
            self.stats.messages_lost += 1
            return False

        delay = self.latency.latency(size, self.rng)
        if self.tracer is not None:
            kind = (
                self.classify(payload)
                if self.classify is not None
                else type(payload).__name__
            )
            self.tracer.span(
                kind,
                now,
                delay,
                process=src,
                category="transport",
                args={"dst": dst, "bytes": size},
            )
        message = QueuedMessage(
            sender=src,
            payload=payload,
            sent_at=now,
            delivered_at=now + delay,
            size_bytes=size,
        )

        def _deliver() -> None:
            target = self._entities.get(dst)
            if target is None or not target.alive:
                self.stats.messages_to_dead += 1
                return
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += size
            sender_stats.messages_delivered += 1
            sender_stats.bytes_delivered += size
            target.enqueue(message)

        # Labels are diagnostic only; a constant avoids formatting a fresh
        # string for every one of the O(rounds x fanout) deliveries.
        self.engine.post(delay, _deliver, label="deliver")
        return True

    def broadcast(self, src: str, destinations: Iterable[str], payload: Any) -> int:
        """Send the same payload to several destinations; returns sends scheduled."""
        scheduled = 0
        for dst in destinations:
            if dst == src:
                continue
            if self.send(src, dst, payload):
                scheduled += 1
        return scheduled

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def total_megabytes_sent(self) -> float:
        """Total traffic injected into the network, in MB."""
        return self.stats.bytes_sent / 1e6

    def megabytes_sent_by(self, name: str) -> float:
        """Traffic injected by one entity, in MB."""
        stats = self.per_entity.get(name)
        return (stats.bytes_sent / 1e6) if stats else 0.0
