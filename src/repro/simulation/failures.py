"""Crash-failure injection.

The failure model is Crash (Section 4): "a processor fails by halting.  Once
it halts, the processor remains in that state.  The fact that a processor has
failed may not be detectable by other processors."  The simulator reproduces
this by scheduling :meth:`~repro.simulation.entity.Entity.crash` calls; no
notification of any kind is generated.

Schedules can be specified three ways, matching the experiments in the paper
and in the extended fault-tolerance benchmarks:

* absolute crash times per entity (:class:`CrashEvent`);
* a *fraction of the failure-free makespan* (used for the Figures 5/6
  scenario, "two of the three processors fail at about 85% of the execution
  time"), resolved by the runner once the failure-free makespan is known; and
* random crashes of ``k`` entities drawn from a seeded stream
  (:func:`random_crash_schedule`), used by the reliability sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import SimulationEngine
from .network import Network

__all__ = [
    "CrashEvent",
    "FailureInjector",
    "ChurnInjector",
    "random_crash_schedule",
    "fractional_crash_schedule",
]


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """One scheduled crash: ``entity`` halts at simulated ``time``."""

    time: float
    entity: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be non-negative")


class FailureInjector:
    """Installs crash events on a simulation engine."""

    def __init__(self, schedule: Iterable[CrashEvent] = ()) -> None:
        self.schedule: List[CrashEvent] = sorted(schedule, key=lambda e: (e.time, e.entity))
        #: Entities actually crashed so far (filled in during the run).
        self.crashed: List[str] = []

    def install(self, engine: SimulationEngine, network: Network) -> None:
        """Schedule every crash event on the engine."""
        for event in self.schedule:
            engine.schedule_at(event.time, self._make_crash(network, event.entity),
                               label=f"crash:{event.entity}")

    def _make_crash(self, network: Network, name: str):
        def _crash() -> None:
            try:
                entity = network.entity(name)
            except KeyError:
                return
            if entity.alive:
                entity.crash()
                self.crashed.append(name)

        return _crash

    def add(self, event: CrashEvent) -> None:
        """Append a crash event (before :meth:`install` is called)."""
        self.schedule.append(event)
        self.schedule.sort(key=lambda e: (e.time, e.entity))

    def __len__(self) -> int:
        return len(self.schedule)


class ChurnInjector:
    """Installs non-permanent leave/return (churn) events on an engine.

    Unlike :class:`FailureInjector`, a "leave" here is survivable: the
    entity is :meth:`~repro.simulation.entity.Entity.suspend`-ed, and a
    later "return" event revives it.  ``mode`` selects the paper-relevant
    return semantics:

    * ``"suspend"`` — the worker resumes with its state intact (SIGSTOP /
      closed laptop lid);
    * ``"restart"`` — the worker's volatile state is wiped before revival
      (the entity's duck-typed ``reset_for_rejoin()`` is invoked, if
      present), modelling a reboot: the worker must re-converge through the
      gossip first-contact path.

    The injector only revives entities *it* suspended: a worker crashed
    permanently by a concurrent :class:`FailureInjector` schedule is never
    resurrected.  ``pending_returns`` counts returns still in the future so
    the runner's stop condition can refuse to declare global termination
    while a rejoin is imminent.
    """

    def __init__(
        self,
        events: Iterable[Tuple[float, str, str]] = (),
        *,
        mode: str = "restart",
        on_return: Optional[Callable[[str], None]] = None,
    ) -> None:
        if mode not in ("restart", "suspend"):
            raise ValueError(f"unknown churn mode {mode!r}")
        self.events: List[Tuple[float, str, str]] = sorted(events)
        self.mode = mode
        self.on_return = on_return
        #: ``(time, name)`` log of leaves/returns that actually happened.
        self.left: List[Tuple[float, str]] = []
        self.returned: List[Tuple[float, str]] = []
        #: Return events not yet fired (guards the runner's stop condition).
        self.pending_returns = sum(1 for _, _, action in self.events if action == "return")
        self._suspended: Set[str] = set()

    def install(self, engine: SimulationEngine, network: Network) -> None:
        """Schedule every churn event on the engine."""
        for time, name, action in self.events:
            if action == "leave":
                engine.schedule_at(time, self._make_leave(engine, network, name),
                                   label=f"churn-leave:{name}")
            elif action == "return":
                engine.schedule_at(time, self._make_return(engine, network, name),
                                   label=f"churn-return:{name}")
            else:
                raise ValueError(f"unknown churn action {action!r}")

    def _make_leave(self, engine: SimulationEngine, network: Network, name: str):
        def _leave() -> None:
            try:
                entity = network.entity(name)
            except KeyError:
                return
            if entity.alive:
                entity.suspend()
                self._suspended.add(name)
                self.left.append((engine.now, name))

        return _leave

    def _make_return(self, engine: SimulationEngine, network: Network, name: str):
        def _return() -> None:
            # Decrement first: even a skipped return (worker crashed for
            # good in the meantime) must release the stop-condition guard.
            self.pending_returns -= 1
            if name not in self._suspended:
                return
            self._suspended.discard(name)
            try:
                entity = network.entity(name)
            except KeyError:
                return
            if entity.alive:
                return
            if self.mode == "restart":
                reset = getattr(entity, "reset_for_rejoin", None)
                if reset is not None:
                    reset()
            entity.revive()
            self.returned.append((engine.now, name))
            if self.on_return is not None:
                self.on_return(name)

        return _return

    def __len__(self) -> int:
        return len(self.events)


def random_crash_schedule(
    entity_names: Sequence[str],
    *,
    n_failures: int,
    start: float,
    end: float,
    seed: int = 0,
    spare: Optional[str] = None,
) -> List[CrashEvent]:
    """Crash ``n_failures`` distinct entities at uniform random times.

    ``spare`` names an entity that must never be crashed — used by the
    "all but one" reliability experiments, which require at least one survivor
    to finish the computation.
    """
    if n_failures < 0:
        raise ValueError("n_failures must be non-negative")
    candidates = [n for n in entity_names if n != spare]
    if n_failures > len(candidates):
        raise ValueError("cannot crash more entities than exist (minus the spare)")
    if end < start:
        raise ValueError("end must not precede start")
    rng = random.Random(seed)
    victims = rng.sample(list(candidates), n_failures)
    return [CrashEvent(time=rng.uniform(start, end), entity=name) for name in victims]


def fractional_crash_schedule(
    entity_names: Sequence[str],
    *,
    victims: Sequence[str],
    fraction: float,
    reference_makespan: float,
) -> List[CrashEvent]:
    """Crash the named victims at ``fraction`` of a reference makespan.

    This is how the Figures 5/6 experiment is expressed: the reference
    makespan is the failure-free execution time of the same configuration and
    ``fraction`` is 0.85.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be in [0, 1]")
    if reference_makespan < 0:
        raise ValueError("reference_makespan must be non-negative")
    known = set(entity_names)
    for victim in victims:
        if victim not in known:
            raise ValueError(f"unknown victim entity: {victim!r}")
    crash_time = fraction * reference_makespan
    return [CrashEvent(time=crash_time, entity=victim) for victim in victims]
