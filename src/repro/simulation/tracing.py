"""Execution timeline tracing — the Jumpshot substitute.

The paper visualises executions with Jumpshot over MPE ``clog`` logs
(Figures 5 and 6): a Gantt-style timeline showing, for every processor, which
state it is in over time, which makes it obvious that after two of three
processors crash the survivor picks up the lost work and terminates.

:class:`TimelineTrace` records the same information as state *intervals* per
process (``working``, ``idle``, ``recovery``, ``crashed``…), can export them
as rows (for the benchmark output and EXPERIMENTS.md) or a CSV file, and can
render a coarse ASCII Gantt chart for terminal inspection — enough to
reproduce what the two figures demonstrate without a GUI tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["StateInterval", "TimelineTrace"]


@dataclass(frozen=True, slots=True)
class StateInterval:
    """One contiguous interval of a process being in one state."""

    process: str
    state: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start


class TimelineTrace:
    """Per-process state timeline.

    Producers call :meth:`set_state` whenever a process changes state and
    :meth:`finish` once at the end of the run; the trace closes the last open
    interval of every process automatically.
    """

    #: Single-character glyphs for the ASCII Gantt chart.
    GLYPHS = {
        "working": "#",
        "idle": ".",
        "recovery": "R",
        "communication": "c",
        "load_balancing": "l",
        "contraction": "x",
        "crashed": " ",
        "terminated": "T",
    }

    def __init__(self) -> None:
        self._intervals: List[StateInterval] = []
        self._open: Dict[str, Tuple[str, float]] = {}
        self._finished = False

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def set_state(self, process: str, state: str, now: float) -> None:
        """Record that ``process`` enters ``state`` at time ``now``."""
        if self._finished:
            raise RuntimeError("cannot record on a finished trace")
        open_entry = self._open.get(process)
        if open_entry is not None:
            old_state, start = open_entry
            if old_state == state:
                return  # no transition
            if now > start:
                self._intervals.append(StateInterval(process, old_state, start, now))
        self._open[process] = (state, now)

    def finish(self, now: float) -> None:
        """Close every open interval at time ``now``."""
        for process, (state, start) in self._open.items():
            if now > start:
                self._intervals.append(StateInterval(process, state, start, now))
        self._open.clear()
        self._finished = True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def intervals(self, process: Optional[str] = None) -> List[StateInterval]:
        """All intervals, optionally filtered to one process."""
        if process is None:
            return list(self._intervals)
        return [i for i in self._intervals if i.process == process]

    def processes(self) -> List[str]:
        """Names of every process that appears in the trace."""
        return sorted({i.process for i in self._intervals})

    def state_durations(self, process: str) -> Dict[str, float]:
        """Total time the process spent in each state."""
        durations: Dict[str, float] = {}
        for interval in self._intervals:
            if interval.process == process:
                durations[interval.state] = durations.get(interval.state, 0.0) + interval.duration
        return durations

    def end_time(self) -> float:
        """Largest interval end in the trace (0 for an empty trace)."""
        return max((i.end for i in self._intervals), default=0.0)

    def state_at(self, process: str, time: float) -> Optional[str]:
        """The state a process was in at a given time (``None`` if unknown)."""
        for interval in self._intervals:
            if interval.process == process and interval.start <= time < interval.end:
                return interval.state
        return None

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_rows(self) -> List[Dict[str, object]]:
        """List-of-dicts export (JSON/CSV friendly)."""
        return [
            {"process": i.process, "state": i.state, "start": i.start, "end": i.end}
            for i in sorted(self._intervals, key=lambda x: (x.process, x.start))
        ]

    def to_csv(self) -> str:
        """CSV text export."""
        lines = ["process,state,start,end"]
        for row in self.to_rows():
            lines.append(f"{row['process']},{row['state']},{row['start']:.6f},{row['end']:.6f}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str) -> "TimelineTrace":
        """Rebuild a finished trace from :meth:`to_csv` output.

        Round-trips everything :meth:`to_csv` writes (timestamps at
        microsecond precision); the rebuilt trace is finished, so it can be
        queried and rendered but not recorded into.
        """
        trace = cls()
        lines = [line for line in text.splitlines() if line.strip()]
        for line in lines[1:]:  # skip the header row
            process, state, start, end = line.split(",")
            trace._intervals.append(
                StateInterval(process, state, float(start), float(end))
            )
        trace._finished = True
        return trace

    def ascii_gantt(self, *, width: int = 80) -> str:
        """Coarse ASCII rendering of the timeline (one row per process)."""
        end = self.end_time()
        if end <= 0 or width < 10:
            return "(empty trace)"
        lines = []
        for process in self.processes():
            cells = [" "] * width
            for interval in self.intervals(process):
                lo = int(interval.start / end * (width - 1))
                hi = max(lo, int(interval.end / end * (width - 1)))
                glyph = self.GLYPHS.get(interval.state, "?")
                for col in range(lo, hi + 1):
                    cells[col] = glyph
            lines.append(f"{process:>12} |{''.join(cells)}|")
        legend = "  ".join(f"{glyph}={state}" for state, glyph in self.GLYPHS.items() if glyph.strip())
        lines.append(f"{'':>12}  t=0 {'-' * (width - 16)} t={end:.2f}s")
        lines.append(f"{'':>12}  {legend}")
        return "\n".join(lines)
