"""Discrete-event simulation substrate (the Parsec replacement).

The paper evaluates its algorithm in simulation, using UCLA's Parsec.  This
package provides the equivalent functionality in pure Python:

* :mod:`repro.simulation.engine` — deterministic event heap and logical clock;
* :mod:`repro.simulation.entity` — logical processes with inboxes, timers and
  Crash-model failure semantics;
* :mod:`repro.simulation.network` — the ``1.5 ms + 0.005 ms/byte`` latency
  model, message loss, temporary partitions and traffic accounting;
* :mod:`repro.simulation.failures` — crash-failure injection schedules;
* :mod:`repro.simulation.metrics` — the per-process time split (B&B /
  communication / contraction / load balancing / idle) and storage accounting
  used by Figure 3 and Table 1;
* :mod:`repro.simulation.tracing` — per-process state timelines (the Jumpshot
  substitute behind Figures 5 and 6); and
* :mod:`repro.simulation.rng` — named, seeded random streams.
"""

from .engine import EventHandle, SimulationEngine, SimulationError
from .entity import Entity, QueuedMessage
from .failures import (
    CrashEvent,
    FailureInjector,
    fractional_crash_schedule,
    random_crash_schedule,
)
from .metrics import TIME_CATEGORIES, MetricsCollector, StorageAccount, TimeAccount
from .network import LatencyModel, Network, Partition, TrafficStats
from .rng import RngRegistry
from .tracing import StateInterval, TimelineTrace

__all__ = [
    "SimulationEngine",
    "SimulationError",
    "EventHandle",
    "Entity",
    "QueuedMessage",
    "LatencyModel",
    "Network",
    "Partition",
    "TrafficStats",
    "CrashEvent",
    "FailureInjector",
    "random_crash_schedule",
    "fractional_crash_schedule",
    "MetricsCollector",
    "TimeAccount",
    "StorageAccount",
    "TIME_CATEGORIES",
    "TimelineTrace",
    "StateInterval",
    "RngRegistry",
]
