"""The normalised result every scenario backend returns.

Four runners used to return four incompatible result types
(:class:`~repro.distributed.stats.RunResult`,
:class:`~repro.baselines.central.CentralRunResult`,
:class:`~repro.baselines.dib.DibRunResult`,
:class:`~repro.realexec.driver.LocalClusterResult`).  A
:class:`ScenarioResult` is the one shape the analysis layer consumes: the
solution and its correctness, the termination time, per-kind byte
accounting, the recovery/crash counters, and normalised per-worker stats.
The counters follow the work-vs-faults accounting of Dwork, Halpern &
Waarts: ``total_nodes_expanded`` is the *work* actually performed,
``redundant_nodes_expanded`` the part of it that was re-done because of
failures (or conservative recovery), and ``recoveries`` how often the
fault-tolerance mechanism fired — which is what makes the numbers of the
four designs comparable on one table.

The backend-native result stays available as :attr:`ScenarioResult.raw` for
analyses that need backend-specific detail (e.g. the simulated run's
timeline trace or the realexec router's per-link counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["WorkerSummary", "ScenarioResult", "format_comparison"]


@dataclass
class WorkerSummary:
    """Normalised per-worker statistics (the cross-backend subset)."""

    name: str
    nodes_expanded: int = 0
    reports_sent: int = 0
    recoveries: int = 0
    best_value: Optional[float] = None
    crashed: bool = False
    terminated: bool = False

    def as_dict(self) -> dict:
        """Flat dictionary (report/CSV friendly)."""
        return {
            "name": self.name,
            "nodes_expanded": self.nodes_expanded,
            "reports_sent": self.reports_sent,
            "recoveries": self.recoveries,
            "best_value": self.best_value,
            "crashed": self.crashed,
            "terminated": self.terminated,
        }


@dataclass
class ScenarioResult:
    """Aggregate result of one scenario run on one backend."""

    #: Scenario and backend names, for provenance.
    scenario: str
    backend: str
    #: Number of workers the run started with.
    n_workers: int
    #: Completion time: simulated seconds, or wall-clock seconds (realexec).
    makespan: float
    #: Best objective value known to the surviving workers.
    best_value: Optional[float]
    #: Reference optimum of the workload, if known.
    reference_optimum: Optional[float]
    #: True when every surviving worker detected termination.
    terminated: bool
    #: Workers that crashed (or were killed) during the run.
    crashed_workers: Tuple[str, ...] = ()
    #: Work actually performed, across all workers (includes redundancy).
    total_nodes_expanded: int = 0
    #: Work performed more than once system-wide (the cost of faults).
    redundant_nodes_expanded: int = 0
    #: Fault-tolerance activations (recoveries / reassignments / redos).
    recoveries: int = 0
    #: Peer evictions driven by the live failure detector (churn runs).
    evictions: int = 0
    #: Workers that left and successfully returned (churn runs).
    rejoins: int = 0
    #: Total worker-seconds spent unavailable to churn (churn runs).
    unavailable_time: float = 0.0
    #: Messages injected into the transport.
    messages_total: int = 0
    #: Bytes injected into the transport.
    bytes_total: int = 0
    #: Bytes by message kind (simulated: wire-size model; realexec: encoded).
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Sequential reference time, when the scenario asked for it.
    uniprocessor_time: Optional[float] = None
    #: Normalised per-worker statistics.
    workers: Dict[str, WorkerSummary] = field(default_factory=dict)
    #: Engine-level scale counters (simulated backend): ``events_processed``,
    #: ``peak_heap_len``, ``entity_steps`` and — for sharded runs — ``shards``.
    engine_counters: Dict[str, int] = field(default_factory=dict)
    #: The backend-native result object (RunResult, CentralRunResult, …).
    raw: object = None
    #: Collected run telemetry (:class:`repro.obs.Telemetry`) when the
    #: scenario carried a telemetry config; ``None`` otherwise.
    telemetry: object = None

    # ------------------------------------------------------------------ #
    # Correctness and derived metrics
    # ------------------------------------------------------------------ #
    @property
    def solved_correctly(self) -> Optional[bool]:
        """True when the surviving system knows the reference optimum."""
        if self.reference_optimum is None:
            return None
        if self.best_value is None:
            return False
        return abs(self.best_value - self.reference_optimum) <= 1e-9 * max(
            1.0, abs(self.reference_optimum)
        )

    def speedup(self) -> Optional[float]:
        """Speedup against the sequential reference time, when measured."""
        if self.uniprocessor_time is None or self.makespan <= 0:
            return None
        return self.uniprocessor_time / self.makespan

    def redundant_work_fraction(self) -> float:
        """Fraction of performed work that was redundant (re-done)."""
        if self.total_nodes_expanded == 0:
            return 0.0
        return self.redundant_nodes_expanded / self.total_nodes_expanded

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """One-row summary: the same keys for every backend (the schema)."""
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "workers": self.n_workers,
            "makespan_s": round(self.makespan, 3),
            "terminated": self.terminated,
            "best_value": self.best_value,
            "solved_correctly": self.solved_correctly,
            "crashed": len(self.crashed_workers),
            "nodes_expanded": self.total_nodes_expanded,
            "redundant_work_fraction": round(self.redundant_work_fraction(), 4),
            "recoveries": self.recoveries,
            "evictions": self.evictions,
            "rejoins": self.rejoins,
            "unavailable_time_s": round(self.unavailable_time, 3),
            "messages": self.messages_total,
            "bytes_sent": self.bytes_total,
            "speedup": None if self.speedup() is None else round(self.speedup(), 2),
        }

    def as_row(self) -> Dict[str, object]:
        """Compact row for sweep tables (examples and the CLI)."""
        return {
            "backend": self.backend,
            "workers": self.n_workers,
            "makespan_s": round(self.makespan, 3),
            "speedup": None if self.speedup() is None else round(self.speedup(), 2),
            "nodes": self.total_nodes_expanded,
            "recoveries": self.recoveries,
            "crashed": len(self.crashed_workers),
            "terminated": self.terminated,
            "correct": self.solved_correctly,
        }

    def report(self, title: Optional[str] = None) -> str:
        """Human-readable key/value block of :meth:`summary`."""
        from ..analysis.tables import format_kv

        heading = title if title is not None else f"--- {self.scenario} on {self.backend} ---"
        return format_kv(self.summary(), title=heading)


def format_comparison(results: Dict[str, "ScenarioResult"], *, title: str = "") -> str:
    """Render one summary row per backend as a comparison table."""
    from ..analysis.tables import format_table

    rows = [result.summary() for _, result in sorted(results.items())]
    return format_table(rows, title=title or "--- backend comparison ---")
