"""Named paper scenarios: the experiments of the paper as registry entries.

Each entry is a ready-to-run :class:`~repro.scenario.spec.Scenario`; the CLI
(``python -m repro run <name>``) and the examples look them up here, and
sweeps derive variants with :meth:`~repro.scenario.spec.Scenario.
with_overrides`.  Registering a scenario is one call — a new experiment is a
config diff, not a new runner.
"""

from __future__ import annotations

from typing import Dict, List

from ..distributed.runner import NetworkConfig
from ..simulation.network import Partition
from .spec import AvailabilitySpec, ChurnSpec, FailureSpec, Scenario, WorkloadSpec

__all__ = ["register_scenario", "get_scenario", "list_scenarios", "scenario_names"]

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register a named scenario (replacing any previous one)."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} (registered: {', '.join(sorted(_REGISTRY))})"
        ) from None


def list_scenarios() -> List[Scenario]:
    """Every registered scenario, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def scenario_names() -> List[str]:
    """Names of every registered scenario."""
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------- #
# The paper scenarios
# --------------------------------------------------------------------------- #
register_scenario(
    Scenario(
        name="quickstart",
        description=(
            "Figures 5/6 in miniature: the tiny workload on three workers, "
            "two of which crash at 85% of the failure-free execution time"
        ),
        workload=WorkloadSpec(kind="tiny", seed=7),
        n_workers=3,
        seed=1,
        failures=(FailureSpec(victims=(1, 2), at_fraction=0.85, after_seconds=0.15),),
    )
)

register_scenario(
    Scenario(
        name="figure3",
        description=(
            "The Figure 3 workload (~3,500 nodes at 0.01 s/node, scaled to "
            "25% by default) on eight workers, failure-free, with the "
            "sequential reference measured for the speedup column"
        ),
        workload=WorkloadSpec(kind="figure3", scale=0.25, seed=7),
        n_workers=8,
        seed=7,
        compute_uniprocessor_time=True,
    )
)

register_scenario(
    Scenario(
        name="crash-storm",
        description=(
            "Half of six workers crash simultaneously at 50% of the "
            "failure-free makespan — the survivors must recover the lost "
            "subtrees and still terminate on the optimum"
        ),
        workload=WorkloadSpec(kind="random", nodes=401, mean_node_time=0.02, seed=5),
        n_workers=6,
        seed=3,
        failures=(FailureSpec(victims=(1, 2, 3), at_fraction=0.5, after_seconds=0.25),),
    )
)

register_scenario(
    Scenario(
        name="rolling-upgrade",
        description=(
            "A mixed wire-generation cluster (2, 1, 2, 1): upgraded workers "
            "gossip table deltas, not-yet-upgraded ones drop those frames "
            "and keep converging via generation-1 reports — run it on the "
            "realexec backend for the real thing"
        ),
        workload=WorkloadSpec(kind="random", nodes=121, mean_node_time=0.005, seed=31),
        n_workers=4,
        seed=31,
        wire_generations=(2, 1, 2, 1),
        max_seconds=40.0,
    )
)

register_scenario(
    Scenario(
        name="campus-churn",
        description=(
            "The paper's campus-network deployment in miniature: five "
            "heterogeneous desktops (speed multipliers 0.6-1.4×) churn with "
            "exponential up/down times; departures are detected by the live "
            "heartbeat failure detector, returners re-converge through "
            "gossip first contact, and the group still terminates on the "
            "optimum"
        ),
        workload=WorkloadSpec(kind="random", nodes=301, mean_node_time=0.01, seed=13),
        n_workers=5,
        seed=13,
        churn=ChurnSpec(
            availability=(AvailabilitySpec(worker=4, down=((1.0, 2.0),)),),
            mean_uptime=2.0,
            mean_downtime=0.4,
            start_after=0.5,
            horizon=6.0,
            speed_range=(0.6, 1.4),
        ),
    )
)

register_scenario(
    Scenario(
        name="late-joiner",
        description=(
            "Dynamic membership: worker-03 is partitioned away for the first "
            "second (it effectively joins late, knowing nothing), then heals "
            "and catches up via work reports and first-contact table deltas"
        ),
        workload=WorkloadSpec(kind="tiny", seed=7),
        n_workers=4,
        seed=11,
        network=NetworkConfig(
            partitions=(
                Partition(
                    start=0.0,
                    end=1.0,
                    group_a=frozenset({"worker-03"}),
                    group_b=frozenset({"worker-00", "worker-01", "worker-02"}),
                ),
            )
        ),
    )
)
