"""``python -m repro`` — the command-line face of the scenario API.

Four subcommands:

* ``list-scenarios`` — the registered named scenarios and their backends;
* ``run <scenario>`` — run one scenario on one backend and print its
  normalised summary (``--backend``, ``--workers``, ``--seed``,
  ``--transport``, ``--scale`` override the registered spec; ``--trace
  out.json`` writes a Chrome/Perfetto trace, ``--metrics`` prints the
  unified metrics registry);
* ``compare <scenario>`` — run the same scenario on several backends
  (default: the three simulated designs) and print one comparison table;
* ``inspect <trace.json>`` — render a previously written Chrome trace as
  an ASCII Gantt chart plus its top-line metrics, without re-running
  anything.

``-v``/``-q`` (before the subcommand) raise/lower logging verbosity on the
``repro.*`` logger hierarchy (stderr).

Examples::

    python -m repro list-scenarios
    python -m repro run figure3 --backend simulated
    python -m repro run quickstart --trace quickstart.json --metrics
    python -m repro run quickstart --backend realexec --transport uds
    python -m repro run quickstart --backend realexec --transport tcp
    python -m repro compare crash-storm --backends simulated,central,dib
    python -m repro inspect quickstart.json
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import List, Optional

from ..obs import TelemetryConfig, configure_logging, get_logger
from .backends import backend_names, compare_backends, run_scenario
from .registry import get_scenario, list_scenarios
from .result import format_comparison
from .spec import Scenario

__all__ = ["main"]

logger = get_logger("scenario.cli")


def _exists_at(victim, canonical) -> bool:
    """Does a victim / partition member still exist at this worker count?"""
    from .spec import canonical_index

    index = canonical_index(victim)
    return index is None or 0 <= index < len(canonical)


def _shrink_failures(scenario: Scenario, canonical) -> tuple:
    """Drop failure victims that no longer exist at a smaller worker count."""
    specs = []
    for spec in scenario.failures:
        victims = tuple(v for v in spec.victims if _exists_at(v, canonical))
        if victims:
            specs.append(replace(spec, victims=victims))
    return tuple(specs)


def _shrink_partitions(scenario: Scenario, canonical) -> "NetworkConfig":
    """Drop partition members (and emptied partitions) that no longer exist."""
    partitions = []
    for p in scenario.network.partitions:
        group_a = frozenset(n for n in p.group_a if _exists_at(n, canonical))
        group_b = frozenset(n for n in p.group_b if _exists_at(n, canonical))
        if group_a and group_b:
            partitions.append(replace(p, group_a=group_a, group_b=group_b))
    return replace(scenario.network, partitions=tuple(partitions))


def _apply_overrides(scenario: Scenario, args: argparse.Namespace) -> Scenario:
    """Apply the common CLI override flags to a registered scenario.

    Shrinking ``--workers`` prunes failure victims and partition members
    that no longer exist; anything dropped is reported, so the printed
    description never silently claims behaviour the run no longer has.
    """
    changes = {}
    if getattr(args, "workers", None) is not None:
        from ..distributed.runner import worker_names

        canonical = worker_names(args.workers)
        changes["n_workers"] = args.workers
        changes["failures"] = _shrink_failures(scenario, canonical)
        changes["network"] = _shrink_partitions(scenario, canonical)
        dropped_victims = sum(len(s.victims) for s in scenario.failures) - sum(
            len(s.victims) for s in changes["failures"]
        )
        dropped_partitions = len(scenario.network.partitions) - len(
            changes["network"].partitions
        )
        if dropped_victims or dropped_partitions:
            logger.warning(
                "--workers %d dropped %d failure victim(s) and %d "
                "partition(s) naming workers that no longer exist — the "
                "scenario's failure semantics changed",
                args.workers,
                dropped_victims,
                dropped_partitions,
            )
        if scenario.wire_generations is not None and len(scenario.wire_generations) != args.workers:
            changes["wire_generations"] = None
    if getattr(args, "seed", None) is not None:
        changes["seed"] = args.seed
    if getattr(args, "shards", None) is not None:
        changes["shards"] = args.shards
    if getattr(args, "transport", None) is not None:
        changes["transport"] = args.transport
    if getattr(args, "scale", None) is not None:
        changes["workload"] = replace(
            scenario.workload, scale=scenario.workload.scale * args.scale
        )
    if getattr(args, "trace", None) is not None or getattr(args, "metrics", False):
        # Telemetry rides along with whichever output the user asked for;
        # metrics are cheap enough to always collect when telemetry is on.
        changes["telemetry"] = TelemetryConfig(
            trace=getattr(args, "trace", None) is not None, metrics=True
        )
    return scenario.with_overrides(**changes) if changes else scenario


def _transport_names() -> tuple:
    from ..realexec.transport import TRANSPORTS

    return tuple(sorted(TRANSPORTS))


def _add_override_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, help="override the worker count")
    parser.add_argument("--seed", type=int, help="override the run seed")
    parser.add_argument(
        "--shards",
        type=int,
        help="partition the simulated run across N engine shards (simulated backend)",
    )
    parser.add_argument(
        "--transport", choices=_transport_names(), help="realexec transport override"
    )
    parser.add_argument(
        "--scale", type=float, help="multiply the workload scale (e.g. 0.1 for a quick run)"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_table

    rows = [
        {
            "scenario": s.name,
            "workload": s.workload.describe(),
            "workers": s.n_workers,
            "failures": sum(len(f.victims) for f in s.failures),
            "description": s.description,
        }
        for s in list_scenarios()
    ]
    print(format_table(rows, title="--- registered scenarios ---"))
    print(f"\nbackends: {', '.join(backend_names())}")
    print("run one with: python -m repro run <scenario> --backend <backend>")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(args.scenario), args)
    result = run_scenario(scenario, backend=args.backend)
    if scenario.description:
        print(f"{scenario.name}: {scenario.description}\n")
    print(result.report())
    if result.solved_correctly is False or not result.terminated:
        print("\nnote: the run did not terminate on the reference optimum "
              "(for the baseline backends under critical failures, that is the point)")
    telemetry = result.telemetry
    if args.trace is not None:
        if telemetry is None or telemetry.tracer is None:
            print(f"note: backend {args.backend!r} produced no trace records")
        else:
            telemetry.write_chrome_trace(args.trace)
            print(f"\nwrote Chrome trace to {args.trace} "
                  f"(open in Perfetto or chrome://tracing; "
                  f"inspect with: python -m repro inspect {args.trace})")
    if args.metrics:
        if telemetry is None or telemetry.metrics is None:
            print(f"note: backend {args.backend!r} produced no metrics")
        else:
            print("\n--- metrics ---")
            print(telemetry.metrics_text(), end="")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(args.scenario), args)
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    results = compare_backends(scenario, backends)
    if scenario.description:
        print(f"{scenario.name}: {scenario.description}\n")
    print(format_comparison(results, title=f"--- {scenario.name}: backend comparison ---"))
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from ..obs.chrome import (
        category_span_counts,
        load_chrome_trace,
        timeline_from_chrome,
    )

    try:
        document = load_chrome_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace!r}: {exc}")
        return 2

    meta = document.get("repro", {}).get("meta", {})
    if meta:
        described = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        print(f"--- trace: {args.trace} ({described}) ---")
    else:
        print(f"--- trace: {args.trace} ---")

    counts = category_span_counts(document)
    if counts:
        total = sum(counts.values())
        by_cat = ", ".join(f"{cat}={n}" for cat, n in sorted(counts.items()))
        print(f"{total} spans across {len(counts)} categories: {by_cat}")

    timeline = timeline_from_chrome(document)
    print()
    print(timeline.ascii_gantt(width=args.width))

    metrics = document.get("repro", {}).get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        print("\ntop counters:")
        ranked = sorted(counters.items(), key=lambda kv: -kv[1])[: args.top]
        for key, value in ranked:
            print(f"  {key:<48} {value}")
        if len(counters) > args.top:
            print(f"  ... and {len(counters) - args.top} more "
                  f"(re-run with --top {len(counters)})")
    gauges = metrics.get("gauges", {})
    if gauges:
        print("\ngauges (value/peak):")
        for key, entry in sorted(gauges.items()):
            print(f"  {key:<48} {entry['value']:g}/{entry['peak']:g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative fault-tolerance scenarios on any backend.",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise logging verbosity (-v info, -vv debug; stderr)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="lower logging verbosity (errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list-scenarios", help="list the registered scenarios")
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one scenario on one backend")
    run_p.add_argument("scenario", help="a registered scenario name")
    run_p.add_argument(
        "--backend",
        default="simulated",
        choices=backend_names(),
        help="backend to run on (default: simulated)",
    )
    run_p.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome/Perfetto trace of the run to PATH (enables telemetry)",
    )
    run_p.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's unified metrics registry (enables telemetry)",
    )
    _add_override_flags(run_p)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="run one scenario on several backends")
    cmp_p.add_argument("scenario", help="a registered scenario name")
    cmp_p.add_argument(
        "--backends",
        default="simulated,central,dib",
        help="comma-separated backend names (default: simulated,central,dib)",
    )
    _add_override_flags(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    inspect_p = sub.add_parser(
        "inspect", help="render a Chrome trace as an ASCII Gantt plus metrics"
    )
    inspect_p.add_argument("trace", help="path of a trace written by run --trace")
    inspect_p.add_argument(
        "--width", type=int, default=80, help="Gantt chart width in columns"
    )
    inspect_p.add_argument(
        "--top", type=int, default=12, help="number of counters to show"
    )
    inspect_p.set_defaults(func=_cmd_inspect)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2
    except ValueError as exc:
        # Invalid overrides (e.g. --shards exceeding the worker count) must
        # fail loudly with the validation message, not a traceback.
        print(f"error: {exc}")
        return 2
