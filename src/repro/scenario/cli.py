"""``python -m repro`` — the command-line face of the scenario API.

Three subcommands:

* ``list-scenarios`` — the registered named scenarios and their backends;
* ``run <scenario>`` — run one scenario on one backend and print its
  normalised summary (``--backend``, ``--workers``, ``--seed``,
  ``--transport``, ``--scale`` override the registered spec);
* ``compare <scenario>`` — run the same scenario on several backends
  (default: the three simulated designs) and print one comparison table.

Examples::

    python -m repro list-scenarios
    python -m repro run figure3 --backend simulated
    python -m repro run quickstart --backend realexec --transport uds
    python -m repro compare crash-storm --backends simulated,central,dib
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import List, Optional

from .backends import backend_names, compare_backends, run_scenario
from .registry import get_scenario, list_scenarios
from .result import format_comparison
from .spec import Scenario

__all__ = ["main"]


def _exists_at(victim, canonical) -> bool:
    """Does a victim / partition member still exist at this worker count?"""
    from .spec import canonical_index

    index = canonical_index(victim)
    return index is None or 0 <= index < len(canonical)


def _shrink_failures(scenario: Scenario, canonical) -> tuple:
    """Drop failure victims that no longer exist at a smaller worker count."""
    specs = []
    for spec in scenario.failures:
        victims = tuple(v for v in spec.victims if _exists_at(v, canonical))
        if victims:
            specs.append(replace(spec, victims=victims))
    return tuple(specs)


def _shrink_partitions(scenario: Scenario, canonical) -> "NetworkConfig":
    """Drop partition members (and emptied partitions) that no longer exist."""
    partitions = []
    for p in scenario.network.partitions:
        group_a = frozenset(n for n in p.group_a if _exists_at(n, canonical))
        group_b = frozenset(n for n in p.group_b if _exists_at(n, canonical))
        if group_a and group_b:
            partitions.append(replace(p, group_a=group_a, group_b=group_b))
    return replace(scenario.network, partitions=tuple(partitions))


def _apply_overrides(scenario: Scenario, args: argparse.Namespace) -> Scenario:
    """Apply the common CLI override flags to a registered scenario.

    Shrinking ``--workers`` prunes failure victims and partition members
    that no longer exist; anything dropped is reported, so the printed
    description never silently claims behaviour the run no longer has.
    """
    changes = {}
    if getattr(args, "workers", None) is not None:
        from ..distributed.runner import worker_names

        canonical = worker_names(args.workers)
        changes["n_workers"] = args.workers
        changes["failures"] = _shrink_failures(scenario, canonical)
        changes["network"] = _shrink_partitions(scenario, canonical)
        dropped_victims = sum(len(s.victims) for s in scenario.failures) - sum(
            len(s.victims) for s in changes["failures"]
        )
        dropped_partitions = len(scenario.network.partitions) - len(
            changes["network"].partitions
        )
        if dropped_victims or dropped_partitions:
            print(
                f"note: --workers {args.workers} dropped "
                f"{dropped_victims} failure victim(s) and "
                f"{dropped_partitions} partition(s) naming workers that no "
                f"longer exist — the scenario's failure semantics changed"
            )
        if scenario.wire_generations is not None and len(scenario.wire_generations) != args.workers:
            changes["wire_generations"] = None
    if getattr(args, "seed", None) is not None:
        changes["seed"] = args.seed
    if getattr(args, "shards", None) is not None:
        changes["shards"] = args.shards
    if getattr(args, "transport", None) is not None:
        changes["transport"] = args.transport
    if getattr(args, "scale", None) is not None:
        changes["workload"] = replace(
            scenario.workload, scale=scenario.workload.scale * args.scale
        )
    return scenario.with_overrides(**changes) if changes else scenario


def _transport_names() -> tuple:
    from ..realexec.transport import TRANSPORTS

    return tuple(sorted(TRANSPORTS))


def _add_override_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, help="override the worker count")
    parser.add_argument("--seed", type=int, help="override the run seed")
    parser.add_argument(
        "--shards",
        type=int,
        help="partition the simulated run across N engine shards (simulated backend)",
    )
    parser.add_argument(
        "--transport", choices=_transport_names(), help="realexec transport override"
    )
    parser.add_argument(
        "--scale", type=float, help="multiply the workload scale (e.g. 0.1 for a quick run)"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from ..analysis.tables import format_table

    rows = [
        {
            "scenario": s.name,
            "workload": s.workload.describe(),
            "workers": s.n_workers,
            "failures": sum(len(f.victims) for f in s.failures),
            "description": s.description,
        }
        for s in list_scenarios()
    ]
    print(format_table(rows, title="--- registered scenarios ---"))
    print(f"\nbackends: {', '.join(backend_names())}")
    print("run one with: python -m repro run <scenario> --backend <backend>")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(args.scenario), args)
    result = run_scenario(scenario, backend=args.backend)
    if scenario.description:
        print(f"{scenario.name}: {scenario.description}\n")
    print(result.report())
    if result.solved_correctly is False or not result.terminated:
        print("\nnote: the run did not terminate on the reference optimum "
              "(for the baseline backends under critical failures, that is the point)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(args.scenario), args)
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    results = compare_backends(scenario, backends)
    if scenario.description:
        print(f"{scenario.name}: {scenario.description}\n")
    print(format_comparison(results, title=f"--- {scenario.name}: backend comparison ---"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative fault-tolerance scenarios on any backend.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list-scenarios", help="list the registered scenarios")
    list_p.set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one scenario on one backend")
    run_p.add_argument("scenario", help="a registered scenario name")
    run_p.add_argument(
        "--backend",
        default="simulated",
        choices=backend_names(),
        help="backend to run on (default: simulated)",
    )
    _add_override_flags(run_p)
    run_p.set_defaults(func=_cmd_run)

    cmp_p = sub.add_parser("compare", help="run one scenario on several backends")
    cmp_p.add_argument("scenario", help="a registered scenario name")
    cmp_p.add_argument(
        "--backends",
        default="simulated,central,dib",
        help="comma-separated backend names (default: simulated,central,dib)",
    )
    _add_override_flags(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}")
        return 2
    except ValueError as exc:
        # Invalid overrides (e.g. --shards exceeding the worker count) must
        # fail loudly with the validation message, not a traceback.
        print(f"error: {exc}")
        return 2
