"""Declarative experiment specifications: the :class:`Scenario` dataclass.

The paper's evaluation is comparative — the problem-specific mechanism vs. a
central manager vs. DIB, under crashes, on simulated and real transports —
so an experiment must be *describable once* and runnable everywhere.  A
:class:`Scenario` is that description: a workload, a worker count, a network
model, a failure schedule, the algorithm configuration and a seed.  Nothing
in it names a backend; the same frozen object runs on the ``simulated``,
``central``, ``dib`` and ``realexec`` backends (see
:mod:`repro.scenario.backends`), which is the separation of fault-tolerance
*policy* (this spec) from *mechanism* (the backend) that De Florio's
application-layer fault-tolerance survey argues for.

Workers are named canonically (``worker-00`` … ``worker-NN``); each backend
maps those names onto its own (``cworker-…``, ``dworker-…``, ``rworker-…``),
so failure schedules and network partitions written against the canonical
names apply to every backend.  The special victim ``"critical"`` resolves to
the backend's most critical node — the central manager, the DIB root
machine, or plain ``worker-00`` for the designs that have no critical node.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..bnb.basic_tree import BasicTree
from ..bnb.pool import SelectionRule
from ..distributed.config import AlgorithmConfig
from ..distributed.runner import NetworkConfig, worker_names
from ..obs import TelemetryConfig

__all__ = [
    "WorkloadSpec",
    "FailureSpec",
    "AvailabilitySpec",
    "ChurnSpec",
    "ChurnSchedule",
    "Scenario",
    "TelemetryConfig",
    "CRITICAL",
    "canonical_index",
    "translate_canonical",
]

#: Victim placeholder resolving to the backend's most critical node.
CRITICAL = "critical"

#: Canonical worker names (``worker-NN``), as produced by ``worker_names``.
_CANONICAL_RE = re.compile(r"^worker-(\d+)$")


def canonical_index(victim: Union[int, str]) -> Optional[int]:
    """Worker index of a canonical reference (``2`` or ``"worker-02"``).

    ``None`` for anything else — backend-specific entity names like the
    central ``"manager"`` are not canonical.  This is the single definition
    of "canonical worker reference" shared by victim resolution, partition
    translation and the CLI's shrink logic.
    """
    if isinstance(victim, int):
        return victim
    match = _CANONICAL_RE.match(victim)
    return int(match.group(1)) if match else None


def translate_canonical(name: Union[int, str], names: Sequence[str]) -> str:
    """Map a canonical worker reference onto one backend's entity names.

    Non-canonical strings pass through verbatim; canonical references out
    of range raise — a typo'd victim or partition member must fail loudly,
    not silently run a different experiment than the spec claims.
    """
    index = canonical_index(name)
    if index is None:
        return str(name)
    if not (0 <= index < len(names)):
        raise ValueError(
            f"canonical worker reference {name!r} out of range for "
            f"{len(names)} workers"
        )
    return names[index]

#: Workload kinds :meth:`WorkloadSpec.build` understands.
_WORKLOAD_KINDS = ("tiny", "figure3", "table1", "random", "knapsack", "tree")


@dataclass(frozen=True)
class WorkloadSpec:
    """How to build the workload tree — declaratively, from a seed.

    ``kind`` selects the family:

    * ``"tiny"`` / ``"figure3"`` / ``"table1"`` — the named paper workloads
      (:mod:`repro.analysis.figures`); ``scale`` shrinks the node count;
    * ``"random"`` — a calibrated random basic tree of ``nodes`` nodes with
      ``mean_node_time`` seconds per node;
    * ``"knapsack"`` — record the basic tree of a random 0/1 knapsack
      instance with ``nodes`` items and attach a synthetic cost model of
      ``mean_node_time`` seconds per node (the paper's full experimental
      pipeline);
    * ``"tree"`` — an explicit, prebuilt :class:`~repro.bnb.basic_tree.
      BasicTree` carried in :attr:`tree` (used by benchmarks that must
      factor workload construction out of a timing).
    """

    kind: str = "random"
    #: Node count for ``random``; item count for ``knapsack``; unused else.
    nodes: int = 301
    #: Mean per-node cost in seconds (``random``/``knapsack``).
    mean_node_time: float = 0.01
    #: Workload seed (independent of the scenario's run seed).
    seed: int = 7
    #: Size multiplier: node count for the tree kinds, item count for
    #: ``knapsack``.  Ignored only by ``tree`` (the tree is already built).
    scale: float = 1.0
    #: Optional display name override.
    name: Optional[str] = None
    #: Prebuilt tree for ``kind="tree"``.
    tree: Optional[BasicTree] = None

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r} (known: {_WORKLOAD_KINDS})")
        if self.kind == "tree" and self.tree is None:
            raise ValueError("workload kind 'tree' requires an explicit tree")
        if self.nodes < 1:
            raise ValueError("nodes must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def build(self) -> BasicTree:
        """Build (or return) the workload tree."""
        if self.kind == "tree":
            assert self.tree is not None
            return self.tree
        from ..analysis.figures import figure3_tree, table1_tree, tiny_tree

        if self.kind == "tiny":
            return tiny_tree(seed=self.seed, scale=self.scale)
        if self.kind == "figure3":
            return figure3_tree(scale=self.scale, seed=self.seed)
        if self.kind == "table1":
            return table1_tree(scale=self.scale, seed=self.seed)
        if self.kind == "knapsack":
            from ..bnb.cost_model import NodeTimeModel, assign_node_times
            from ..bnb.basic_tree import record_basic_tree
            from ..bnb.knapsack import random_knapsack

            items = max(4, int(round(self.nodes * self.scale)))
            problem = random_knapsack(items, seed=self.seed)
            tree = record_basic_tree(problem, name=self.name or f"knapsack-{items}")
            return assign_node_times(
                tree, NodeTimeModel(mean=self.mean_node_time, cv=0.4, seed=self.seed)
            )
        from ..bnb.random_tree import RandomTreeSpec, generate_random_tree

        nodes = max(3, int(round(self.nodes * self.scale)))
        if nodes % 2 == 0:  # basic trees are binary: node counts are odd
            nodes += 1
        return generate_random_tree(
            RandomTreeSpec(
                nodes=nodes,
                mean_node_time=self.mean_node_time,
                seed=self.seed,
                name=self.name or f"random-{nodes}n",
            )
        )

    def describe(self) -> str:
        """One-line human description."""
        if self.kind == "tree":
            return f"prebuilt tree {getattr(self.tree, 'name', '?')}"
        if self.kind in ("tiny", "figure3", "table1"):
            return f"{self.kind} paper workload (scale {self.scale:g}, seed {self.seed})"
        if self.kind == "knapsack":
            return f"recorded knapsack tree ({self.nodes} items, seed {self.seed})"
        return f"random tree ({self.nodes} nodes, {self.mean_node_time:g}s/node, seed {self.seed})"


@dataclass(frozen=True)
class FailureSpec:
    """One failure-injection instruction, backend-agnostic.

    ``victims`` name workers by canonical name (``worker-01``), by index
    (``1``), or with the placeholder :data:`CRITICAL`.  Exactly when the
    crash happens depends on which of the timing fields is set:

    * ``at_time`` — absolute simulated time (simulated backends);
    * ``at_fraction`` — fraction of the *failure-free makespan* of the same
      scenario on the same backend (the paper's "at about 85% of the
      execution time" phrasing); the backend runs a failure-free reference
      first to resolve it;
    * ``after_seconds`` — wall-clock seconds after process start, used by the
      ``realexec`` backend (real kills cannot be scheduled in simulated
      time).  Defaults to 0.5 s when only simulated timings are given.
    """

    victims: Tuple[Union[int, str], ...]
    at_time: Optional[float] = None
    at_fraction: Optional[float] = None
    after_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.victims:
            raise ValueError("a FailureSpec needs at least one victim")
        if self.at_time is not None and self.at_fraction is not None:
            raise ValueError("set at_time or at_fraction, not both")
        if self.at_time is None and self.at_fraction is None:
            object.__setattr__(self, "at_fraction", 0.5)
        if self.at_fraction is not None and not (0.0 <= self.at_fraction <= 1.0):
            raise ValueError("at_fraction must be in [0, 1]")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self.after_seconds is not None and self.after_seconds < 0:
            raise ValueError("after_seconds must be non-negative")

    def resolve_victims(self, names: Sequence[str], *, critical: str) -> List[str]:
        """Map the victim specs onto one backend's entity names.

        Indices and canonical ``worker-NN`` names are validated against the
        worker count (:func:`translate_canonical`) — a typo'd or
        out-of-range victim must fail loudly, not silently produce a
        failure-free run that claims to have survived a crash.  Any other
        string passes through verbatim (backend-specific entities like the
        central ``"manager"``).
        """
        return [
            critical if victim == CRITICAL else translate_canonical(victim, names)
            for victim in self.victims
        ]

    def wall_clock_delay(self) -> float:
        """Kill delay for the realexec backend (wall-clock seconds)."""
        if self.after_seconds is not None:
            return self.after_seconds
        if self.at_time is not None:
            return self.at_time
        return 0.5


#: Churn modes: a leaving worker is either frozen in place (``suspend``, the
#: SIGSTOP/laptop-lid model) or loses all volatile state and rejoins with a
#: higher incarnation (``restart``, the reboot/kill+rejoin model).
_CHURN_MODES = ("restart", "suspend")


@dataclass(frozen=True)
class AvailabilitySpec:
    """Explicit availability trace for one worker.

    ``down`` is a tuple of ``(leave, return)`` intervals in simulated
    seconds (wall-clock seconds on ``realexec``) during which the worker is
    unavailable; ``float("inf")`` as a return time means the worker never
    comes back.  ``speed`` is a relative speed multiplier applied to the
    worker's node-expansion cost (2.0 = twice as fast), modelling the
    heterogeneous desktops of the paper's campus-network deployment.
    """

    worker: Union[int, str]
    down: Tuple[Tuple[float, float], ...] = ()
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        windows = tuple((float(a), float(b)) for a, b in self.down)
        previous_end = -1.0
        for leave, ret in windows:
            if leave < 0:
                raise ValueError("availability windows cannot start before t=0")
            if ret <= leave:
                raise ValueError(
                    f"availability window ({leave:g}, {ret:g}) must have return > leave"
                )
            if leave <= previous_end:
                raise ValueError("availability windows must be sorted and non-overlapping")
            previous_end = ret
        object.__setattr__(self, "down", windows)


@dataclass(frozen=True)
class ChurnSpec:
    """A churn/availability process over the whole worker population.

    Two sources, freely mixed:

    * **trace-driven** — explicit :class:`AvailabilitySpec` entries in
      ``availability`` pin individual workers to exact leave/return windows
      (and per-worker speeds);
    * **distribution-driven** — when ``mean_uptime`` is set, every worker
      without an explicit entry (and not in ``spare``) draws alternating
      exponential up/down intervals seeded from ``seed`` (falling back to
      the scenario seed), over ``[start_after, horizon)``.  A ``None``
      horizon is resolved by the backend as a multiple of the failure-free
      makespan, mirroring ``FailureSpec.at_fraction``.

    ``mode`` picks the paper-relevant semantics: ``"restart"`` (a returning
    worker lost its pool and completed-table view and must re-converge via
    gossip first contact) or ``"suspend"`` (the worker is frozen and resumes
    with its state intact, as under SIGSTOP).  ``speed_range`` draws uniform
    per-worker speed multipliers for workers without an explicit speed.
    """

    availability: Tuple[AvailabilitySpec, ...] = ()
    #: Mean up-interval (exponential) enabling distribution-driven churn.
    mean_uptime: Optional[float] = None
    #: Mean down-interval (exponential) for distribution-driven churn.
    mean_downtime: float = 0.5
    #: No distribution-driven leave is drawn before this time.
    start_after: float = 0.0
    #: End of the distribution-driven churn process; ``None`` = resolved by
    #: the backend from the failure-free makespan.
    horizon: Optional[float] = None
    #: Workers exempt from distribution-driven churn (canonical refs).  The
    #: default keeps worker-00 — the root holder, and the critical node of
    #: the baseline designs — always available.
    spare: Tuple[Union[int, str], ...] = (0,)
    #: Uniform range for drawn per-worker speed multipliers.
    speed_range: Optional[Tuple[float, float]] = None
    mode: str = "restart"
    #: Churn-process seed; ``None`` = derive from the scenario seed.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode not in _CHURN_MODES:
            raise ValueError(f"unknown churn mode {self.mode!r} (known: {_CHURN_MODES})")
        object.__setattr__(self, "availability", tuple(self.availability))
        object.__setattr__(self, "spare", tuple(self.spare))
        if self.mean_uptime is not None and self.mean_uptime <= 0:
            raise ValueError("mean_uptime must be positive")
        if self.mean_downtime <= 0:
            raise ValueError("mean_downtime must be positive")
        if self.start_after < 0:
            raise ValueError("start_after must be non-negative")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.speed_range is not None:
            low, high = self.speed_range
            if low <= 0 or high < low:
                raise ValueError("speed_range must be (low, high) with 0 < low <= high")
            object.__setattr__(self, "speed_range", (float(low), float(high)))
        seen = set()
        for entry in self.availability:
            index = canonical_index(entry.worker)
            key = index if index is not None else str(entry.worker)
            if key in seen:
                raise ValueError(f"duplicate availability entry for worker {entry.worker!r}")
            seen.add(key)

    def needs_horizon(self) -> bool:
        """True when distribution-driven churn needs a resolved horizon."""
        return self.mean_uptime is not None and self.horizon is None

    def resolve(
        self,
        names: Sequence[str],
        *,
        default_seed: int,
        horizon: Optional[float] = None,
    ) -> "ChurnSchedule":
        """Materialise the churn process against one backend's worker names.

        Deterministic: the same spec, names and seeds always produce the
        same schedule.  Per-worker draws are seeded from the worker *index*
        (never from hashing the name — ``PYTHONHASHSEED`` randomisation
        would break reproducibility) so the schedule is identical across
        backends whose names differ only by prefix.
        """
        if horizon is None:
            horizon = self.horizon
        if self.mean_uptime is not None and horizon is None:
            raise ValueError(
                "distribution-driven churn needs a horizon (set ChurnSpec.horizon "
                "or let the backend resolve it from the failure-free makespan)"
            )
        base_seed = self.seed if self.seed is not None else default_seed
        windows: Dict[str, Tuple[Tuple[float, float], ...]] = {}
        speeds: Dict[str, float] = {}
        explicit = set()
        for entry in self.availability:
            name = translate_canonical(entry.worker, names)
            explicit.add(name)
            if entry.down:
                windows[name] = entry.down
            if entry.speed != 1.0:
                speeds[name] = entry.speed
        spare = {translate_canonical(ref, names) for ref in self.spare}
        for index, name in enumerate(names):
            stream = random.Random(base_seed * 1_000_003 + 7919 * index)
            if (
                self.mean_uptime is not None
                and name not in explicit
                and name not in spare
            ):
                assert horizon is not None
                drawn: List[Tuple[float, float]] = []
                now = self.start_after + stream.expovariate(1.0 / self.mean_uptime)
                while now < horizon:
                    down_for = stream.expovariate(1.0 / self.mean_downtime)
                    drawn.append((now, now + down_for))
                    now += down_for + stream.expovariate(1.0 / self.mean_uptime)
                if drawn:
                    windows[name] = tuple(drawn)
            if self.speed_range is not None and name not in explicit:
                low, high = self.speed_range
                speeds[name] = stream.uniform(low, high)
        return ChurnSchedule(mode=self.mode, windows=windows, speeds=speeds)


@dataclass(frozen=True)
class ChurnSchedule:
    """A resolved churn process: concrete windows per backend worker name.

    Produced by :meth:`ChurnSpec.resolve`; consumed by the backends as
    plain ``(time, worker, action)`` tuples so the simulation layer never
    imports the scenario package.
    """

    mode: str
    windows: Dict[str, Tuple[Tuple[float, float], ...]]
    speeds: Dict[str, float]

    def events(self) -> List[Tuple[float, str, str]]:
        """All ``(time, worker, action)`` events, time-ordered.

        ``action`` is ``"leave"`` or ``"return"``; a window returning at
        ``inf`` emits only its leave.
        """
        events: List[Tuple[float, str, str]] = []
        for name, intervals in self.windows.items():
            for leave, ret in intervals:
                events.append((leave, name, "leave"))
                if ret != float("inf"):
                    events.append((ret, name, "return"))
        events.sort()
        return events

    def first_leaves(self) -> Dict[str, float]:
        """Each churned worker's first leave time (for crash-only backends)."""
        return {
            name: intervals[0][0]
            for name, intervals in self.windows.items()
            if intervals
        }


def _default_algorithm_config() -> AlgorithmConfig:
    # Depth-first selection matches the paper's experiments (random trees are
    # replayed without elimination, so depth-first keeps the pools small).
    return AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST)


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment, runnable on every backend.

    The fields split into *what is computed* (``workload``, ``prune``,
    ``granularity``), *who computes it* (``n_workers``), *over what*
    (``network``, ``transport``, ``wire_generations``), *what goes wrong*
    (``failures``) and *how the mechanism is tuned* (``config``).  ``seed``
    makes the whole run deterministic on the simulated backends.

    See ``docs/SCENARIOS.md`` for the full field reference and the
    backend-support matrix.
    """

    name: str = "scenario"
    description: str = ""
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    n_workers: int = 3
    #: Number of simulation shards the workers are partitioned across
    #: (simulated backend only; see :mod:`repro.simulation.sharding`).
    shards: int = 1
    seed: int = 0
    config: AlgorithmConfig = field(default_factory=_default_algorithm_config)
    network: NetworkConfig = field(default_factory=NetworkConfig.paper_default)
    failures: Tuple[FailureSpec, ...] = ()
    #: Churn/availability process (worker leave/return, speeds, flapping);
    #: ``None`` = every worker stays up unless ``failures`` kills it.
    churn: Optional[ChurnSpec] = None
    #: Replay the tree with dynamic pruning against the incumbent.
    prune: bool = False
    #: Constant factor applied to all node times.
    granularity: float = 1.0
    #: Record a timeline trace (simulated backend only).
    enable_trace: bool = False
    #: Run-wide telemetry (structured tracing and/or the metrics registry,
    #: see :mod:`repro.obs`); ``None`` collects nothing.
    telemetry: Optional[TelemetryConfig] = None
    #: Measure the sequential reference time (enables ``speedup()``).
    compute_uniprocessor_time: bool = False
    #: Explicit sequential reference time, for sweeps that measured it once
    #: (takes precedence over ``compute_uniprocessor_time``).
    uniprocessor_time: Optional[float] = None
    #: Simulated-time cap (``None`` = backend default).
    max_sim_time: Optional[float] = None
    max_events: Optional[int] = None
    # ----- realexec-only knobs (ignored by the simulated backends) -------- #
    #: Transport between real worker processes: ``"pipe"``, ``"uds"`` or
    #: ``"tcp"`` (validated against the realexec transport registry).
    transport: str = "pipe"
    #: Per-worker wire-format generation (rolling-upgrade runs).
    wire_generations: Optional[Tuple[int, ...]] = None
    #: Artificial per-node sleep, to emulate heavier nodes on real processes.
    node_sleep: float = 0.0
    #: Wall-clock budget of a realexec run.
    max_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.shards > self.n_workers:
            raise ValueError(
                f"cannot split {self.n_workers} worker(s) across {self.shards} "
                "shards: each shard needs at least one worker "
                "(reduce --shards or raise --workers)"
            )
        if self.shards > 1 and self.enable_trace:
            raise ValueError("tracing (enable_trace) is not supported with shards > 1")
        # The valid transports live in one place: the realexec registry
        # (imported lazily — the spec layer stays import-light).
        from ..realexec.transport import validate_transport

        validate_transport(self.transport)
        if self.wire_generations is not None and len(self.wire_generations) != self.n_workers:
            raise ValueError("wire_generations must name one generation per worker")
        if self.granularity < 0:
            raise ValueError("granularity must be non-negative")
        if self.failures:
            object.__setattr__(self, "failures", tuple(self.failures))
        if self.churn is not None and self.shards > 1:
            raise ValueError(
                "churn is not supported with shards > 1 (the failure detector "
                "and rejoin path need the single-process engine)"
            )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_overrides(self, **changes) -> "Scenario":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)

    def build_tree(self) -> BasicTree:
        """Build the workload tree."""
        return self.workload.build()

    def canonical_worker_names(self) -> List[str]:
        """The backend-independent worker names (``worker-00`` …)."""
        return worker_names(self.n_workers)

    def needs_reference_run(self) -> bool:
        """True when a failure is scheduled as a fraction of the makespan.

        Also true for distribution-driven churn without an explicit horizon:
        the backend resolves the churn horizon from the same failure-free
        reference run.
        """
        if any(spec.at_fraction is not None for spec in self.failures):
            return True
        return self.churn is not None and self.churn.needs_horizon()
