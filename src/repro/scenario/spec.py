"""Declarative experiment specifications: the :class:`Scenario` dataclass.

The paper's evaluation is comparative — the problem-specific mechanism vs. a
central manager vs. DIB, under crashes, on simulated and real transports —
so an experiment must be *describable once* and runnable everywhere.  A
:class:`Scenario` is that description: a workload, a worker count, a network
model, a failure schedule, the algorithm configuration and a seed.  Nothing
in it names a backend; the same frozen object runs on the ``simulated``,
``central``, ``dib`` and ``realexec`` backends (see
:mod:`repro.scenario.backends`), which is the separation of fault-tolerance
*policy* (this spec) from *mechanism* (the backend) that De Florio's
application-layer fault-tolerance survey argues for.

Workers are named canonically (``worker-00`` … ``worker-NN``); each backend
maps those names onto its own (``cworker-…``, ``dworker-…``, ``rworker-…``),
so failure schedules and network partitions written against the canonical
names apply to every backend.  The special victim ``"critical"`` resolves to
the backend's most critical node — the central manager, the DIB root
machine, or plain ``worker-00`` for the designs that have no critical node.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from ..bnb.basic_tree import BasicTree
from ..bnb.pool import SelectionRule
from ..distributed.config import AlgorithmConfig
from ..distributed.runner import NetworkConfig, worker_names
from ..obs import TelemetryConfig

__all__ = [
    "WorkloadSpec",
    "FailureSpec",
    "Scenario",
    "TelemetryConfig",
    "CRITICAL",
    "canonical_index",
    "translate_canonical",
]

#: Victim placeholder resolving to the backend's most critical node.
CRITICAL = "critical"

#: Canonical worker names (``worker-NN``), as produced by ``worker_names``.
_CANONICAL_RE = re.compile(r"^worker-(\d+)$")


def canonical_index(victim: Union[int, str]) -> Optional[int]:
    """Worker index of a canonical reference (``2`` or ``"worker-02"``).

    ``None`` for anything else — backend-specific entity names like the
    central ``"manager"`` are not canonical.  This is the single definition
    of "canonical worker reference" shared by victim resolution, partition
    translation and the CLI's shrink logic.
    """
    if isinstance(victim, int):
        return victim
    match = _CANONICAL_RE.match(victim)
    return int(match.group(1)) if match else None


def translate_canonical(name: Union[int, str], names: Sequence[str]) -> str:
    """Map a canonical worker reference onto one backend's entity names.

    Non-canonical strings pass through verbatim; canonical references out
    of range raise — a typo'd victim or partition member must fail loudly,
    not silently run a different experiment than the spec claims.
    """
    index = canonical_index(name)
    if index is None:
        return str(name)
    if not (0 <= index < len(names)):
        raise ValueError(
            f"canonical worker reference {name!r} out of range for "
            f"{len(names)} workers"
        )
    return names[index]

#: Workload kinds :meth:`WorkloadSpec.build` understands.
_WORKLOAD_KINDS = ("tiny", "figure3", "table1", "random", "knapsack", "tree")


@dataclass(frozen=True)
class WorkloadSpec:
    """How to build the workload tree — declaratively, from a seed.

    ``kind`` selects the family:

    * ``"tiny"`` / ``"figure3"`` / ``"table1"`` — the named paper workloads
      (:mod:`repro.analysis.figures`); ``scale`` shrinks the node count;
    * ``"random"`` — a calibrated random basic tree of ``nodes`` nodes with
      ``mean_node_time`` seconds per node;
    * ``"knapsack"`` — record the basic tree of a random 0/1 knapsack
      instance with ``nodes`` items and attach a synthetic cost model of
      ``mean_node_time`` seconds per node (the paper's full experimental
      pipeline);
    * ``"tree"`` — an explicit, prebuilt :class:`~repro.bnb.basic_tree.
      BasicTree` carried in :attr:`tree` (used by benchmarks that must
      factor workload construction out of a timing).
    """

    kind: str = "random"
    #: Node count for ``random``; item count for ``knapsack``; unused else.
    nodes: int = 301
    #: Mean per-node cost in seconds (``random``/``knapsack``).
    mean_node_time: float = 0.01
    #: Workload seed (independent of the scenario's run seed).
    seed: int = 7
    #: Size multiplier: node count for the tree kinds, item count for
    #: ``knapsack``.  Ignored only by ``tree`` (the tree is already built).
    scale: float = 1.0
    #: Optional display name override.
    name: Optional[str] = None
    #: Prebuilt tree for ``kind="tree"``.
    tree: Optional[BasicTree] = None

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r} (known: {_WORKLOAD_KINDS})")
        if self.kind == "tree" and self.tree is None:
            raise ValueError("workload kind 'tree' requires an explicit tree")
        if self.nodes < 1:
            raise ValueError("nodes must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def build(self) -> BasicTree:
        """Build (or return) the workload tree."""
        if self.kind == "tree":
            assert self.tree is not None
            return self.tree
        from ..analysis.figures import figure3_tree, table1_tree, tiny_tree

        if self.kind == "tiny":
            return tiny_tree(seed=self.seed, scale=self.scale)
        if self.kind == "figure3":
            return figure3_tree(scale=self.scale, seed=self.seed)
        if self.kind == "table1":
            return table1_tree(scale=self.scale, seed=self.seed)
        if self.kind == "knapsack":
            from ..bnb.cost_model import NodeTimeModel, assign_node_times
            from ..bnb.basic_tree import record_basic_tree
            from ..bnb.knapsack import random_knapsack

            items = max(4, int(round(self.nodes * self.scale)))
            problem = random_knapsack(items, seed=self.seed)
            tree = record_basic_tree(problem, name=self.name or f"knapsack-{items}")
            return assign_node_times(
                tree, NodeTimeModel(mean=self.mean_node_time, cv=0.4, seed=self.seed)
            )
        from ..bnb.random_tree import RandomTreeSpec, generate_random_tree

        nodes = max(3, int(round(self.nodes * self.scale)))
        if nodes % 2 == 0:  # basic trees are binary: node counts are odd
            nodes += 1
        return generate_random_tree(
            RandomTreeSpec(
                nodes=nodes,
                mean_node_time=self.mean_node_time,
                seed=self.seed,
                name=self.name or f"random-{nodes}n",
            )
        )

    def describe(self) -> str:
        """One-line human description."""
        if self.kind == "tree":
            return f"prebuilt tree {getattr(self.tree, 'name', '?')}"
        if self.kind in ("tiny", "figure3", "table1"):
            return f"{self.kind} paper workload (scale {self.scale:g}, seed {self.seed})"
        if self.kind == "knapsack":
            return f"recorded knapsack tree ({self.nodes} items, seed {self.seed})"
        return f"random tree ({self.nodes} nodes, {self.mean_node_time:g}s/node, seed {self.seed})"


@dataclass(frozen=True)
class FailureSpec:
    """One failure-injection instruction, backend-agnostic.

    ``victims`` name workers by canonical name (``worker-01``), by index
    (``1``), or with the placeholder :data:`CRITICAL`.  Exactly when the
    crash happens depends on which of the timing fields is set:

    * ``at_time`` — absolute simulated time (simulated backends);
    * ``at_fraction`` — fraction of the *failure-free makespan* of the same
      scenario on the same backend (the paper's "at about 85% of the
      execution time" phrasing); the backend runs a failure-free reference
      first to resolve it;
    * ``after_seconds`` — wall-clock seconds after process start, used by the
      ``realexec`` backend (real kills cannot be scheduled in simulated
      time).  Defaults to 0.5 s when only simulated timings are given.
    """

    victims: Tuple[Union[int, str], ...]
    at_time: Optional[float] = None
    at_fraction: Optional[float] = None
    after_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.victims:
            raise ValueError("a FailureSpec needs at least one victim")
        if self.at_time is not None and self.at_fraction is not None:
            raise ValueError("set at_time or at_fraction, not both")
        if self.at_time is None and self.at_fraction is None:
            object.__setattr__(self, "at_fraction", 0.5)
        if self.at_fraction is not None and not (0.0 <= self.at_fraction <= 1.0):
            raise ValueError("at_fraction must be in [0, 1]")
        if self.at_time is not None and self.at_time < 0:
            raise ValueError("at_time must be non-negative")
        if self.after_seconds is not None and self.after_seconds < 0:
            raise ValueError("after_seconds must be non-negative")

    def resolve_victims(self, names: Sequence[str], *, critical: str) -> List[str]:
        """Map the victim specs onto one backend's entity names.

        Indices and canonical ``worker-NN`` names are validated against the
        worker count (:func:`translate_canonical`) — a typo'd or
        out-of-range victim must fail loudly, not silently produce a
        failure-free run that claims to have survived a crash.  Any other
        string passes through verbatim (backend-specific entities like the
        central ``"manager"``).
        """
        return [
            critical if victim == CRITICAL else translate_canonical(victim, names)
            for victim in self.victims
        ]

    def wall_clock_delay(self) -> float:
        """Kill delay for the realexec backend (wall-clock seconds)."""
        if self.after_seconds is not None:
            return self.after_seconds
        if self.at_time is not None:
            return self.at_time
        return 0.5


def _default_algorithm_config() -> AlgorithmConfig:
    # Depth-first selection matches the paper's experiments (random trees are
    # replayed without elimination, so depth-first keeps the pools small).
    return AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST)


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment, runnable on every backend.

    The fields split into *what is computed* (``workload``, ``prune``,
    ``granularity``), *who computes it* (``n_workers``), *over what*
    (``network``, ``transport``, ``wire_generations``), *what goes wrong*
    (``failures``) and *how the mechanism is tuned* (``config``).  ``seed``
    makes the whole run deterministic on the simulated backends.

    See ``docs/SCENARIOS.md`` for the full field reference and the
    backend-support matrix.
    """

    name: str = "scenario"
    description: str = ""
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    n_workers: int = 3
    #: Number of simulation shards the workers are partitioned across
    #: (simulated backend only; see :mod:`repro.simulation.sharding`).
    shards: int = 1
    seed: int = 0
    config: AlgorithmConfig = field(default_factory=_default_algorithm_config)
    network: NetworkConfig = field(default_factory=NetworkConfig.paper_default)
    failures: Tuple[FailureSpec, ...] = ()
    #: Replay the tree with dynamic pruning against the incumbent.
    prune: bool = False
    #: Constant factor applied to all node times.
    granularity: float = 1.0
    #: Record a timeline trace (simulated backend only).
    enable_trace: bool = False
    #: Run-wide telemetry (structured tracing and/or the metrics registry,
    #: see :mod:`repro.obs`); ``None`` collects nothing.
    telemetry: Optional[TelemetryConfig] = None
    #: Measure the sequential reference time (enables ``speedup()``).
    compute_uniprocessor_time: bool = False
    #: Explicit sequential reference time, for sweeps that measured it once
    #: (takes precedence over ``compute_uniprocessor_time``).
    uniprocessor_time: Optional[float] = None
    #: Simulated-time cap (``None`` = backend default).
    max_sim_time: Optional[float] = None
    max_events: Optional[int] = None
    # ----- realexec-only knobs (ignored by the simulated backends) -------- #
    #: Transport between real worker processes: ``"pipe"`` or ``"uds"``.
    transport: str = "pipe"
    #: Per-worker wire-format generation (rolling-upgrade runs).
    wire_generations: Optional[Tuple[int, ...]] = None
    #: Artificial per-node sleep, to emulate heavier nodes on real processes.
    node_sleep: float = 0.0
    #: Wall-clock budget of a realexec run.
    max_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.shards > self.n_workers:
            raise ValueError(
                f"cannot split {self.n_workers} worker(s) across {self.shards} "
                "shards: each shard needs at least one worker "
                "(reduce --shards or raise --workers)"
            )
        if self.shards > 1 and self.enable_trace:
            raise ValueError("tracing (enable_trace) is not supported with shards > 1")
        # The valid transports live in one place: the realexec registry
        # (imported lazily — the spec layer stays import-light).
        from ..realexec.transport import validate_transport

        validate_transport(self.transport)
        if self.wire_generations is not None and len(self.wire_generations) != self.n_workers:
            raise ValueError("wire_generations must name one generation per worker")
        if self.granularity < 0:
            raise ValueError("granularity must be non-negative")
        if self.failures:
            object.__setattr__(self, "failures", tuple(self.failures))

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def with_overrides(self, **changes) -> "Scenario":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)

    def build_tree(self) -> BasicTree:
        """Build the workload tree."""
        return self.workload.build()

    def canonical_worker_names(self) -> List[str]:
        """The backend-independent worker names (``worker-00`` …)."""
        return worker_names(self.n_workers)

    def needs_reference_run(self) -> bool:
        """True when a failure is scheduled as a fraction of the makespan."""
        return any(spec.at_fraction is not None for spec in self.failures)
