"""The unified Scenario API: one declarative entry point for every backend.

Where the repo historically exposed four divergent runners
(``run_tree_simulation``, ``run_central_simulation``, ``run_dib_simulation``,
``run_local_cluster``) with incompatible configurations and result types,
this package is the single experiment-facing surface:

* :class:`Scenario` — a frozen, backend-agnostic experiment description
  (workload, workers, network, failure schedule, algorithm config, wire
  generations, transport, seed);
* :class:`Backend` — the protocol the four registered implementations
  (``simulated``, ``central``, ``dib``, ``realexec``) satisfy;
* :class:`ScenarioResult` — the one normalised result shape (solution,
  termination, per-kind byte accounting, recovery/crash counters,
  per-worker stats) the analysis layer consumes;
* a registry of named paper scenarios (``quickstart``, ``figure3``,
  ``crash-storm``, ``rolling-upgrade``, ``late-joiner``) behind the
  ``python -m repro`` CLI.

Quickstart::

    from repro.scenario import get_scenario, run_scenario

    result = run_scenario(get_scenario("quickstart"), backend="simulated")
    assert result.terminated and result.solved_correctly

Field reference, backend matrix and CLI usage: ``docs/SCENARIOS.md``.
"""

from .backends import (
    Backend,
    CentralBackend,
    DibBackend,
    RealexecBackend,
    SimulatedBackend,
    backend_names,
    compare_backends,
    get_backend,
    register_backend,
    run_scenario,
)
from .registry import get_scenario, list_scenarios, register_scenario, scenario_names
from .result import ScenarioResult, WorkerSummary, format_comparison
from .spec import (
    CRITICAL,
    AvailabilitySpec,
    ChurnSpec,
    FailureSpec,
    Scenario,
    TelemetryConfig,
    WorkloadSpec,
)

__all__ = [
    "Scenario",
    "WorkloadSpec",
    "FailureSpec",
    "AvailabilitySpec",
    "ChurnSpec",
    "TelemetryConfig",
    "CRITICAL",
    "ScenarioResult",
    "WorkerSummary",
    "format_comparison",
    "Backend",
    "SimulatedBackend",
    "CentralBackend",
    "DibBackend",
    "RealexecBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "run_scenario",
    "compare_backends",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
]
