"""The :class:`Backend` protocol and the four registered implementations.

A backend turns one :class:`~repro.scenario.spec.Scenario` into one
:class:`~repro.scenario.result.ScenarioResult`:

* ``simulated`` — the paper's mechanism on the discrete-event engine
  (:class:`~repro.distributed.runner.DistributedBnBSimulation`);
* ``central``   — the centralised manager/worker baseline
  (:func:`~repro.baselines.central.run_central_simulation`);
* ``dib``       — the DIB-style responsibility-tracking baseline
  (:func:`~repro.baselines.dib.run_dib_simulation`);
* ``realexec``  — real OS processes over a pluggable transport
  (:class:`~repro.realexec.driver.LocalCluster`; ``Scenario(transport=
  "uds")`` selects Unix-domain sockets and ``Scenario(transport="tcp")``
  a TCP listener instead of pipes).

Backends translate the scenario's canonical worker names (``worker-NN``)
into their own naming, resolve fractional failure times by running a
failure-free reference first, and normalise their native results into the
one shared shape.  New backends register through :func:`register_backend`.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..bnb.tree_problem import TreeReplayProblem
from ..distributed.runner import NetworkConfig, run_tree_simulation
from ..obs import MetricsRegistry, Telemetry, get_logger
from ..obs.ingest import ingest_scenario_totals
from ..simulation.failures import CrashEvent
from ..simulation.network import Partition
from .result import ScenarioResult, WorkerSummary
from .spec import ChurnSchedule, Scenario, translate_canonical

logger = get_logger("scenario.runner")

__all__ = [
    "Backend",
    "register_backend",
    "get_backend",
    "backend_names",
    "run_scenario",
    "compare_backends",
    "SimulatedBackend",
    "CentralBackend",
    "DibBackend",
    "RealexecBackend",
]


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a scenario and return the normalised result."""

    name: str

    def run(self, scenario: Scenario) -> ScenarioResult:  # pragma: no cover - protocol
        ...


_BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register a backend under its ``name`` (replacing any previous one)."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look up a registered backend by name."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r} (registered: {', '.join(sorted(_BACKENDS))})"
        ) from None


def backend_names() -> List[str]:
    """Names of every registered backend."""
    return sorted(_BACKENDS)


def run_scenario(scenario: Scenario, backend: str = "simulated") -> ScenarioResult:
    """Run one scenario on one backend — the library's single entry point."""
    logger.info(
        "running scenario %r on backend %r (%d workers)",
        scenario.name,
        backend,
        scenario.n_workers,
    )
    result = get_backend(backend).run(scenario)
    logger.info(
        "scenario %r finished: makespan=%.3f terminated=%s",
        scenario.name,
        result.makespan,
        result.terminated,
    )
    return result


def compare_backends(
    scenario: Scenario, backends: Sequence[str] = ("simulated", "central", "dib")
) -> Dict[str, ScenarioResult]:
    """Run the same scenario on several backends; results keyed by backend."""
    return {name: run_scenario(scenario, name) for name in backends}


# --------------------------------------------------------------------------- #
# Shared translation helpers
# --------------------------------------------------------------------------- #
def _translate_network(network: NetworkConfig, names: Sequence[str]) -> NetworkConfig:
    """Rewrite partition groups from canonical names to backend names.

    Uses the same strict :func:`~repro.scenario.spec.translate_canonical`
    mapping as failure victims, so a partition naming a worker that does not
    exist at this worker count raises instead of silently becoming a no-op
    partition (every backend translates, including ``simulated``, where the
    mapping is the identity but the validation still applies).
    """
    if not network.partitions:
        return network
    translated = tuple(
        Partition(
            start=p.start,
            end=p.end,
            group_a=frozenset(translate_canonical(n, names) for n in p.group_a),
            group_b=frozenset(translate_canonical(n, names) for n in p.group_b),
        )
        for p in network.partitions
    )
    return replace(network, partitions=translated)


def _resolve_failures(
    scenario: Scenario,
    names: Sequence[str],
    *,
    critical: str,
    reference_makespan: Optional[float],
) -> List[CrashEvent]:
    """Turn the backend-agnostic failure specs into scheduled crash events."""
    events: List[CrashEvent] = []
    for spec in scenario.failures:
        if spec.at_time is not None:
            when = spec.at_time
        else:
            assert spec.at_fraction is not None
            if reference_makespan is None:
                raise ValueError("fractional failure times need a reference makespan")
            when = spec.at_fraction * reference_makespan
        for victim in spec.resolve_victims(names, critical=critical):
            events.append(CrashEvent(when, victim))
    return events


def _baseline_time_cap(scenario: Scenario, reference: Optional[float]) -> float:
    """Simulated-time cap for the baseline runs (they may never terminate)."""
    if scenario.max_sim_time is not None:
        return scenario.max_sim_time
    if reference is not None:
        return max(60.0, 30.0 * reference)
    return 10_000.0


def _reference_key(scenario: Scenario) -> Scenario:
    """The failure-free variant fractional failure times are measured against.

    Presentation-only fields are normalised away so scenarios differing only
    by name (or by their failure schedule) share one reference run.
    """
    return scenario.with_overrides(
        name="__reference__",
        description="",
        failures=(),
        churn=None,
        enable_trace=False,
        telemetry=None,
        compute_uniprocessor_time=False,
        uniprocessor_time=None,
    )


def _resolve_churn(
    scenario: Scenario, names: Sequence[str], backend_name: str
) -> Optional["ChurnSchedule"]:
    """Materialise the scenario's churn spec against one backend's names.

    A distribution-driven spec without an explicit horizon gets one from the
    backend's failure-free makespan (×1.5, so the churn process outlives the
    undisturbed run — mirroring how fractional failure times resolve).
    """
    if scenario.churn is None:
        return None
    horizon = scenario.churn.horizon
    if scenario.churn.needs_horizon():
        horizon = 1.5 * _reference_makespan(backend_name, _reference_key(scenario))
    return scenario.churn.resolve(names, default_seed=scenario.seed, horizon=horizon)


def _baseline_telemetry(
    scenario: Scenario, result: ScenarioResult, backend: str
) -> Optional[Telemetry]:
    """Metrics-only telemetry for the baseline backends.

    The ``central`` and ``dib`` runners have no per-layer instrumentation, so
    their telemetry is the normalised cross-backend totals folded into a
    registry; structured tracing is not supported there (documented in
    ``docs/OBSERVABILITY.md``).
    """
    cfg = scenario.telemetry
    if cfg is None or not cfg.metrics:
        return None
    return Telemetry(
        metrics=ingest_scenario_totals(MetricsRegistry(), result),
        meta={"backend": backend, "scenario": scenario.name},
    )


@lru_cache(maxsize=16)
def _reference_makespan(backend_name: str, key: Scenario) -> float:
    """Failure-free makespan of ``key`` on one backend, memoised.

    Scenarios are frozen and the runs deterministic, so equal keys always
    produce the same makespan; the cache spares sweeps (e.g. the
    fault-tolerance comparison, whose cases differ only by failure
    schedule) one redundant reference simulation per case.
    """
    return get_backend(backend_name)._failure_free_makespan(key)


# --------------------------------------------------------------------------- #
# simulated — the paper's mechanism on the discrete-event engine
# --------------------------------------------------------------------------- #
class SimulatedBackend:
    """The fully decentralised, fault-tolerant algorithm (the paper's)."""

    name = "simulated"

    def _failure_free_makespan(self, scenario: Scenario) -> float:
        names = scenario.canonical_worker_names()
        return run_tree_simulation(
            scenario.build_tree(),
            scenario.n_workers,
            config=scenario.config,
            network=_translate_network(scenario.network, names),
            seed=scenario.seed,
            granularity=scenario.granularity,
            prune=scenario.prune,
            max_sim_time=scenario.max_sim_time,
            max_events=scenario.max_events,
            compute_uniprocessor_time=False,
            shards=scenario.shards,
        ).makespan

    def run(self, scenario: Scenario) -> ScenarioResult:
        tree = scenario.build_tree()
        names = scenario.canonical_worker_names()
        # Identity mapping on this backend, but the translation still
        # validates partition members against the worker count.
        network = _translate_network(scenario.network, names)

        reference = None
        if scenario.needs_reference_run():
            reference = _reference_makespan(self.name, _reference_key(scenario))
        events = _resolve_failures(
            scenario, names, critical=names[0], reference_makespan=reference
        )
        churn = _resolve_churn(scenario, names, self.name)
        config = scenario.config
        churn_events: List[Tuple[float, str, str]] = []
        churn_mode = "restart"
        worker_speeds: Dict[str, float] = {}
        if churn is not None:
            # Churn makes fault handling emergent: peer eviction must come
            # from the live failure detector, and a terminated group must be
            # able to answer a late rejoiner — flip both on for this run.
            config = config.with_overrides(failure_detector=True, termination_echo=True)
            churn_events = churn.events()
            churn_mode = churn.mode
            worker_speeds = dict(churn.speeds)
        result = run_tree_simulation(
            tree,
            scenario.n_workers,
            config=config,
            network=network,
            failures=events,
            churn_events=churn_events,
            churn_mode=churn_mode,
            worker_speeds=worker_speeds,
            seed=scenario.seed,
            granularity=scenario.granularity,
            prune=scenario.prune,
            enable_trace=scenario.enable_trace,
            max_sim_time=scenario.max_sim_time,
            max_events=scenario.max_events,
            uniprocessor_time=scenario.uniprocessor_time,
            compute_uniprocessor_time=(
                scenario.compute_uniprocessor_time and scenario.uniprocessor_time is None
            ),
            shards=scenario.shards,
            telemetry=scenario.telemetry,
        )
        if result.telemetry is not None:
            result.telemetry.meta.setdefault("scenario", scenario.name)

        workers = {
            name: WorkerSummary(
                name=name,
                nodes_expanded=stats.nodes_expanded,
                reports_sent=stats.reports_sent,
                recoveries=stats.recovery_activations,
                best_value=stats.best_value,
                crashed=stats.crashed,
                terminated=stats.terminated,
            )
            for name, stats in result.workers.items()
        }
        return ScenarioResult(
            scenario=scenario.name,
            backend=self.name,
            n_workers=scenario.n_workers,
            makespan=result.makespan,
            best_value=result.best_value,
            reference_optimum=result.reference_optimum,
            terminated=result.all_terminated,
            crashed_workers=tuple(result.crashed_workers),
            total_nodes_expanded=result.total_nodes_expanded,
            redundant_nodes_expanded=result.redundant_nodes_expanded,
            recoveries=sum(w.recoveries for w in workers.values()),
            evictions=sum(s.peers_evicted for s in result.workers.values()),
            rejoins=sum(s.rejoins for s in result.workers.values()),
            unavailable_time=sum(s.unavailable_time for s in result.workers.values()),
            messages_total=result.network.messages_sent if result.network else 0,
            bytes_total=result.total_bytes_sent,
            bytes_by_kind=dict(result.bytes_by_kind),
            uniprocessor_time=result.uniprocessor_time,
            workers=workers,
            engine_counters=dict(result.engine_counters),
            raw=result,
            telemetry=result.telemetry,
        )


# --------------------------------------------------------------------------- #
# central — the manager/worker baseline
# --------------------------------------------------------------------------- #
class CentralBackend:
    """Centralised manager/worker design (critical node: the manager)."""

    name = "central"

    def _failure_free_makespan(self, scenario: Scenario) -> float:
        from ..baselines.central import central_worker_names, run_central_simulation

        names = central_worker_names(scenario.n_workers)
        return run_central_simulation(
            TreeReplayProblem(
                scenario.build_tree(),
                granularity=scenario.granularity,
                prune=scenario.prune,
            ),
            scenario.n_workers,
            seed=scenario.seed,
            network=_translate_network(scenario.network, names),
            max_sim_time=_baseline_time_cap(scenario, None),
        ).makespan

    def run(self, scenario: Scenario) -> ScenarioResult:
        from ..baselines.central import central_worker_names, run_central_simulation

        tree = scenario.build_tree()
        problem = TreeReplayProblem(
            tree, granularity=scenario.granularity, prune=scenario.prune
        )
        names = central_worker_names(scenario.n_workers)
        network = _translate_network(scenario.network, names)

        reference = None
        if scenario.needs_reference_run():
            reference = _reference_makespan(self.name, _reference_key(scenario))
        events = _resolve_failures(
            scenario, names, critical="manager", reference_makespan=reference
        )
        churn = _resolve_churn(scenario, names, self.name)
        if churn is not None:
            # No rejoin path in the centralised baseline: a churned worker's
            # first leave becomes a permanent crash (later windows are moot).
            for victim, when in sorted(churn.first_leaves().items()):
                events.append(CrashEvent(when, victim))
        result = run_central_simulation(
            problem,
            scenario.n_workers,
            failures=events,
            seed=scenario.seed,
            network=network,
            max_sim_time=_baseline_time_cap(scenario, reference),
        )

        workers = {
            name: WorkerSummary(
                name=name,
                nodes_expanded=result.nodes_by_worker.get(name, 0),
                best_value=result.best_value,
                crashed=name in result.crashed_workers,
                terminated=name in result.terminated_workers,
            )
            for name in names
        }
        scenario_result = ScenarioResult(
            scenario=scenario.name,
            backend=self.name,
            n_workers=scenario.n_workers,
            makespan=result.makespan,
            best_value=result.best_value,
            reference_optimum=tree.optimal_value(),
            terminated=result.terminated,
            crashed_workers=tuple(result.crashed_workers)
            + (("manager",) if result.manager_crashed else ()),
            total_nodes_expanded=result.nodes_expanded,
            recoveries=result.reassignments,
            messages_total=result.messages_sent,
            bytes_total=result.total_bytes_sent,
            bytes_by_kind=dict(result.bytes_by_kind),
            workers=workers,
            raw=result,
        )
        scenario_result.telemetry = _baseline_telemetry(
            scenario, scenario_result, self.name
        )
        return scenario_result


# --------------------------------------------------------------------------- #
# dib — the responsibility-tracking baseline
# --------------------------------------------------------------------------- #
class DibBackend:
    """DIB-style decentralised design (critical node: the root machine)."""

    name = "dib"

    def _failure_free_makespan(self, scenario: Scenario) -> float:
        from ..baselines.dib import dib_worker_names, run_dib_simulation

        names = dib_worker_names(scenario.n_workers)
        return run_dib_simulation(
            TreeReplayProblem(
                scenario.build_tree(),
                granularity=scenario.granularity,
                prune=scenario.prune,
            ),
            scenario.n_workers,
            seed=scenario.seed,
            network=_translate_network(scenario.network, names),
            max_sim_time=_baseline_time_cap(scenario, None),
        ).makespan

    def run(self, scenario: Scenario) -> ScenarioResult:
        from ..baselines.dib import dib_worker_names, run_dib_simulation

        tree = scenario.build_tree()
        problem = TreeReplayProblem(
            tree, granularity=scenario.granularity, prune=scenario.prune
        )
        names = dib_worker_names(scenario.n_workers)
        network = _translate_network(scenario.network, names)

        reference = None
        if scenario.needs_reference_run():
            reference = _reference_makespan(self.name, _reference_key(scenario))
        events = _resolve_failures(
            scenario, names, critical=names[0], reference_makespan=reference
        )
        churn = _resolve_churn(scenario, names, self.name)
        if churn is not None:
            # DIB redoes a departed worker's responsibilities but has no
            # rejoin path either: first leave = permanent crash.
            for victim, when in sorted(churn.first_leaves().items()):
                events.append(CrashEvent(when, victim))
        result = run_dib_simulation(
            problem,
            scenario.n_workers,
            failures=events,
            seed=scenario.seed,
            network=network,
            max_sim_time=_baseline_time_cap(scenario, reference),
        )

        workers = {
            name: WorkerSummary(
                name=name,
                nodes_expanded=result.nodes_by_worker.get(name, 0),
                recoveries=result.redone_by_worker.get(name, 0),
                best_value=result.best_value,
                crashed=name in result.crashed_workers,
                terminated=name in result.terminated_workers,
            )
            for name in names
        }
        scenario_result = ScenarioResult(
            scenario=scenario.name,
            backend=self.name,
            n_workers=scenario.n_workers,
            makespan=result.makespan,
            best_value=result.best_value,
            reference_optimum=tree.optimal_value(),
            terminated=result.terminated,
            crashed_workers=tuple(result.crashed_workers),
            total_nodes_expanded=result.nodes_expanded,
            recoveries=result.redone_problems,
            messages_total=result.messages_sent,
            bytes_total=result.total_bytes_sent,
            bytes_by_kind=dict(result.bytes_by_kind),
            workers=workers,
            raw=result,
        )
        scenario_result.telemetry = _baseline_telemetry(
            scenario, scenario_result, self.name
        )
        return scenario_result


# --------------------------------------------------------------------------- #
# realexec — real OS processes over a pluggable transport
# --------------------------------------------------------------------------- #
class RealexecBackend:
    """The same core objects on real ``multiprocessing`` workers.

    Honours ``Scenario.transport`` (``"pipe"``, ``"uds"`` or ``"tcp"``),
    ``wire_generations`` (rolling upgrades), ``node_sleep`` and
    ``max_seconds``.  Failure times are wall-clock
    (:meth:`~repro.scenario.spec.FailureSpec.wall_clock_delay`).
    """

    name = "realexec"

    def run(self, scenario: Scenario) -> ScenarioResult:
        from ..realexec.driver import LocalCluster

        tree = scenario.build_tree()
        cluster = LocalCluster(
            tree,
            scenario.n_workers,
            seed=scenario.seed,
            node_sleep=scenario.node_sleep,
            max_seconds=scenario.max_seconds,
            prune=scenario.prune,
            report_threshold=scenario.config.report_threshold,
            report_fanout=scenario.config.report_fanout,
            recovery_failed_threshold=scenario.config.recovery_failed_threshold,
            wire_generations=scenario.wire_generations,
            transport=scenario.transport,
            telemetry=scenario.telemetry,
        )
        kill_schedule = [
            (
                spec.wall_clock_delay(),
                spec.resolve_victims(cluster.names, critical=cluster.names[0]),
            )
            for spec in scenario.failures
        ]
        churn = None
        if scenario.churn is not None:
            # Churn times are wall-clock seconds here.  A distribution-driven
            # spec without an explicit horizon uses the run's wall-clock cap
            # (there is no cheap failure-free reference run to measure).
            # Per-worker speed multipliers are simulation-only and ignored.
            horizon = scenario.churn.horizon
            if scenario.churn.needs_horizon():
                horizon = scenario.max_seconds
            churn = scenario.churn.resolve(
                cluster.names, default_seed=scenario.seed, horizon=horizon
            )
        result = cluster.run(
            kill_schedule=kill_schedule,
            churn_schedule=churn.events() if churn is not None else (),
            churn_mode=churn.mode if churn is not None else "restart",
        )

        departed = set(result.killed) | set(result.churned_out)
        workers = {
            name: WorkerSummary(
                name=name,
                nodes_expanded=outcome.nodes_expanded,
                reports_sent=outcome.reports_sent,
                recoveries=outcome.recoveries,
                best_value=outcome.best_value,
                crashed=name in departed,
                terminated=outcome.terminated,
            )
            for name, outcome in result.outcomes.items()
        }
        for name in departed:
            workers.setdefault(name, WorkerSummary(name=name, crashed=True))
        survivors = [w for w in workers.values() if not w.crashed]
        scenario_result = ScenarioResult(
            scenario=scenario.name,
            backend=self.name,
            n_workers=scenario.n_workers,
            makespan=result.wall_time,
            best_value=result.best_value,
            reference_optimum=result.reference_optimum,
            terminated=result.surviving_terminated,
            crashed_workers=tuple(result.killed) + tuple(result.churned_out),
            total_nodes_expanded=sum(w.nodes_expanded for w in workers.values()),
            recoveries=sum(w.recoveries for w in survivors),
            rejoins=len(result.rejoined),
            unavailable_time=result.unavailable_time,
            messages_total=result.messages_forwarded,
            bytes_total=result.bytes_forwarded,
            bytes_by_kind=dict(result.bytes_by_kind),
            workers=workers,
            raw=result,
        )
        if result.telemetry is not None:
            result.telemetry.meta.setdefault("scenario", scenario.name)
            scenario_result.telemetry = result.telemetry
        return scenario_result


register_backend(SimulatedBackend())
register_backend(CentralBackend())
register_backend(DibBackend())
register_backend(RealexecBackend())
