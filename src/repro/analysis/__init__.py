"""Experiment sweeps and table/figure builders for the paper's evaluation.

* :mod:`repro.analysis.figures` — one builder per paper artefact (Figure 3,
  Table 1, Figure 4, Figures 5/6) plus the granularity sweep, the
  fault-tolerance comparison against the baselines and the reporting /
  compression ablations;
* :mod:`repro.analysis.tables` — plain-text table rendering;
* :mod:`repro.analysis.timeline` — timeline digests for the Figures 5/6
  demonstration.
"""

from .figures import (
    compression_ablation,
    default_config,
    fault_tolerance_comparison,
    figure3_breakdown,
    figure3_tree,
    figure4_series,
    figure56_scenario,
    granularity_sweep,
    reporting_ablation,
    table1_rows,
    table1_tree,
    tiny_tree,
)
from .tables import format_kv, format_table, format_wire_table, wire_comparison_rows
from .timeline import activity_summary, recovery_evidence

__all__ = [
    "default_config",
    "figure3_tree",
    "table1_tree",
    "tiny_tree",
    "figure3_breakdown",
    "table1_rows",
    "figure4_series",
    "figure56_scenario",
    "granularity_sweep",
    "fault_tolerance_comparison",
    "reporting_ablation",
    "compression_ablation",
    "format_table",
    "format_kv",
    "format_wire_table",
    "wire_comparison_rows",
    "activity_summary",
    "recovery_evidence",
]
