"""Plain-text table formatting for benchmark output and EXPERIMENTS.md.

The benchmark harness prints rows that mirror the paper's tables and figure
series; this module turns lists of dictionaries into aligned, readable text so
the output can be pasted directly into EXPERIMENTS.md (and compared against
the numbers quoted from the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv"]


def _format_value(value: object, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    rows:
        A sequence of mappings; missing keys render as ``-``.
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        ``format()`` spec applied to floats.
    title:
        Optional heading line.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in cols]]
    for row in rows:
        rendered.append([_format_value(row.get(c), float_format) for c in cols])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(cols))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(rendered[0][i].ljust(widths[i]) for i in range(len(cols)))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_kv(data: Mapping[str, object], *, float_format: str = ".3f", title: Optional[str] = None) -> str:
    """Render a single mapping as aligned ``key: value`` lines."""
    width = max((len(str(k)) for k in data), default=0)
    lines = [title] if title else []
    for key, value in data.items():
        lines.append(f"{str(key).ljust(width)} : {_format_value(value, float_format)}")
    return "\n".join(lines)
