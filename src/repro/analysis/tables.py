"""Plain-text table formatting for benchmark output and EXPERIMENTS.md.

The benchmark harness prints rows that mirror the paper's tables and figure
series; this module turns lists of dictionaries into aligned, readable text so
the output can be pasted directly into EXPERIMENTS.md (and compared against
the numbers quoted from the paper).

It also provides the encoded-bytes columns for protocol payloads:
:func:`wire_comparison_rows` puts a payload's analytic ``wire_size()`` model,
its real :mod:`repro.wire` encoded size and its pickle size side by side, so
the wire-codec benchmark (and EXPERIMENTS.md) can report how tightly the
simulator's byte model tracks the bytes the real transport actually ships.
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv", "wire_comparison_rows", "format_wire_table"]


def _format_value(value: object, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    rows:
        A sequence of mappings; missing keys render as ``-``.
    columns:
        Column order; defaults to the keys of the first row.
    float_format:
        ``format()`` spec applied to floats.
    title:
        Optional heading line.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in cols]]
    for row in rows:
        rendered.append([_format_value(row.get(c), float_format) for c in cols])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(cols))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(rendered[0][i].ljust(widths[i]) for i in range(len(cols)))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_kv(data: Mapping[str, object], *, float_format: str = ".3f", title: Optional[str] = None) -> str:
    """Render a single mapping as aligned ``key: value`` lines."""
    width = max((len(str(k)) for k in data), default=0)
    lines = [title] if title else []
    for key, value in data.items():
        lines.append(f"{str(key).ljust(width)} : {_format_value(value, float_format)}")
    return "\n".join(lines)


#: Column order of the encoded-bytes comparison table.
WIRE_COLUMNS = (
    "payload",
    "model_bytes",
    "encoded_bytes",
    "pickle_bytes",
    "model_over_encoded",
    "pickle_over_encoded",
)


def wire_comparison_rows(
    payloads: Iterable[object], *, labels: Optional[Sequence[str]] = None
) -> List[Dict[str, object]]:
    """Encoded-bytes columns for protocol payloads.

    For each payload the row holds the analytic byte model
    (``payload.wire_size()``, what the simulator's latency and traffic
    accounting charge), the real framed size produced by the
    :mod:`repro.wire` codec, the pickle size the ``realexec`` backend used to
    ship, and the two ratios that summarise them.  Payloads are classified
    with :class:`~repro.distributed.messages.MessageKinds` when possible,
    falling back to the class name.
    """
    from ..distributed.messages import MessageKinds
    from ..wire import encoded_size

    rows: List[Dict[str, object]] = []
    for index, payload in enumerate(payloads):
        if labels is not None:
            label = labels[index]
        else:
            kind = MessageKinds.of(payload)
            label = kind if kind != "unknown" else type(payload).__name__
        model = int(payload.wire_size()) if hasattr(payload, "wire_size") else None
        encoded = encoded_size(payload)
        pickled = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        rows.append(
            {
                "payload": label,
                "model_bytes": model,
                "encoded_bytes": encoded,
                "pickle_bytes": pickled,
                "model_over_encoded": None if model is None else model / encoded,
                "pickle_over_encoded": pickled / encoded,
            }
        )
    return rows


def format_wire_table(
    payloads: Iterable[object],
    *,
    labels: Optional[Sequence[str]] = None,
    title: Optional[str] = "Wire bytes: analytic model vs binary codec vs pickle",
) -> str:
    """Render :func:`wire_comparison_rows` as an aligned text table."""
    return format_table(
        wire_comparison_rows(payloads, labels=labels),
        columns=WIRE_COLUMNS,
        float_format=".2f",
        title=title,
    )
