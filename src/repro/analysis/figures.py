"""Experiment builders: one function per paper table / figure.

Each builder runs the necessary simulations and returns plain rows (lists of
dictionaries) shaped like the paper's artefact, so the benchmark harness and
EXPERIMENTS.md can print them directly with
:func:`repro.analysis.tables.format_table`.

Every builder executes through the unified Scenario API
(:mod:`repro.scenario`): experiments are declarative
:class:`~repro.scenario.spec.Scenario` objects, the fault-tolerance
comparison is literally :func:`~repro.scenario.backends.compare_backends`,
and builders that need simulator-specific detail (the Figure 3 time
categories, the Figures 5/6 traces) read the backend-native
:class:`~repro.distributed.stats.RunResult` from ``ScenarioResult.raw``.

Workload scaling
----------------
The paper's Table 1 problem is ≈79,600 expanded nodes at 3.47 s/node (≈75
hours of uniprocessor work) simulated with up to 100 processors.  Replaying a
tree of that size through a pure-Python simulator for five processor counts
takes far longer than a benchmark suite should, so every builder takes a
``scale`` parameter (default < 1) that shrinks the *node count* while keeping
the per-node granularity; the experiment records both the requested and the
effective workload so EXPERIMENTS.md can state exactly what was run.  Setting
``scale=1.0`` (or exporting ``REPRO_FULL_SCALE=1`` for the benchmark harness)
reproduces the full-size configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bnb.basic_tree import BasicTree
from ..bnb.pool import SelectionRule
from ..bnb.random_tree import RandomTreeSpec, generate_random_tree
from ..distributed.config import AlgorithmConfig
from ..distributed.runner import worker_names
from ..distributed.stats import RunResult
from ..scenario import (
    CRITICAL,
    FailureSpec,
    Scenario,
    WorkloadSpec,
    compare_backends,
    run_scenario,
)
from ..simulation.metrics import TIME_CATEGORIES

__all__ = [
    "default_config",
    "figure3_tree",
    "table1_tree",
    "tiny_tree",
    "figure3_breakdown",
    "table1_rows",
    "figure4_series",
    "figure56_scenario",
    "granularity_sweep",
    "fault_tolerance_comparison",
    "reporting_ablation",
    "compression_ablation",
]


def default_config(**overrides) -> AlgorithmConfig:
    """The algorithm configuration used by all paper-reproduction experiments.

    Random test trees are replayed without elimination (as in the paper), so
    depth-first selection keeps the pools small; everything else is the
    library default, which matches the paper's "no optimisation efforts"
    description.
    """
    config = AlgorithmConfig(selection_rule=SelectionRule.DEPTH_FIRST)
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def _tree_scenario(
    tree: BasicTree, n_workers: int, config: AlgorithmConfig, seed: int, **overrides
) -> Scenario:
    """A scenario replaying a prebuilt tree (shared by every builder)."""
    return Scenario(
        name=tree.name,
        workload=WorkloadSpec(kind="tree", tree=tree),
        n_workers=n_workers,
        seed=seed,
        config=config,
        **overrides,
    )


def _raw_run(scenario: Scenario) -> RunResult:
    """Run on the simulated backend and return the native ``RunResult``."""
    return run_scenario(scenario, backend="simulated").raw


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
def figure3_tree(*, scale: float = 1.0, seed: int = 7) -> BasicTree:
    """The Figure 3 workload: ≈3,500 expanded nodes, 0.01 s/node."""
    nodes = max(101, int(round(3501 * scale)))
    return generate_random_tree(
        RandomTreeSpec(
            nodes=nodes,
            mean_node_time=0.01,
            time_cv=0.6,
            balance=0.7,
            feasible_leaf_fraction=0.2,
            seed=seed,
            name=f"figure3-{nodes}n",
        )
    )


def table1_tree(*, scale: float = 0.15, seed: int = 11) -> BasicTree:
    """The Table 1 workload: ≈79,600 expanded nodes, 3.47 s/node.

    ``scale`` shrinks the node count (default ≈11,900 nodes) so the default
    benchmark run stays tractable in pure Python; the granularity is kept at
    the paper's 3.47 s so per-node behaviour (report sizes, recovery
    thresholds, communication-to-computation ratio) is unchanged.
    """
    nodes = max(1001, int(round(79_601 * scale)))
    return generate_random_tree(
        RandomTreeSpec(
            nodes=nodes,
            mean_node_time=3.47,
            time_cv=0.6,
            balance=0.7,
            feasible_leaf_fraction=0.15,
            seed=seed,
            name=f"table1-{nodes}n",
        )
    )


def tiny_tree(*, seed: int = 7, scale: float = 1.0) -> BasicTree:
    """The very small problem of Figures 5/6 (``scale`` shrinks/grows it)."""
    nodes = max(31, int(round(151 * scale))) | 1  # binary trees: odd counts
    return generate_random_tree(
        RandomTreeSpec(
            nodes=nodes,
            mean_node_time=0.05,
            time_cv=0.4,
            balance=0.8,
            feasible_leaf_fraction=0.3,
            seed=seed,
            name=f"tiny-{nodes}n",
        )
    )


# --------------------------------------------------------------------------- #
# Figure 3 — execution-time breakdown vs. number of processors
# --------------------------------------------------------------------------- #
def figure3_breakdown(
    *,
    processor_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    scale: float = 1.0,
    seed: int = 7,
    config: Optional[AlgorithmConfig] = None,
) -> List[Dict[str, object]]:
    """Reproduce Figure 3: per-category execution time for 1–8 processors.

    Returns one row per processor count with the makespan and the per-category
    times (in seconds, averaged per processor, like the stacked bars of the
    figure) plus the derived overhead percentage the paper quotes in the text
    (36% at 8 processors for this problem).
    """
    tree = figure3_tree(scale=scale, seed=seed)
    cfg = config if config is not None else default_config()
    uniprocessor = tree.total_node_time()
    rows: List[Dict[str, object]] = []
    for n in processor_counts:
        result = _raw_run(
            _tree_scenario(tree, n, cfg, seed + n, uniprocessor_time=uniprocessor)
        )
        row: Dict[str, object] = {
            "processors": n,
            "makespan_s": round(result.makespan, 3),
        }
        if result.metrics is not None:
            for category in TIME_CATEGORIES:
                total = result.metrics.total_time(category)
                row[f"{category}_s_per_proc"] = round(total / n, 3)
        row["overhead_pct"] = round(result.overhead_percent(), 2)
        row["speedup"] = round(result.speedup() or 0.0, 2)
        row["solved_correctly"] = result.solved_correctly
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 1 — large problem, 10..100 processors
# --------------------------------------------------------------------------- #
def table1_rows(
    *,
    processor_counts: Sequence[int] = (10, 30, 50, 70, 100),
    scale: float = 0.15,
    seed: int = 11,
    config: Optional[AlgorithmConfig] = None,
) -> List[Dict[str, object]]:
    """Reproduce Table 1: execution time, %B&B, %contraction, storage, traffic.

    The columns match the paper's table; ``execution_time_h`` additionally
    reports the makespan in hours to compare against the paper's 7.93…1.04 h
    series (with ``scale=1.0``).
    """
    tree = table1_tree(scale=scale, seed=seed)
    cfg = config if config is not None else default_config()
    uniprocessor = tree.total_node_time()
    rows: List[Dict[str, object]] = []
    for n in processor_counts:
        result = _raw_run(
            _tree_scenario(tree, n, cfg, seed + n, uniprocessor_time=uniprocessor)
        )
        rows.append(
            {
                "processors": n,
                "execution_time_h": round(result.execution_time_hours(), 4),
                "bb_time_pct": round(result.bb_time_percent(), 2),
                "contraction_time_pct": round(result.contraction_time_percent(), 3),
                "storage_total_mb": round(result.storage_total_mb(), 4),
                "storage_redundant_mb": round(result.storage_redundant_mb(), 4),
                "comm_mb_per_hour_per_proc": round(
                    result.communication_mb_per_hour_per_processor(), 4
                ),
                "speedup": round(result.speedup() or 0.0, 2),
                "redundant_work_fraction": round(result.redundant_work_fraction(), 4),
                "solved_correctly": result.solved_correctly,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 4 — speedup and communication curves (derived from Table 1 runs)
# --------------------------------------------------------------------------- #
def figure4_series(table1: Sequence[Dict[str, object]]) -> Dict[str, List[Tuple[int, float]]]:
    """Extract the two Figure 4 curves from Table 1 rows.

    Returns ``{"execution_time_h": [(procs, hours)...],
    "comm_mb_per_hour_per_proc": [(procs, MB)…]}`` — the same two series the
    paper plots (execution time vs. processors, per-processor communication
    rate vs. processors).
    """
    execution = [(int(r["processors"]), float(r["execution_time_h"])) for r in table1]
    communication = [
        (int(r["processors"]), float(r["comm_mb_per_hour_per_proc"])) for r in table1
    ]
    return {
        "execution_time_h": execution,
        "comm_mb_per_hour_per_proc": communication,
    }


# --------------------------------------------------------------------------- #
# Figures 5 & 6 — small problem, with and without crashing 2 of 3 processors
# --------------------------------------------------------------------------- #
def figure56_scenario(
    *,
    n_workers: int = 3,
    crash_fraction: float = 0.85,
    seed: int = 7,
    config: Optional[AlgorithmConfig] = None,
) -> Dict[str, object]:
    """Reproduce the Figures 5/6 demonstration.

    Runs the very small problem once without failures (Figure 5) and once with
    all processors but one crashing at ``crash_fraction`` of the failure-free
    makespan (Figure 6), and returns both results plus ASCII Gantt charts of
    the two timelines and the correctness verdicts.
    """
    tree = tiny_tree(seed=seed)
    cfg = config if config is not None else default_config()
    base = _tree_scenario(tree, n_workers, cfg, seed, enable_trace=True)
    baseline = _raw_run(base)
    crash_time = crash_fraction * baseline.makespan
    victims = worker_names(n_workers)[1:]
    # The fraction is resolved against the baseline just measured, so the
    # failure run does not trigger a redundant reference simulation.
    with_failures = _raw_run(
        base.with_overrides(
            failures=(FailureSpec(victims=tuple(victims), at_time=crash_time),)
        )
    )
    return {
        "tree": tree.name,
        "optimum": tree.optimal_value(),
        "no_failure": baseline,
        "with_failures": with_failures,
        "crash_time": crash_time,
        "victims": victims,
        "no_failure_gantt": baseline.trace.ascii_gantt() if baseline.trace else "",
        "with_failures_gantt": with_failures.trace.ascii_gantt() if with_failures.trace else "",
    }


# --------------------------------------------------------------------------- #
# Granularity sweep (Section 6.3.1 discussion)
# --------------------------------------------------------------------------- #
def granularity_sweep(
    *,
    factors: Sequence[float] = (0.1, 0.5, 1.0, 5.0, 10.0),
    n_workers: int = 8,
    scale: float = 0.5,
    seed: int = 7,
    config: Optional[AlgorithmConfig] = None,
) -> List[Dict[str, object]]:
    """Vary problem granularity by scaling all node times by a constant factor.

    Reproduces the qualitative observations of Section 6.3.1: load balance
    improves with coarser granularity, while communication (sent at
    time-driven intervals) grows relative to useful work when nodes are tiny.
    """
    tree = figure3_tree(scale=scale, seed=seed)
    cfg = config if config is not None else default_config()
    rows: List[Dict[str, object]] = []
    for factor in factors:
        result = _raw_run(
            _tree_scenario(
                tree,
                n_workers,
                cfg,
                seed,
                granularity=factor,
                uniprocessor_time=tree.total_node_time() * factor,
            )
        )
        rows.append(
            {
                "granularity": factor,
                "mean_node_time_s": round(tree.mean_node_time() * factor, 4),
                "makespan_s": round(result.makespan, 3),
                "speedup": round(result.speedup() or 0.0, 2),
                "bb_time_pct": round(result.bb_time_percent(), 2),
                "idle_time_pct": round(result.idle_time_percent(), 2),
                "messages_sent": result.network.messages_sent if result.network else 0,
                "comm_mb_per_hour_per_proc": round(
                    result.communication_mb_per_hour_per_processor(), 4
                ),
                "redundant_work_fraction": round(result.redundant_work_fraction(), 4),
                "solved_correctly": result.solved_correctly,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Fault-tolerance comparison: ours vs DIB-style vs centralised
# --------------------------------------------------------------------------- #
def fault_tolerance_comparison(
    *,
    n_workers: int = 6,
    seed: int = 13,
    scale: float = 1.0,
    config: Optional[AlgorithmConfig] = None,
) -> List[Dict[str, object]]:
    """Compare failure behaviour of the three designs on the same workload.

    Scenarios: no failures; half the processors crash; all but one crash; and
    the design-specific "critical node" crash (the DIB root machine / the
    central manager, resolved by the :data:`~repro.scenario.spec.CRITICAL`
    victim placeholder).  The paper's claim is that only its mechanism
    survives all of them.  Each row is one
    :func:`~repro.scenario.backends.compare_backends` call over the
    ``simulated``, ``dib`` and ``central`` backends; fractional crash times
    resolve against each design's own failure-free makespan, so every design
    faces the same relative failure pressure.
    """
    tree = tiny_tree(seed=seed) if scale <= 0.1 else figure3_tree(scale=0.1 * scale, seed=seed)
    cfg = config if config is not None else default_config()
    base = _tree_scenario(tree, n_workers, cfg, seed)

    cases: List[Tuple[str, Tuple[object, ...]]] = [
        ("no failures", ()),
        ("half crash", tuple(range(1, 1 + n_workers // 2))),
        ("all but one crash", tuple(range(1, n_workers))),
        ("critical node crash", (CRITICAL,)),
    ]

    rows: List[Dict[str, object]] = []
    for label, victims in cases:
        scenario = base.with_overrides(
            name=label,
            failures=(FailureSpec(victims=victims, at_fraction=0.5),) if victims else (),
        )
        results = compare_backends(scenario, ("simulated", "dib", "central"))
        ours, dib, central = results["simulated"], results["dib"], results["central"]
        rows.append(
            {
                "scenario": label,
                "crashed": len(victims),
                "ours_terminated": ours.terminated,
                "ours_correct": bool(ours.solved_correctly),
                "dib_terminated": dib.terminated,
                "dib_correct": bool(dib.terminated and dib.solved_correctly),
                "central_terminated": central.terminated,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Ablations
# --------------------------------------------------------------------------- #
def reporting_ablation(
    *,
    thresholds: Sequence[int] = (1, 5, 10, 25, 50),
    fanouts: Sequence[int] = (1, 2, 4),
    n_workers: int = 8,
    scale: float = 0.5,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Sweep the report threshold ``c`` and fanout ``m``.

    Reproduces the tuning discussion of Section 6.3.1: rarer reports reduce
    communication and contraction cost but delay termination detection.
    """
    tree = figure3_tree(scale=scale, seed=seed)
    rows: List[Dict[str, object]] = []
    for threshold in thresholds:
        for fanout in fanouts:
            cfg = default_config(report_threshold=threshold, report_fanout=fanout)
            result = _raw_run(
                _tree_scenario(
                    tree, n_workers, cfg, seed, uniprocessor_time=tree.total_node_time()
                )
            )
            rows.append(
                {
                    "report_threshold_c": threshold,
                    "report_fanout_m": fanout,
                    "makespan_s": round(result.makespan, 3),
                    "messages_sent": result.network.messages_sent if result.network else 0,
                    "comm_mb_per_hour_per_proc": round(
                        result.communication_mb_per_hour_per_processor(), 4
                    ),
                    "contraction_time_pct": round(result.contraction_time_percent(), 3),
                    "redundant_work_fraction": round(result.redundant_work_fraction(), 4),
                    "solved_correctly": result.solved_correctly,
                }
            )
    return rows


def compression_ablation(
    *,
    n_workers: int = 8,
    scale: float = 0.5,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Work-report compression on/off (Section 5.3.2's compression claim)."""
    tree = figure3_tree(scale=scale, seed=seed)
    rows: List[Dict[str, object]] = []
    for compress in (True, False):
        cfg = default_config(compress_reports=compress)
        result = _raw_run(
            _tree_scenario(
                tree, n_workers, cfg, seed, uniprocessor_time=tree.total_node_time()
            )
        )
        rows.append(
            {
                "compress_reports": compress,
                "makespan_s": round(result.makespan, 3),
                "bytes_sent_mb": round(result.total_bytes_sent / 1e6, 4),
                "comm_mb_per_hour_per_proc": round(
                    result.communication_mb_per_hour_per_processor(), 4
                ),
                "storage_total_mb": round(result.storage_total_mb(), 4),
                "solved_correctly": result.solved_correctly,
            }
        )
    return rows
