"""Timeline extraction helpers for the Figures 5/6 reproduction.

Figures 5 and 6 in the paper are Jumpshot screenshots: per-processor activity
bars over time, before and after injecting the crash of two of the three
processors.  The simulator records the same information as a
:class:`~repro.simulation.tracing.TimelineTrace`; this module distils the
trace into the facts the figures are meant to convey — who was doing what
when, when the crashes happened, and that the surviving processor picked up
the lost work and terminated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..distributed.stats import RunResult
from ..simulation.tracing import TimelineTrace

__all__ = ["activity_summary", "recovery_evidence"]


def activity_summary(trace: TimelineTrace) -> List[Dict[str, object]]:
    """One row per process: time spent in each traced state."""
    rows: List[Dict[str, object]] = []
    for process in trace.processes():
        durations = trace.state_durations(process)
        row: Dict[str, object] = {"process": process}
        for state in ("working", "idle", "load_balancing", "recovery", "crashed", "terminated"):
            row[f"{state}_s"] = round(durations.get(state, 0.0), 3)
        rows.append(row)
    return rows


def recovery_evidence(result: RunResult) -> Dict[str, object]:
    """The facts Figure 6 demonstrates, extracted from a failure run.

    Returns which workers crashed, which survived, whether a survivor
    performed recovery work (regenerated subproblems), whether termination was
    detected, and whether the final answer matches the workload's optimum.
    """
    survivors = [
        name for name, stats in result.workers.items() if not stats.crashed
    ]
    recovery_activations = sum(
        stats.recovery_activations for name, stats in result.workers.items() if name in survivors
    )
    detected = [
        name
        for name, stats in result.workers.items()
        if name in survivors and stats.terminated
    ]
    return {
        "crashed_workers": list(result.crashed_workers),
        "surviving_workers": survivors,
        "survivor_recovery_activations": recovery_activations,
        "survivors_terminated": sorted(detected),
        "all_survivors_terminated": result.all_terminated,
        "solved_correctly": result.solved_correctly,
        "makespan_s": round(result.makespan, 3),
    }
