"""The simulated worker: one process of the distributed B&B computation.

A :class:`WorkerEntity` combines every piece of the algorithm described in
Section 5 of the paper:

* a local pool of active subproblems and the shared node-expansion logic
  (:mod:`repro.bnb`), driven asynchronously — the worker only looks at its
  message queue between node expansions, exactly as the paper's simulator
  does ("each process, after it has solved a B&B subproblem, checks to see
  whether any messages are pending");
* on-demand load balancing: a starving worker asks a randomly chosen member
  for work, the receiver donates part of its pool if it has "enough";
* the fault-tolerance mechanism: completed codes are tracked and gossiped as
  compressed work reports, received reports are merged and contracted, and a
  worker that stays starved complements its table and regenerates an
  uncompleted subproblem from its self-contained code;
* table dissemination: occasional table gossip to one random member — by
  default as per-peer *deltas* (only the codes the chosen peer is not known
  to cover, acknowledged with digest echoes; see
  :meth:`~repro.core.completion.CompletionTracker.build_delta_snapshot`),
  or as the paper's literal whole-table snapshots when
  :attr:`~repro.distributed.config.AlgorithmConfig.delta_gossip` is off;
* almost-implicit termination detection: when a worker's table contracts to
  the root code it broadcasts one final root report and stops;
* incumbent sharing: the best-known solution piggy-backs on every message.

Every unit of algorithmic work is converted into simulated time through the
cost knobs of :class:`~repro.distributed.config.AlgorithmConfig` and charged
to one of the paper's five accounting categories (B&B, communication, list
contraction, load balancing, idle), which is what the Figure 3 / Table 1
benchmarks read back out.
"""

from __future__ import annotations

import random
from collections.abc import Sequence as _SequenceABC
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..bnb.pool import SubproblemPool
from ..bnb.problem import BranchAndBoundProblem, Subproblem
from ..bnb.sequential import NodeExpander
from ..core.arena import TrieArena
from ..core.completion import CompletionTracker
from ..core.encoding import PathCode
from ..core.recovery import RecoveryPolicy
from ..core.termination import TerminationDetector, make_root_report
from ..core.work_report import BestSolution
from ..gossip.failure_detector import GossipFailureDetector
from ..simulation.entity import Entity, QueuedMessage
from ..simulation.metrics import MetricsCollector
from ..simulation.tracing import TimelineTrace
from .config import AlgorithmConfig
from .messages import (
    DeltaGossipMsg,
    HeartbeatGossipMsg,
    MessageKinds,
    TableGossipAck,
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from .stats import WorkerRunStats

__all__ = ["PeerRoster", "WorkerEntity", "DELTA_BYTES_BUCKETS"]

#: Histogram buckets for gossip-delta wire sizes (bytes).
DELTA_BYTES_BUCKETS = (64, 256, 1024, 4096, 16384, 65536)


class PeerRoster(_SequenceABC):
    """Constant-memory sequence view of "every member except me".

    A 10k-worker group holding one private ``peers`` list per worker costs
    O(n²) references before the first event fires.  This view shares the
    runner's single roster list and skips the owner by index arithmetic, so
    a worker's peer set costs O(1) memory while behaving exactly like the
    list it replaces: same order, same ``len``, same indexing — which keeps
    ``rng.choice`` / ``rng.sample`` draws bit-identical to the seed engine.

    Eviction is the rare path (it only happens once a membership layer
    declares a peer dead), so :meth:`remove` materialises a private list on
    first use and delegates from then on.
    """

    __slots__ = ("_members", "_owner", "_skip", "_materialized")

    def __init__(self, members: Sequence[str], owner: str) -> None:
        self._members = members
        self._owner = owner
        try:
            self._skip = members.index(owner)
        except ValueError:
            self._skip = len(members)
        self._materialized: Optional[List[str]] = None

    def _list(self) -> List[str]:
        if self._materialized is None:
            self._materialized = [m for m in self._members if m != self._owner]
        return self._materialized

    def __len__(self) -> int:
        if self._materialized is not None:
            return len(self._materialized)
        return len(self._members) - (1 if self._skip < len(self._members) else 0)

    def __getitem__(self, index: Union[int, slice]):
        if self._materialized is not None:
            return self._materialized[index]
        if isinstance(index, slice):
            return self._list()[index]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("peer index out of range")
        return self._members[index if index < self._skip else index + 1]

    def __contains__(self, name: object) -> bool:
        if self._materialized is not None:
            return name in self._materialized
        return name != self._owner and name in self._members

    def __iter__(self):
        if self._materialized is not None:
            return iter(self._materialized)
        owner = self._owner
        return (m for m in self._members if m != owner)

    def remove(self, name: str) -> None:
        self._list().remove(name)

    def add(self, name: str) -> None:
        """Re-admit a previously removed peer (appended at the end)."""
        if name == self._owner or name in self:
            return
        self._list().append(name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PeerRoster):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable sequence semantics, like the list it replaces

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return f"PeerRoster(n={len(self)}, owner={self._owner!r})"


class WorkerEntity(Entity):
    """One simulated process running the fault-tolerant distributed B&B.

    Parameters
    ----------
    name:
        Unique worker name (also its network address).
    problem:
        The optimisation problem (typically a
        :class:`~repro.bnb.tree_problem.TreeReplayProblem`).  Every worker
        holds the full initial data, as in the paper (handed out by a gossip
        server on join).
    config:
        Algorithm tunables.
    members:
        Names of all participating workers (static membership, as in the
        paper's simulations).  The worker excludes itself when choosing
        victims and report targets.
    rng:
        Seeded random stream for this worker's choices.
    metrics, trace:
        Shared collectors owned by the runner.
    initial_work:
        Subproblems this worker starts with (usually only worker 0 receives
        the root problem).
    expected_node_cost:
        A-priori estimate of the per-node cost (e.g. the workload tree's mean
        node time).  Seeds the moving average used by the adaptive recovery
        threshold so that a worker that has not expanded anything yet does not
        treat ordinary start-up starvation as lost work.
    """

    def __init__(
        self,
        name: str,
        problem: BranchAndBoundProblem,
        config: AlgorithmConfig,
        members: Sequence[str],
        *,
        rng: Optional[random.Random] = None,
        metrics: Optional[MetricsCollector] = None,
        trace: Optional[TimelineTrace] = None,
        initial_work: Sequence[Subproblem] = (),
        expected_node_cost: float = 0.0,
        arena: Optional[TrieArena] = None,
        tracer: Optional[Any] = None,
        speed: float = 1.0,
        obs_metrics: Optional[Any] = None,
    ) -> None:
        super().__init__(name)
        self.problem = problem
        self.config = config
        # Share the runner's roster rather than copying it: a 10k-worker run
        # would otherwise hold 10k private copies (O(n^2) references).
        self.members = members if isinstance(members, (list, tuple)) else list(members)
        self.peers = PeerRoster(self.members, name)
        self.rng = rng if rng is not None else random.Random(0)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.metrics.register(name)
        self._time_account = self.metrics.time[name]
        self.trace = trace
        #: Optional :class:`repro.obs.Tracer` for gossip/recovery telemetry
        #: (``None`` keeps the hot paths on one attribute check).
        self.tracer = tracer
        #: Relative machine speed: node-expansion cost divides by this, so a
        #: 2.0 worker models a machine twice as fast as the calibration host.
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.speed = speed
        #: Optional :class:`repro.obs.MetricsRegistry` shared across the run.
        #: Histograms are resolved once here so the observe sites stay cheap.
        self.obs_metrics = obs_metrics
        self._delta_bytes_hist = (
            obs_metrics.histogram("gossip_delta_bytes", buckets=DELTA_BYTES_BUCKETS)
            if obs_metrics is not None
            else None
        )
        self._eviction_latency_hist = (
            obs_metrics.histogram("fd_eviction_latency_seconds")
            if obs_metrics is not None
            else None
        )

        # Algorithm state ------------------------------------------------- #
        self.expander = NodeExpander(problem)
        self.pool: SubproblemPool = SubproblemPool(
            config.selection_rule, minimize=problem.minimize
        )
        self.tracker = CompletionTracker(
            name,
            report_threshold=config.report_threshold,
            report_staleness=config.report_staleness,
            arena=arena,
        )
        self.termination = TerminationDetector(self.tracker)
        self.recovery = RecoveryPolicy(
            failed_request_threshold=config.recovery_failed_threshold,
            idle_time_threshold=config.recovery_idle_threshold,
            strategy=config.recovery_strategy,
            rng=self.rng,
        )
        self.incumbent: BestSolution = BestSolution()
        self.stats = WorkerRunStats(name=name)
        self._initial_work = list(initial_work)

        # Scheduling state ------------------------------------------------- #
        self._step_scheduled = False
        self._idle_since: Optional[float] = None
        self._outstanding_request: Optional[Tuple[str, float, int]] = None
        self._request_seq = 0
        self._last_lb_attempt: Optional[float] = None
        self._last_table_gossip = 0.0
        self._idle_poll_armed = False
        self._finished = False
        self._steps = 0
        self._step_label = f"{name}:step"
        self._expanded_codes: set = set()
        #: Exponential moving average of recent node costs, used to scale the
        #: recovery starvation threshold to the workload's granularity.
        self._avg_node_cost = max(0.0, expected_node_cost)
        #: Time at which this worker first found itself starved with nothing
        #: known about the computation (used by the bootstrap gate).
        self._starved_blank_since: Optional[float] = None

        # Churn / failure detection state ---------------------------------- #
        #: Restart count: bumped by :meth:`reset_for_rejoin`, gossiped so
        #: peers can distinguish a restarted worker's reset heartbeat counter
        #: from a stale one.
        self.incarnation = 0
        #: Highest incarnation observed per member (sparse: zero omitted).
        self._known_incarnations: Dict[str, int] = {}
        #: Live failure detector (created in :meth:`on_start` when
        #: ``config.failure_detector`` is on).
        self._fd: Optional[GossipFailureDetector] = None
        #: Sequence guard for the ``fd-tick`` timer chain (a revival arms a
        #: fresh chain; stale timers carry an old sequence and are ignored).
        self._fd_seq = 0
        #: ``gossip_views_pruned`` accumulated by trackers discarded on
        #: restart (the live tracker's counter restarts from zero).
        self._views_pruned_base = 0
        #: Recovery activations accumulated by policies discarded on restart.
        self._recoveries_base = 0
        self._unavailable_since: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #
    @property
    def terminated(self) -> bool:
        """True once this worker has detected global termination."""
        return self.termination.terminated

    def _now(self) -> float:
        assert self.engine is not None
        return self.engine.now

    def _charge(self, category: str, amount: float) -> float:
        """Charge simulated time to an accounting category and return it."""
        if amount > 0:
            # Equivalent to ``self.metrics.charge(self.name, category,
            # amount)`` against the account registered in ``__init__``, with
            # the per-call name lookup and category validation hoisted out of
            # this hot path (every message and step charges something).
            account = self._time_account
            setattr(account, category, getattr(account, category) + amount)
            return amount
        return 0.0

    def _trace_state(self, state: str) -> None:
        if self.trace is not None:
            self.trace.set_state(self.name, state, self._now())

    def _update_incumbent(self, value: Optional[float], origin: str) -> bool:
        """Adopt a better incumbent value; returns True when it improved."""
        if value is None:
            return False
        if self.problem.is_improvement(value, self.incumbent.value):
            self.incumbent = BestSolution(value=value, origin=origin)
            return True
        return False

    def _absorb_best(self, payload) -> None:
        if not self.config.share_best_solution:
            return
        best = getattr(payload, "best", None)
        if isinstance(best, BestSolution) and best.value is not None:
            self._update_incumbent(best.value, best.origin or "remote")

    def _my_best(self) -> BestSolution:
        return self.incumbent if self.config.share_best_solution else BestSolution()

    def _update_storage_metric(self) -> None:
        footprint = self.tracker.storage_bytes() + self.pool.storage_bytes()
        redundant = int(round(footprint * self.tracker.remote_information_share()))
        self.metrics.update_storage(self.name, footprint, redundant)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def evict_peer(self, peer: str) -> bool:
        """Forget a peer the membership layer has declared dead.

        Called by whoever drives membership for this worker (a failure
        detector's cleanup pass, a membership view removal): the peer leaves
        the report/gossip/load-balancing target lists and its delta-gossip
        :class:`~repro.core.completion.PeerGossipView` — the per-peer
        ``known`` trie that otherwise grows with the group size — is dropped
        (counted in ``stats.gossip_views_pruned``).  A false suspicion only
        costs one full-table first delta when the peer reappears.

        Returns ``True`` when anything was actually forgotten.
        """
        removed = False
        if peer in self.peers:
            self.peers.remove(peer)
            removed = True
        pruned = self.tracker.prune_peer_view(peer)
        self._sync_views_pruned()
        return removed or pruned

    def _sync_views_pruned(self) -> None:
        self.stats.gossip_views_pruned = (
            self._views_pruned_base + self.tracker.gossip_views_pruned
        )

    # ------------------------------------------------------------------ #
    # Live failure detection (heartbeat gossip)
    # ------------------------------------------------------------------ #
    def _start_failure_detector(self) -> None:
        """Create the heartbeat detector, pre-seeded with the full roster."""
        cfg = self.config
        self._fd = GossipFailureDetector(
            self.name,
            fail_timeout=cfg.fd_fail_timeout,
            cleanup_timeout=cfg.fd_cleanup_timeout,
            gossip_interval=cfg.fd_heartbeat_interval,
            fanout=cfg.fd_fanout,
            rng=self.rng,
        )
        now = self._now()
        self._fd.merge(
            tuple((member, 0) for member in self.members if member != self.name), now
        )
        self._arm_fd_timer()

    def _arm_fd_timer(self) -> None:
        self._fd_seq += 1
        self.set_timer(self.config.fd_heartbeat_interval, f"fd-tick:{self._fd_seq}")

    def _incarnation_digest(self) -> Tuple[Tuple[str, int], ...]:
        """Sparse ``(member, incarnation)`` pairs (only non-zero entries)."""
        if not self._known_incarnations:
            return ()
        return tuple(sorted(self._known_incarnations.items()))

    def _membership_round(self) -> float:
        """One heartbeat round: tick, gossip, and evict stale peers."""
        fd = self._fd
        assert fd is not None
        now = self._now()
        digest = fd.tick(now)
        cost = 0.0
        targets = fd.choose_targets(now)
        if targets:
            message = HeartbeatGossipMsg(
                sender=self.name,
                digest=digest,
                incarnations=self._incarnation_digest(),
                best=self._my_best(),
            )
            for target in targets:
                self.send(target, message)
                cost += self._charge("communication", self.config.msg_send_cost)
            self.stats.heartbeats_sent += 1
        # Staleness must be read *before* cleanup deletes the entries.
        stale = {name: fd.staleness(name, now) for name in fd.suspected(now)}
        for peer in fd.cleanup(now):
            if not self.evict_peer(peer):
                continue
            self.stats.peers_evicted += 1
            if self._eviction_latency_hist is not None:
                staleness = stale.get(peer)
                if staleness is not None:
                    self._eviction_latency_hist.observe(staleness)
            if self.tracer is not None:
                self.tracer.event(
                    "peer_evicted",
                    ts=now,
                    process=self.name,
                    category="membership",
                    args={"peer": peer},
                )
        return cost

    def _readmit_peer(self, peer: str) -> None:
        """Put an evicted (or restarted) peer back on the target lists."""
        if peer == self.name or peer in self.peers or peer not in self.members:
            return
        self.peers.add(peer)
        self.stats.peers_readmitted += 1
        if self.tracer is not None:
            self.tracer.event(
                "peer_readmitted",
                ts=self._now(),
                process=self.name,
                category="membership",
                args={"peer": peer},
            )

    def _on_peer_restarted(self, peer: str, now: float) -> None:
        """A peer restarted (higher incarnation): reset everything we knew.

        The restarted process lost its completed-table view, so the per-peer
        acknowledged basis must be dropped — the next delta to it goes
        through the gossip *first-contact* path (one bounded full-basis
        delta), never a whole-table snapshot.  Its heartbeat counter also
        restarted from zero, which plain digest merging would read as stale.
        """
        self.tracker.prune_peer_view(peer)
        self._sync_views_pruned()
        if self._fd is not None:
            self._fd.restart_member(peer, now)
        self._readmit_peer(peer)

    def _handle_heartbeat(self, msg: HeartbeatGossipMsg, receive_cost: float) -> float:
        cost = self._charge("communication", receive_cost)
        fd = self._fd
        if fd is None:
            return cost
        now = self._now()
        for name, incarnation in msg.incarnations:
            if name == self.name:
                continue
            if incarnation > self._known_incarnations.get(name, 0):
                self._known_incarnations[name] = incarnation
                self._on_peer_restarted(name, now)
        for name in fd.merge(msg.digest, now):
            self._readmit_peer(name)
        return cost

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def on_start(self) -> None:
        for sub in self._initial_work:
            self.pool.push(sub, bound=self.problem.bound(sub.state))
        self._last_table_gossip = self._now()
        self._trace_state("idle" if not self.pool else "working")
        if self.config.failure_detector:
            self._start_failure_detector()
        self._schedule_step(0.0)

    def on_crash(self) -> None:
        self.stats.crashed = True
        self.stats.crashed_at = self._now()
        self._trace_state("crashed")

    def on_suspend(self) -> None:
        """Churn leave: go dark (messages drop, timers die) but survivably."""
        now = self._now()
        self.stats.leaves += 1
        self._unavailable_since = now
        # Until (unless) the worker returns, it is indistinguishable from a
        # crashed one — result aggregation treats it accordingly.
        self.stats.crashed = True
        self.stats.crashed_at = now
        self._trace_state("offline")
        if self.tracer is not None:
            self.tracer.event(
                "churn_leave", ts=now, process=self.name, category="churn"
            )

    def on_revive(self) -> None:
        """Churn return: close the unavailability window and resume."""
        now = self._now()
        self.stats.rejoins += 1
        self.stats.crashed = False
        self.stats.crashed_at = None
        if self._unavailable_since is not None:
            self.stats.unavailable_time += now - self._unavailable_since
            self._unavailable_since = None
        # Every timer chain died while the entity was down (set_timer guards
        # on ``alive``), so the scheduling flags they maintained are stale.
        self._step_scheduled = False
        self._idle_poll_armed = False
        self._idle_since = None
        self._outstanding_request = None
        self._last_lb_attempt = None
        self._starved_blank_since = None
        self._last_table_gossip = now
        if self.config.failure_detector:
            if self._fd is None:
                self._start_failure_detector()
            else:
                # Suspend-mode return: our heartbeat view of every peer is
                # uniformly stale.  Give the whole roster a fresh grace
                # period (counter reset to 0 so any real digest refreshes
                # it) instead of mass-evicting on the first tick back.
                for peer in list(self._fd.members()):
                    if peer != self.name:
                        self._fd.restart_member(peer, now)
                self._arm_fd_timer()
        self._trace_state("idle")
        if self.tracer is not None:
            self.tracer.event(
                "churn_return", ts=now, process=self.name, category="churn"
            )
        if not self.terminated:
            self._schedule_step(0.0)

    def reset_for_rejoin(self) -> None:
        """Wipe volatile algorithm state before a ``restart``-mode revival.

        Models a reboot: the pool, the completed-table view, termination
        state and the incumbent are all lost; only identity, accumulated
        statistics and the shared arena survive.  The incarnation bump is
        what tells peers (via heartbeat gossip) to reset their view of us,
        so our re-convergence rides the delta-gossip first-contact path.
        """
        self.incarnation += 1
        self._known_incarnations[self.name] = self.incarnation
        self._views_pruned_base += self.tracker.gossip_views_pruned
        self._recoveries_base += self.recovery.stats.activations
        arena = self.tracker.arena
        self.pool = SubproblemPool(
            self.config.selection_rule, minimize=self.problem.minimize
        )
        self.tracker = CompletionTracker(
            self.name,
            report_threshold=self.config.report_threshold,
            report_staleness=self.config.report_staleness,
            arena=arena,
        )
        self.termination = TerminationDetector(self.tracker)
        self.recovery = RecoveryPolicy(
            failed_request_threshold=self.config.recovery_failed_threshold,
            idle_time_threshold=self.config.recovery_idle_threshold,
            strategy=self.config.recovery_strategy,
            rng=self.rng,
        )
        self.incumbent = BestSolution()
        # A restarted worker re-reads the full membership list (the paper's
        # join-time gossip-server handshake): evictions it made before the
        # restart are forgotten with the rest of its volatile state.
        self.peers = PeerRoster(self.members, self.name)
        self._fd = None
        self._finished = False
        self.stats.terminated = False
        self.stats.terminated_at = None
        self.stats.terminated_via = None

    def on_message_queued(self, message: QueuedMessage) -> None:
        # A worker busy expanding nodes leaves the message in its queue until
        # the current expansion finishes (a step is already scheduled).  An
        # idle worker reacts immediately.
        if self.alive and not self.terminated and not self._step_scheduled:
            self._schedule_step(0.0)
        elif (
            self.alive
            and self.terminated
            and self.config.termination_echo
            and not isinstance(message.payload, (WorkReportMsg, TableGossipAck))
        ):
            # Termination echo: a terminated worker answers late traffic (a
            # rejoined worker bootstrapping) with the final root report, so
            # the sender converges immediately instead of re-deriving
            # termination alone.  Never echo a report (two terminated
            # workers would ping-pong root reports forever) or an ack.
            self.inbox.clear()
            self.send(
                message.sender,
                WorkReportMsg(make_root_report(self.name, best=self._my_best())),
            )
            self._charge("communication", self.config.msg_send_cost)

    def on_wakeup(self, reason: str) -> None:
        if not self.alive or self.terminated:
            return
        if reason.startswith("lb-timeout:"):
            seq = int(reason.split(":", 1)[1])
            if self._outstanding_request is not None and self._outstanding_request[2] == seq:
                # The request went unanswered (lost message, dead or busy
                # victim): that counts as a failed attempt for the recovery
                # policy's starvation rule.
                self._outstanding_request = None
                self.recovery.note_request_failed(self._now())
            if not self._step_scheduled:
                self._schedule_step(0.0)
        elif reason == "idle-poll":
            self._idle_poll_armed = False
            if not self._step_scheduled:
                self._schedule_step(0.0)
        elif reason.startswith("fd-tick:"):
            seq = int(reason.split(":", 1)[1])
            if self._fd is not None and seq == self._fd_seq:
                self._membership_round()
                self._arm_fd_timer()

    # ------------------------------------------------------------------ #
    # Step scheduling
    # ------------------------------------------------------------------ #
    def _schedule_step(self, delay: float) -> None:
        if not self.alive or self.terminated or self._step_scheduled:
            return
        self._step_scheduled = True
        assert self.engine is not None
        self.engine.post(delay, self._step, label=self._step_label)

    def _step(self) -> None:
        self._step_scheduled = False
        if not self.alive or self.terminated:
            return
        self._steps += 1
        now = self._now()

        # Close an idle period if one was open.
        if self._idle_since is not None:
            self._charge("idle", now - self._idle_since)
            self._idle_since = None

        overhead = 0.0
        # Dirty-flag fast path: most steps of a busy worker arrive with an
        # empty inbox and nothing due to send, so the message and report
        # machinery is only entered when there is actually work for it.
        if self.inbox:
            overhead += self._process_messages()
            if self.terminated:
                # Termination may have been detected while merging reports;
                # the detector knows whether this worker still owes the final
                # root broadcast (only the "local" detection path does).
                self._finish_termination(broadcast=self.config.send_root_report)
                return
            overhead += self._maybe_send_reports()
        elif self._report_work_due(now):
            overhead += self._maybe_send_reports()
        else:
            self.stats.fast_path_steps += 1

        if self._check_local_termination():
            return

        if not self.pool:
            if self.config.flush_report_when_idle and self.tracker.pending_report_size:
                overhead += self._flush_report()
                if self._check_local_termination():
                    return
            overhead += self._handle_starvation()
            if not self.pool:
                # Still nothing to do: go idle until a message or poll timer
                # wakes us up.
                self._go_idle(now + overhead, overhead)
                return

        # Expand the next subproblem that is not already known completed.
        sub = self._next_uncovered_subproblem()
        if sub is None:
            self._go_idle(now + overhead, overhead)
            return

        self._trace_state("working")
        cost = self._expand(sub)
        self._update_storage_metric()

        if self._check_local_termination():
            return
        self._schedule_step(overhead + cost)

    def _go_idle(self, idle_from: float, overhead: float) -> None:
        """Enter the idle state and make sure exactly one poll timer is armed."""
        self._idle_since = idle_from
        self._trace_state("idle")
        if not self._idle_poll_armed:
            self._idle_poll_armed = True
            self.set_timer(max(overhead, 0.0) + self.config.idle_poll_interval, "idle-poll")

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def _next_uncovered_subproblem(self) -> Optional[Subproblem]:
        """Pop subproblems until one not already covered by the table is found."""
        # Hoisted lookups: this loop may discard long runs of covered
        # subproblems after a big report merge, and ``covers`` is the hot
        # O(depth) trie probe.
        pool = self.pool
        abort_redundant = self.config.abort_redundant_work
        covers = self.tracker.table.covers
        active_recoveries = self.recovery.active_recoveries
        while pool:
            sub = pool.pop()
            if abort_redundant and covers(sub.code):
                # Someone else already completed this subtree: drop it and
                # record the aborted (would-have-been-redundant) work.
                self.stats.nodes_skipped_covered += 1
                if sub.code in active_recoveries:
                    self.recovery.note_recovery_aborted(sub.code)
                    self.stats.recovery_aborted += 1
                continue
            return sub
        return None

    def _expand(self, sub: Subproblem) -> float:
        """Expand one subproblem; returns the B&B time charged."""
        outcome = self.expander.expand(sub, self.incumbent.value)
        self.stats.nodes_expanded += 1
        if outcome.status == "pruned":
            self.stats.nodes_pruned += 1
        if sub.code in self._expanded_codes:
            self.stats.redundant_expansions += 1
        else:
            self._expanded_codes.add(sub.code)

        if outcome.incumbent_value is not None:
            self._update_incumbent(outcome.incumbent_value, self.name)

        now = self._now()
        tracker = self.tracker
        table_stats = tracker.table.stats
        active_recoveries = self.recovery.active_recoveries
        before = table_stats.elementary_operations()
        for code in outcome.completed:
            tracker.record_completed(code, now=now)
            self.stats.completed_codes_local += 1
            if code in active_recoveries:
                self.recovery.note_recovery_finished(code, redundant=False)
        ops = table_stats.elementary_operations() - before
        self._charge("contraction", ops * self.config.contraction_cost_per_op)

        for child, child_bound in outcome.children:
            self.pool.push(child, bound=child_bound)

        # Heterogeneous machine speeds: a faster worker spends less simulated
        # time on the same node (the cost model is calibrated at speed 1.0).
        cost = outcome.cost if self.speed == 1.0 else outcome.cost / self.speed
        if cost > 0:
            if self._avg_node_cost <= 0:
                self._avg_node_cost = cost
            else:
                self._avg_node_cost = 0.9 * self._avg_node_cost + 0.1 * cost

        return self._charge("bb", cost)

    # ------------------------------------------------------------------ #
    # Message processing
    # ------------------------------------------------------------------ #
    def _process_messages(self) -> float:
        """Handle every queued message; returns the overhead time charged."""
        overhead = 0.0
        while self.inbox and self.alive:
            message = self.inbox.popleft()
            overhead += self._handle_message(message)
            if self.terminated:
                break
        return overhead

    def _handle_message(self, message: QueuedMessage) -> float:
        payload = message.payload
        now = self._now()
        receive_cost = (
            self.config.msg_processing_base
            + self.config.msg_processing_per_byte * message.size_bytes
        )
        self._absorb_best(payload)

        if isinstance(payload, WorkRequest):
            return self._charge("load_balancing", receive_cost) + self._answer_work_request(payload)
        if isinstance(payload, WorkGrant):
            return self._charge("load_balancing", receive_cost) + self._accept_work_grant(payload)
        if isinstance(payload, WorkDenied):
            self._outstanding_request = None
            self.recovery.note_request_failed(now)
            return self._charge("load_balancing", receive_cost)
        if isinstance(payload, WorkReportMsg):
            cost = self._charge("communication", receive_cost)
            return cost + self._merge_report(payload)
        if isinstance(payload, TableGossipMsg):
            cost = self._charge("communication", receive_cost)
            return cost + self._merge_snapshot(payload)
        if isinstance(payload, DeltaGossipMsg):
            cost = self._charge("communication", receive_cost)
            return cost + self._merge_delta(payload)
        if isinstance(payload, TableGossipAck):
            self.tracker.note_snapshot_ack(payload.sender, payload.digest)
            if payload.table_digest and payload.table_digest == self.tracker.table_digest_now():
                # The acker's table equals ours: it covers everything we have.
                self.tracker.note_peer_converged(payload.sender)
            return self._charge("communication", receive_cost)
        if isinstance(payload, HeartbeatGossipMsg):
            return self._handle_heartbeat(payload, receive_cost)
        # Unknown payloads (e.g. membership gossip when layered) are charged
        # as plain communication handling.
        return self._charge("communication", receive_cost)

    def _merge_report(self, msg: WorkReportMsg) -> float:
        now = self._now()
        before_ops = self.tracker.table.stats.elementary_operations()
        self.tracker.merge_report(msg.report)
        if self.config.delta_gossip:
            # Reverse-channel learning: the sender provably covers every code
            # it just reported, so future deltas to it can skip them.
            self.tracker.note_peer_covers(msg.report.sender, msg.report.codes)
        newly_terminated = self.termination.observe_report(msg.report, now)
        ops = self.tracker.table.stats.elementary_operations() - before_ops
        cost = self._charge("contraction", ops * self.config.contraction_cost_per_op)
        if newly_terminated:
            self.stats.terminated_via = self.termination.detected_via
        self._abort_covered_recoveries()
        return cost

    def _merge_snapshot(self, msg: TableGossipMsg) -> float:
        now = self._now()
        before_ops = self.tracker.table.stats.elementary_operations()
        self.tracker.merge_snapshot(msg.snapshot)
        if self.config.delta_gossip:
            self.tracker.note_peer_covers(msg.snapshot.sender, msg.snapshot.codes)
        self.termination.observe_report(msg.snapshot.as_report(), now)
        ops = self.tracker.table.stats.elementary_operations() - before_ops
        cost = self._charge("contraction", ops * self.config.contraction_cost_per_op)
        self._abort_covered_recoveries()
        return cost

    def _merge_delta(self, msg: DeltaGossipMsg) -> float:
        """Merge a received delta gossip and acknowledge it to the sender."""
        now = self._now()
        delta = msg.delta
        before_ops = self.tracker.table.stats.elementary_operations()
        self.tracker.merge_delta(delta)
        self.tracker.note_peer_covers(delta.sender, delta.codes)
        self.termination.observe_report(delta.as_report(), now)
        ops = self.tracker.table.stats.elementary_operations() - before_ops
        cost = self._charge("contraction", ops * self.config.contraction_cost_per_op)
        my_digest = self.tracker.table_digest_now()
        if my_digest == delta.full_digest:
            # Post-merge our table equals the sender's: it covers all of it.
            self.tracker.note_peer_converged(delta.sender)
        # Echo the sender's table digest so its per-peer basis advances; a
        # lost ack only costs a redundant re-send, never correctness.
        if not self.terminated:
            self.send(
                delta.sender,
                TableGossipAck(
                    sender=self.name,
                    digest=delta.full_digest,
                    table_digest=my_digest,
                    best=self._my_best(),
                ),
            )
            self.stats.gossip_acks_sent += 1
            cost += self._charge("communication", self.config.msg_send_cost)
        self._abort_covered_recoveries()
        return cost

    def _abort_covered_recoveries(self) -> None:
        """Drop active recovery subproblems that turned out to be completed."""
        if not self.config.abort_redundant_work:
            return
        for code in list(self.recovery.active_recoveries):
            if self.recovery.should_abort(self.tracker, code):
                self.recovery.note_recovery_aborted(code)
                self.stats.recovery_aborted += 1

    # ------------------------------------------------------------------ #
    # Load balancing
    # ------------------------------------------------------------------ #
    def _answer_work_request(self, request: WorkRequest) -> float:
        cost = 0.0
        if self.pool.can_donate(keep_at_least=self.config.lb_keep_at_least):
            share = max(1, int(len(self.pool) * self.config.lb_donation_fraction))
            donated = self.pool.take_for_donation(
                max_count=min(self.config.lb_donation_max, share),
                keep_at_least=self.config.lb_keep_at_least,
                prefer_shallow=self.config.lb_prefer_shallow,
            )
            grant = WorkGrant(
                donor=self.name,
                codes=tuple(sub.code for sub in donated),
                best=self._my_best(),
            )
            self.send(request.requester, grant)
            self.stats.work_grants_sent += 1
        else:
            self.send(request.requester, WorkDenied(donor=self.name, best=self._my_best()))
            self.stats.work_denials_sent += 1
        cost += self._charge("load_balancing", self.config.msg_send_cost)
        return cost

    def _accept_work_grant(self, grant: WorkGrant) -> float:
        self._outstanding_request = None
        rebuild_cost = 0.0
        accepted = 0
        covers = self.tracker.table.covers
        rebuild = self.problem.rebuild_subproblem
        rebuild_cost_per_decision = self.config.rebuild_cost_per_decision
        for code in grant.codes:
            if covers(code):
                continue  # already known completed; no point rebuilding
            sub = rebuild(code)
            rebuild_cost += rebuild_cost_per_decision * max(1, code.depth)
            if sub is None:
                # The code replays to an infeasible state: it is a completed
                # leaf by construction and can be recorded as such.
                self.tracker.record_completed(code, now=self._now())
                continue
            self.pool.push(sub, bound=self.problem.bound(sub.state))
            accepted += 1
        if accepted:
            self.recovery.note_work_obtained()
            self.stats.work_grants_received += 1
        else:
            self.recovery.note_request_failed(self._now())
        return self._charge("load_balancing", rebuild_cost)

    def _effective_idle_threshold(self) -> Optional[float]:
        """Starvation time required before loss is suspected (granularity-aware)."""
        base = self.config.recovery_idle_threshold or 0.0
        adaptive = self.config.recovery_idle_cost_factor * self._avg_node_cost
        threshold = max(base, adaptive)
        return threshold if threshold > 0 else None

    def _bootstrap_timeout(self) -> float:
        """Starvation a blank worker must endure before regenerating the root."""
        if self.config.recovery_bootstrap_timeout is not None:
            return self.config.recovery_bootstrap_timeout
        return max(10.0, 30.0 * self._avg_node_cost)

    def _may_recover(self, now: float) -> bool:
        """Gate against mistaking start-up starvation for lost work.

        A worker that has expanded at least one node, or whose table records
        any completed work, has evidence the computation is under way and may
        suspect loss normally.  A completely blank worker (fresh join, nothing
        heard yet) only falls back to recovery after the bootstrap timeout —
        otherwise every idle member would regenerate the root problem during
        ramp-up and the whole tree would be solved n times over.
        """
        if self.stats.nodes_expanded > 0 or len(self.tracker.table) > 0:
            self._starved_blank_since = None
            return True
        if self._starved_blank_since is None:
            self._starved_blank_since = now
            return False
        return (now - self._starved_blank_since) >= self._bootstrap_timeout()

    def _handle_starvation(self) -> float:
        """Pool is empty: try recovery, then load balancing."""
        now = self._now()
        cost = 0.0

        # With an empty pool nothing is genuinely "in progress" any more: a
        # recovery subproblem that is still uncovered must have been lost
        # again (for example donated to a peer that crashed, or shipped in a
        # grant that the network dropped).  Forget it so the complement can
        # offer that subtree again — otherwise the exclusion would block the
        # last missing piece forever.
        active_recoveries = self.recovery.active_recoveries
        if active_recoveries:
            covers = self.tracker.table.covers
            for code in list(active_recoveries):
                if not covers(code):
                    active_recoveries.discard(code)

        # First, see whether starvation already justifies regenerating work.
        self.recovery.idle_time_threshold = self._effective_idle_threshold()
        if self._may_recover(now):
            decision = self.recovery.evaluate(self.tracker, now)
            if decision.code is not None:
                cost += self._start_recovery(decision.code)
                return cost

        if not self.peers:
            # Single-process group: there is nobody to ask, so every poll
            # counts as a failed load-balancing attempt and recovery kicks in
            # after the configured threshold.
            self.recovery.note_request_failed(now)
            decision = self.recovery.evaluate(self.tracker, now)
            if decision.code is not None:
                cost += self._start_recovery(decision.code)
            return cost

        # Starved workers have spare capacity: use it to converge the
        # completed-table views, which is what unblocks termination detection
        # (and prevents needless recovery of work that is already done).
        if (
            self.config.table_gossip_when_idle
            and self.peers
            and (now - self._last_table_gossip) >= self.config.idle_poll_interval
        ):
            cost += self._send_table_gossip(now)

        may_request = (
            self._last_lb_attempt is None
            or (now - self._last_lb_attempt) >= self.config.lb_retry_backoff
        )
        if self._outstanding_request is None and may_request:
            victim = self.rng.choice(self.peers)
            self.send(victim, WorkRequest(requester=self.name, best=self._my_best()))
            self.stats.work_requests_sent += 1
            self._request_seq += 1
            self._outstanding_request = (victim, now, self._request_seq)
            self._last_lb_attempt = now
            self.set_timer(self.config.work_request_timeout, f"lb-timeout:{self._request_seq}")
            cost += self._charge("load_balancing", self.config.msg_send_cost)
        self._trace_state("load_balancing")
        return cost

    def _start_recovery(self, code: PathCode) -> float:
        """Regenerate an uncompleted subproblem from its code."""
        sub = self.problem.rebuild_subproblem(code)
        rebuild_cost = self.config.rebuild_cost_per_decision * max(1, code.depth)
        self.recovery.note_recovery_started(code)
        self.stats.recovery_activations += 1
        self._trace_state("recovery")
        if self.tracer is not None:
            self.tracer.event(
                "recovery_start",
                ts=self._now(),
                process=self.name,
                category="recovery",
                args={"depth": code.depth},
            )
        if sub is None:
            # Replaying the code hits an infeasible decision: the subproblem
            # is trivially completed.
            self.tracker.record_completed(code, now=self._now())
            self.recovery.note_recovery_finished(code, redundant=False)
        else:
            self.pool.push(sub, bound=self.problem.bound(sub.state))
        return self._charge("load_balancing", rebuild_cost)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _flush_report(self) -> float:
        """Build and send a work report from the pending completed codes."""
        now = self._now()
        cost = 0.0
        pending = self.tracker.pending_report_size
        if pending == 0:
            return cost
        report = self.tracker.build_report(
            now=now,
            best=self._my_best(),
            compress=self.config.compress_reports,
            compress_against_table=self.config.compress_against_table,
        )
        if report.is_empty:
            return cost
        cost += self._charge("contraction", pending * self.config.contraction_cost_per_op)
        targets = self._choose_report_targets(self.config.report_fanout)
        for target in targets:
            self.send(target, WorkReportMsg(report))
            cost += self._charge("communication", self.config.msg_send_cost)
        self.stats.reports_sent += 1
        return cost

    def _periodic_gossip_due(self, now: float) -> bool:
        """True when the periodic table-gossip interval has elapsed."""
        interval = self.config.table_gossip_interval
        return (
            interval is not None
            and bool(self.peers)
            and (now - self._last_table_gossip) >= interval
        )

    def _report_work_due(self, now: float) -> bool:
        """True when :meth:`_maybe_send_reports` would do anything.

        The step fast path and :meth:`_maybe_send_reports` share the same
        two trigger predicates, so the fast path can never silently skip
        work the reporting machinery would have done.
        """
        return self.tracker.should_send_report(now) or self._periodic_gossip_due(now)

    def _maybe_send_reports(self) -> float:
        now = self._now()
        cost = 0.0

        if self.tracker.should_send_report(now):
            cost += self._flush_report()

        if self._periodic_gossip_due(now):
            cost += self._send_table_gossip(now)
        return cost

    def _send_table_gossip(self, now: float) -> float:
        """Push table state to one random peer: a delta or a whole snapshot.

        With :attr:`~repro.distributed.config.AlgorithmConfig.delta_gossip`
        on, only the codes the chosen peer's acknowledged basis does not
        cover are shipped; an empty delta (the peer is known to be up to
        date) suppresses the send entirely, so a converged idle group stops
        paying table-gossip bytes altogether.
        """
        target = self.rng.choice(self.peers)
        self._last_table_gossip = now
        if self.config.delta_gossip:
            delta = self.tracker.build_delta_snapshot(target, best=self._my_best())
            if delta.is_empty:
                self.stats.delta_gossips_suppressed += 1
                return 0.0
            self.send(target, DeltaGossipMsg(delta))
            self.stats.delta_gossips_sent += 1
            if self._delta_bytes_hist is not None:
                self._delta_bytes_hist.observe(delta.wire_size())
            gossip_kind = "delta_gossip"
        else:
            snapshot = self.tracker.build_table_snapshot(best=self._my_best())
            self.send(target, TableGossipMsg(snapshot))
            self.stats.table_gossips_sent += 1
            gossip_kind = "table_gossip"
        if self.tracer is not None:
            self.tracer.span(
                gossip_kind,
                now,
                self.config.msg_send_cost,
                process=self.name,
                category="gossip",
                args={"target": target},
            )
        return self._charge("communication", self.config.msg_send_cost)

    def _choose_report_targets(self, fanout: int) -> List[str]:
        if not self.peers:
            return []
        count = min(fanout, len(self.peers))
        return self.rng.sample(self.peers, count)

    # ------------------------------------------------------------------ #
    # Termination
    # ------------------------------------------------------------------ #
    def _check_local_termination(self) -> bool:
        now = self._now()
        if self.termination.check_local(now):
            self.stats.terminated_via = "local"
            self._finish_termination(broadcast=self.config.send_root_report)
            return True
        if self.terminated:
            self._finish_termination(broadcast=False)
            return True
        return False

    def _finish_termination(self, *, broadcast: bool) -> None:
        if self._finished:
            return
        self._finished = True
        now = self._now()
        if broadcast and self.termination.needs_root_broadcast():
            root_report = make_root_report(self.name, best=self._my_best())
            for member in self.peers:
                self.send(member, WorkReportMsg(root_report))
                self._charge("communication", self.config.msg_send_cost)
            self.termination.mark_root_broadcast_sent()
        if self._idle_since is not None:
            self._charge("idle", now - self._idle_since)
            self._idle_since = None
        self.pool.clear()
        self.stats.terminated = True
        self.stats.terminated_at = now
        if self.stats.terminated_via is None:
            self.stats.terminated_via = self.termination.detected_via
        self.stats.best_value = self.incumbent.value
        self._trace_state("terminated")
        self._update_storage_metric()

    # ------------------------------------------------------------------ #
    # Final statistics
    # ------------------------------------------------------------------ #
    def finalize_stats(self) -> WorkerRunStats:
        """Fill in the derived fields of the per-worker statistics."""
        self.stats.nodes_pruned = self.expander.nodes_pruned
        self.stats.best_value = self.incumbent.value
        self.stats.recovery_activations = (
            self._recoveries_base + self.recovery.stats.activations
        )
        self._sync_views_pruned()
        self.stats.entity_steps = self._steps
        if self._unavailable_since is not None:
            # Left and never returned: close the window at the crash time so
            # unavailable-time accounting does not silently lose the tail.
            self.stats.unavailable_time += max(
                0.0, self._now() - self._unavailable_since
            )
            self._unavailable_since = None
        if self._steps:
            self.metrics.count(self.name, "entity_steps", self._steps)
        account = self.metrics.time.get(self.name)
        if account is not None:
            self.stats.time = account.as_dict()
        storage = self.metrics.storage.get(self.name)
        if storage is not None:
            self.stats.storage_peak_bytes = storage.peak_bytes
            self.stats.storage_redundant_bytes = storage.redundant_bytes
        return self.stats
