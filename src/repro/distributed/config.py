"""Configuration of the distributed fault-tolerant B&B algorithm.

Every tunable the paper mentions (and a few the ablation benchmarks need) is
collected in :class:`AlgorithmConfig`, so experiments are fully described by a
workload (a basic tree), a processor count, a network model, a failure
schedule and one of these objects.  The important knobs, with the paper's
terminology:

* ``report_threshold`` (the paper's *c*) and ``report_fanout`` (*m*) — when a
  work report is emitted and to how many random members it is pushed;
* ``report_staleness`` — the "has not been updated for a long time" rule;
* ``table_gossip_interval`` — how often a full completed-table snapshot is
  pushed to one random member;
* ``recovery_failed_threshold`` / ``recovery_idle_threshold`` — "how soon
  failure is suspected after a machine unsuccessfully tries to get work";
* ``granularity`` — the constant factor applied to all node times;
* the per-operation costs (message handling, list contraction, subproblem
  rebuild) that turn algorithmic work into simulated time, so the Figure 3 /
  Table 1 overhead decomposition can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.complement import SelectionStrategy
from ..bnb.pool import SelectionRule

__all__ = ["AlgorithmConfig"]


@dataclass(frozen=True, slots=True)
class AlgorithmConfig:
    """Tunables of the distributed algorithm (see module docstring)."""

    # ----------------------- work reports (Section 5.3.2) ----------------- #
    #: Number of newly completed codes that triggers a work report (paper: c).
    report_threshold: int = 10
    #: Number of random members each work report is sent to (paper: m).
    report_fanout: int = 2
    #: Send a report anyway if the pending list has been idle this long (s).
    report_staleness: Optional[float] = 2.0
    #: Flush any pending completed codes as a report the moment the worker
    #: runs out of work.  The paper observes that lightly loaded processes
    #: "suspect termination and send more work reports"; flushing on idle is
    #: the deterministic version of that behaviour and is what lets the last
    #: completions reach the rest of the group promptly.
    flush_report_when_idle: bool = True
    #: Interval between full-table gossip pushes to one random member (s).
    table_gossip_interval: Optional[float] = 30.0
    #: When starved, push the full table to a random member at the idle-poll
    #: cadence instead of waiting for the regular interval.  Idle processes
    #: have spare capacity, and converging the completed-table views quickly
    #: is exactly what lets them detect termination instead of redoing work.
    table_gossip_when_idle: bool = True
    #: Gossip table *deltas* instead of whole snapshots: track per peer what
    #: it last acknowledged covering and ship only the uncovered codes
    #: (acknowledged with tiny digest echoes).  Steady-state table-gossip
    #: bytes drop by an order of magnitude on the paper workloads
    #: (``benchmarks/bench_delta_gossip.py`` gates ≥3×); disabling restores
    #: the paper's literal whole-snapshot push, which the convergence
    #: property tests use as the reference behaviour.
    delta_gossip: bool = True
    #: Compress outgoing reports (sibling merge + ancestor drop).  Disabling
    #: this is the ABL-COMPRESS ablation.
    compress_reports: bool = True
    #: Additionally drop report codes already covered by the local table.
    compress_against_table: bool = False

    # ----------------------- load balancing ------------------------------ #
    #: Keep at least this many subproblems when answering a work request.
    lb_keep_at_least: int = 2
    #: Donate at most this many subproblems per grant.
    lb_donation_max: int = 4
    #: Donate roughly this fraction of the pool (bounded by lb_donation_max).
    lb_donation_fraction: float = 0.5
    #: Give up on a work request after this long without an answer (s).
    work_request_timeout: float = 0.25
    #: How often an idle worker re-polls (retry requests, suspect loss) (s).
    idle_poll_interval: float = 0.1
    #: Minimum pause between consecutive work requests from a starving worker.
    #: Without it a burst of immediate denials makes the worker suspect loss
    #: within milliseconds and redo work that is simply still in flight.
    lb_retry_backoff: float = 0.1
    #: Prefer donating shallow (large) subproblems.
    lb_prefer_shallow: bool = True

    # ----------------------- failure detection (churn) -------------------- #
    #: Run the counter-based epidemic failure detector (van Renesse et al.)
    #: inside every worker: heartbeat gossip rounds, staleness-driven peer
    #: eviction, and incarnation-based readmission of restarted workers.
    #: Off by default — the scenario layer enables it for churn runs; the
    #: non-churn seeded runs stay byte-identical with it disabled.
    failure_detector: bool = False
    #: Interval between heartbeat increments/gossip rounds (s).
    fd_heartbeat_interval: float = 0.5
    #: A peer whose heartbeat has not increased for this long is suspected.
    fd_fail_timeout: float = 2.0
    #: A suspected peer is evicted after this long without an increase.
    fd_cleanup_timeout: float = 4.0
    #: Heartbeat-gossip fanout per round.
    fd_fanout: int = 1
    #: A terminated worker answers late traffic with one root report per
    #: sender, so a worker rejoining after global termination converges
    #: immediately instead of idling until its own caps fire.  Enabled
    #: together with the failure detector on churn runs.
    termination_echo: bool = False

    # ----------------------- fault tolerance ------------------------------ #
    #: Consecutive unsuccessful work requests before loss is suspected.
    recovery_failed_threshold: int = 4
    #: Optional minimum starvation time before recovery may run (s).
    recovery_idle_threshold: Optional[float] = None
    #: Additional adaptive starvation floor: loss is suspected only after the
    #: worker has been starved for at least this many times its recent average
    #: node cost.  This is the paper's "how soon failure is suspected" knob,
    #: made granularity-aware so the same configuration behaves sensibly for
    #: 0.01 s and 3.47 s subproblems.
    recovery_idle_cost_factor: float = 3.0
    #: A worker that has never done any work and knows of no completed work
    #: cannot tell "work was lost" from "work has not reached me yet", so it
    #: only falls back to regenerating the root region after this much
    #: uninterrupted starvation.  ``None`` derives the value from the node
    #: cost estimate (max(10 s, 30 × expected node cost)).
    recovery_bootstrap_timeout: Optional[float] = None
    #: How the recovery candidate is picked from the complement.
    recovery_strategy: SelectionStrategy = SelectionStrategy.DEEPEST
    #: Abort subproblems (including recoveries) that a received report shows
    #: to be already completed elsewhere.
    abort_redundant_work: bool = True
    #: Broadcast the final root report to the whole membership list.
    send_root_report: bool = True

    # ----------------------- search behaviour ----------------------------- #
    #: Pool selection rule used by every worker.
    selection_rule: SelectionRule = SelectionRule.BEST_FIRST
    #: Constant factor applied to every node time (the paper's granularity).
    granularity: float = 1.0
    #: Piggy-back the best-known solution on every message.
    share_best_solution: bool = True

    # ----------------------- simulated overhead costs --------------------- #
    #: Fixed CPU cost of handling one received message (s).
    msg_processing_base: float = 2.0e-4
    #: Additional CPU cost per received byte (s/byte).
    msg_processing_per_byte: float = 2.0e-7
    #: Fixed CPU cost of sending one message (s).
    msg_send_cost: float = 1.0e-4
    #: CPU cost per elementary contraction operation (merge/subsume/insert).
    contraction_cost_per_op: float = 2.0e-5
    #: CPU cost to replay one ``<variable, value>`` decision when rebuilding a
    #: subproblem from its code (work grants and recovery).
    rebuild_cost_per_decision: float = 1.0e-5

    # ----------------------------------------------------------------------#
    def __post_init__(self) -> None:
        if self.report_threshold < 1:
            raise ValueError("report_threshold must be at least 1")
        if self.report_fanout < 1:
            raise ValueError("report_fanout must be at least 1")
        if self.lb_keep_at_least < 1:
            raise ValueError("lb_keep_at_least must be at least 1")
        if self.lb_donation_max < 1:
            raise ValueError("lb_donation_max must be at least 1")
        if not (0.0 < self.lb_donation_fraction <= 1.0):
            raise ValueError("lb_donation_fraction must be in (0, 1]")
        if self.work_request_timeout <= 0 or self.idle_poll_interval <= 0:
            raise ValueError("timeouts must be positive")
        if self.recovery_failed_threshold < 1:
            raise ValueError("recovery_failed_threshold must be at least 1")
        if self.failure_detector:
            if self.fd_heartbeat_interval <= 0:
                raise ValueError("fd_heartbeat_interval must be positive")
            if self.fd_fail_timeout <= 0 or self.fd_cleanup_timeout < self.fd_fail_timeout:
                raise ValueError("fd_cleanup_timeout must be >= fd_fail_timeout > 0")
            if self.fd_fanout < 1:
                raise ValueError("fd_fanout must be at least 1")
        if self.granularity < 0:
            raise ValueError("granularity must be non-negative")

    def with_overrides(self, **changes) -> "AlgorithmConfig":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **changes)

    @classmethod
    def paper_default(cls) -> "AlgorithmConfig":
        """Configuration matching the paper's described, unoptimised setup.

        "Work reports are sent to randomly chosen resources, without
        eliminating redundant messages.  When out of work, resources ask
        randomly chosen resources for work, without using previous experience
        to increase performance."
        """
        return cls()
