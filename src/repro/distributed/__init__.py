"""The distributed fault-tolerant B&B algorithm (the paper's Section 5).

* :mod:`repro.distributed.config` — every algorithm tunable
  (:class:`AlgorithmConfig`);
* :mod:`repro.distributed.messages` — the wire messages (work requests,
  grants, denials, work reports, table gossip);
* :mod:`repro.distributed.worker` — the simulated worker combining the local
  B&B loop, load balancing, the fault-tolerance mechanism and termination
  detection;
* :mod:`repro.distributed.runner` — experiment orchestration
  (:class:`DistributedBnBSimulation`, :func:`run_tree_simulation`);
* :mod:`repro.distributed.stats` — per-worker and per-run statistics exposing
  the paper's reported metrics.
"""

from .config import AlgorithmConfig
from .messages import (
    MessageKinds,
    TableGossipMsg,
    WorkDenied,
    WorkGrant,
    WorkReportMsg,
    WorkRequest,
)
from .runner import DistributedBnBSimulation, NetworkConfig, run_tree_simulation, worker_names
from .stats import RunResult, WorkerRunStats
from .worker import WorkerEntity

__all__ = [
    "AlgorithmConfig",
    "MessageKinds",
    "WorkRequest",
    "WorkGrant",
    "WorkDenied",
    "WorkReportMsg",
    "TableGossipMsg",
    "WorkerEntity",
    "DistributedBnBSimulation",
    "NetworkConfig",
    "run_tree_simulation",
    "worker_names",
    "RunResult",
    "WorkerRunStats",
]
