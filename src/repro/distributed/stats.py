"""Run results and the derived quantities reported in the paper's evaluation.

:class:`WorkerRunStats` captures what one simulated worker did;
:class:`RunResult` aggregates a whole run and exposes the exact columns of the
paper's Figure 3 (per-category execution time), Table 1 (execution time, %B&B
time, %contraction time, storage total/redundant, MB/hour/processor) and
Figure 4 (speedup and communication curves), plus the correctness fields the
fault-tolerance experiments assert on (best value found, termination detected,
crashed processes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..simulation.metrics import MetricsCollector, TIME_CATEGORIES
from ..simulation.network import TrafficStats
from ..simulation.tracing import TimelineTrace

__all__ = ["WorkerRunStats", "RunResult"]


@dataclass
class WorkerRunStats:
    """Everything one worker did during a run."""

    name: str
    nodes_expanded: int = 0
    nodes_pruned: int = 0
    nodes_skipped_covered: int = 0
    completed_codes_local: int = 0
    reports_sent: int = 0
    #: Whole-table snapshot pushes (disjoint from ``delta_gossips_sent``:
    #: each gossip push is counted under exactly one kind).
    table_gossips_sent: int = 0
    delta_gossips_sent: int = 0
    delta_gossips_suppressed: int = 0
    gossip_acks_sent: int = 0
    #: Per-peer gossip views dropped after membership declared the peer dead.
    gossip_views_pruned: int = 0
    work_requests_sent: int = 0
    work_grants_sent: int = 0
    work_denials_sent: int = 0
    work_grants_received: int = 0
    recovery_activations: int = 0
    recovery_aborted: int = 0
    redundant_expansions: int = 0
    #: Steps that skipped the message/report machinery entirely (empty inbox,
    #: nothing due) via the worker's dirty-flag fast path.
    fast_path_steps: int = 0
    # ----- churn & live failure detection --------------------------------- #
    #: Heartbeat-gossip rounds this worker sent.
    heartbeats_sent: int = 0
    #: Peers evicted because their heartbeat went stale (live detection).
    peers_evicted: int = 0
    #: Peers readmitted after eviction or restart (rejoin handling).
    peers_readmitted: int = 0
    #: Churn leaves this worker suffered (suspend/restart departures).
    leaves: int = 0
    #: Churn returns this worker completed (revivals).
    rejoins: int = 0
    #: Total simulated time this worker spent unavailable to churn.
    unavailable_time: float = 0.0
    #: Total scheduled entity steps this worker executed (scale diagnostics).
    entity_steps: int = 0
    crashed: bool = False
    crashed_at: Optional[float] = None
    terminated: bool = False
    terminated_at: Optional[float] = None
    terminated_via: Optional[str] = None
    best_value: Optional[float] = None
    storage_peak_bytes: int = 0
    storage_redundant_bytes: int = 0
    time: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat dictionary (report/CSV friendly)."""
        row = {
            "name": self.name,
            "nodes_expanded": self.nodes_expanded,
            "nodes_pruned": self.nodes_pruned,
            "nodes_skipped_covered": self.nodes_skipped_covered,
            "completed_codes_local": self.completed_codes_local,
            "reports_sent": self.reports_sent,
            "table_gossips_sent": self.table_gossips_sent,
            "delta_gossips_sent": self.delta_gossips_sent,
            "delta_gossips_suppressed": self.delta_gossips_suppressed,
            "gossip_acks_sent": self.gossip_acks_sent,
            "gossip_views_pruned": self.gossip_views_pruned,
            "work_requests_sent": self.work_requests_sent,
            "work_grants_sent": self.work_grants_sent,
            "work_denials_sent": self.work_denials_sent,
            "work_grants_received": self.work_grants_received,
            "recovery_activations": self.recovery_activations,
            "recovery_aborted": self.recovery_aborted,
            "redundant_expansions": self.redundant_expansions,
            "fast_path_steps": self.fast_path_steps,
            "heartbeats_sent": self.heartbeats_sent,
            "peers_evicted": self.peers_evicted,
            "peers_readmitted": self.peers_readmitted,
            "leaves": self.leaves,
            "rejoins": self.rejoins,
            "unavailable_time": self.unavailable_time,
            "entity_steps": self.entity_steps,
            "crashed": self.crashed,
            "crashed_at": self.crashed_at,
            "terminated": self.terminated,
            "terminated_at": self.terminated_at,
            "terminated_via": self.terminated_via,
            "best_value": self.best_value,
            "storage_peak_bytes": self.storage_peak_bytes,
            "storage_redundant_bytes": self.storage_redundant_bytes,
        }
        for category in TIME_CATEGORIES:
            row[f"time_{category}"] = self.time.get(category, 0.0)
        return row


@dataclass
class RunResult:
    """Aggregate result of one simulated distributed run."""

    #: Number of workers the run started with.
    n_workers: int
    #: Simulated time at which the last surviving worker terminated.
    makespan: float
    #: Best objective value known to the surviving workers at termination.
    best_value: Optional[float]
    #: Reference optimum of the workload (from the basic tree), if known.
    reference_optimum: Optional[float]
    #: True when every surviving worker detected termination.
    all_terminated: bool
    #: Names of workers that crashed during the run.
    crashed_workers: List[str] = field(default_factory=list)
    #: Per-worker statistics.
    workers: Dict[str, WorkerRunStats] = field(default_factory=dict)
    #: Total nodes expanded across all workers (including redundant work).
    total_nodes_expanded: int = 0
    #: Nodes expanded more than once system-wide (redundant work).
    redundant_nodes_expanded: int = 0
    #: Sum of per-node costs actually executed (busy B&B time system-wide).
    total_bb_time: float = 0.0
    #: Uniprocessor reference time of the workload (sum of all node costs).
    uniprocessor_time: Optional[float] = None
    #: Shared metrics collector (time/storage accounts per worker).
    metrics: Optional[MetricsCollector] = None
    #: Global network traffic statistics.
    network: Optional[TrafficStats] = None
    #: Total bytes injected into the network.
    total_bytes_sent: int = 0
    #: Message counts by kind.
    messages_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Bytes injected into the network by payload kind (wire-size model), as
    #: classified by :class:`~repro.distributed.messages.MessageKinds` — the
    #: delta-gossip benchmark compares the table-dissemination family here.
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Optional execution timeline (Figures 5/6).
    trace: Optional[TimelineTrace] = None
    #: Engine-level scale counters: ``events_processed``, ``peak_heap_len``
    #: and ``entity_steps`` (summed across shards when the run was sharded;
    #: ``peak_heap_len`` is the max over shards).
    engine_counters: Dict[str, int] = field(default_factory=dict)
    #: Collected run telemetry (a :class:`repro.obs.Telemetry`) when the run
    #: was started with a telemetry config; ``None`` otherwise.
    telemetry: Optional[object] = None

    # ------------------------------------------------------------------ #
    # Correctness checks
    # ------------------------------------------------------------------ #
    @property
    def solved_correctly(self) -> Optional[bool]:
        """True when the surviving system knows the reference optimum.

        ``None`` when the workload has no recorded reference optimum.
        """
        if self.reference_optimum is None:
            return None
        if self.best_value is None:
            return False
        return abs(self.best_value - self.reference_optimum) <= 1e-9 * max(
            1.0, abs(self.reference_optimum)
        )

    # ------------------------------------------------------------------ #
    # Paper-style derived metrics
    # ------------------------------------------------------------------ #
    def execution_time_hours(self) -> float:
        """Makespan in hours (Table 1 'Execution Time')."""
        return self.makespan / 3600.0

    def time_fraction(self, category: str) -> float:
        """System-wide fraction of a time category (Figure 3 / Table 1 %)."""
        if self.metrics is None:
            return 0.0
        return self.metrics.system_fractions().get(category, 0.0)

    def bb_time_percent(self) -> float:
        """Table 1 'B&B Time (%)'."""
        return 100.0 * self.time_fraction("bb")

    def contraction_time_percent(self) -> float:
        """Table 1 'Contraction Time (%)'."""
        return 100.0 * self.time_fraction("contraction")

    def communication_time_percent(self) -> float:
        """Communication-handling share of total time."""
        return 100.0 * self.time_fraction("communication")

    def load_balancing_time_percent(self) -> float:
        """Load-balancing share of total time."""
        return 100.0 * self.time_fraction("load_balancing")

    def idle_time_percent(self) -> float:
        """Idle share of total time."""
        return 100.0 * self.time_fraction("idle")

    def overhead_percent(self) -> float:
        """Everything that is not B&B time, as a percentage (Figure 3 text)."""
        return 100.0 - self.bb_time_percent()

    def storage_total_mb(self) -> float:
        """Table 1 'Storage Space Total (MB)': peak completion state, system-wide."""
        if self.metrics is None:
            return 0.0
        return self.metrics.total_storage_bytes() / 1e6

    def storage_redundant_mb(self) -> float:
        """Table 1 'Storage Space Redundant (MB)': replicated information received."""
        if self.metrics is None:
            return 0.0
        return self.metrics.redundant_storage_bytes() / 1e6

    def communication_mb_per_hour_per_processor(self) -> float:
        """Table 1 'Communication (MB/hour/processor)'."""
        hours = self.execution_time_hours()
        if hours <= 0 or self.n_workers == 0:
            return 0.0
        return (self.total_bytes_sent / 1e6) / hours / self.n_workers

    def speedup(self) -> Optional[float]:
        """Speedup against the uniprocessor reference time (Figure 4)."""
        if self.uniprocessor_time is None or self.makespan <= 0:
            return None
        return self.uniprocessor_time / self.makespan

    def efficiency(self) -> Optional[float]:
        """Parallel efficiency (speedup / processors)."""
        s = self.speedup()
        if s is None or self.n_workers == 0:
            return None
        return s / self.n_workers

    def redundant_work_fraction(self) -> float:
        """Fraction of expansions that were redundant (re-expanded nodes)."""
        if self.total_nodes_expanded == 0:
            return 0.0
        return self.redundant_nodes_expanded / self.total_nodes_expanded

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """One-row summary with the paper's headline columns."""
        return {
            "processors": self.n_workers,
            "makespan_s": round(self.makespan, 3),
            "execution_time_h": round(self.execution_time_hours(), 4),
            "bb_time_pct": round(self.bb_time_percent(), 2),
            "contraction_time_pct": round(self.contraction_time_percent(), 2),
            "communication_time_pct": round(self.communication_time_percent(), 2),
            "lb_time_pct": round(self.load_balancing_time_percent(), 2),
            "idle_time_pct": round(self.idle_time_percent(), 2),
            "storage_total_mb": round(self.storage_total_mb(), 3),
            "storage_redundant_mb": round(self.storage_redundant_mb(), 3),
            "comm_mb_per_hour_per_proc": round(self.communication_mb_per_hour_per_processor(), 3),
            "speedup": None if self.speedup() is None else round(self.speedup(), 2),
            "best_value": self.best_value,
            "solved_correctly": self.solved_correctly,
            "crashed_workers": len(self.crashed_workers),
            "redundant_work_fraction": round(self.redundant_work_fraction(), 4),
        }
