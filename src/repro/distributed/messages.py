"""Wire messages exchanged by the distributed B&B workers.

The algorithm uses a small set of message types (Sections 5 and 5.3.2):

* **work requests / grants / denials** — the on-demand dynamic load-balancing
  traffic; grants carry the *codes* of the donated subproblems (codes are
  self-contained, so the receiver can rebuild the subproblem states locally);
* **work reports** — compressed lists of newly completed codes, pushed to
  ``m`` random members;
* **table gossip** — occasional full snapshots of the contracted completed
  table, pushed to one random member;
* the final **root report** announcing termination (a work report whose only
  code is the root).

Every message piggy-backs the sender's best-known solution, which is how the
paper circulates incumbent values ("embedded in the most frequently sent
messages").  Each class exposes ``wire_size()`` so the network latency model
and the traffic accounting see realistic sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..core.encoding import PathCode
from ..core.work_report import BestSolution, CompletedTableSnapshot, WorkReport

__all__ = [
    "WorkRequest",
    "WorkGrant",
    "WorkDenied",
    "WorkReportMsg",
    "TableGossipMsg",
    "MessageKinds",
]

_HEADER_BYTES = 32
_BEST_BYTES = 10


@dataclass(frozen=True, slots=True)
class WorkRequest:
    """A starving worker asking a randomly chosen member for work."""

    requester: str
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Requests are small: header plus the piggy-backed incumbent."""
        return _HEADER_BYTES + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class WorkGrant:
    """Work donated in response to a request: the codes of the subproblems."""

    donor: str
    codes: Tuple[PathCode, ...]
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Grant size grows with the number and depth of donated codes."""
        return _HEADER_BYTES + sum(code.wire_size() for code in self.codes) + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class WorkDenied:
    """Negative answer to a work request (the donor's pool was too small)."""

    donor: str
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Denials are as small as requests."""
        return _HEADER_BYTES + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class WorkReportMsg:
    """Envelope for a :class:`~repro.core.work_report.WorkReport`."""

    report: WorkReport

    def wire_size(self) -> int:
        """Delegates to the report's own size model."""
        return self.report.wire_size()

    @property
    def best(self) -> BestSolution:
        """The piggy-backed incumbent."""
        return self.report.best


@dataclass(frozen=True, slots=True)
class TableGossipMsg:
    """Envelope for a full completed-table snapshot."""

    snapshot: CompletedTableSnapshot

    def wire_size(self) -> int:
        """Delegates to the snapshot's own size model."""
        return self.snapshot.wire_size()

    @property
    def best(self) -> BestSolution:
        """The piggy-backed incumbent."""
        return self.snapshot.best


class MessageKinds:
    """Canonical kind labels used by the traffic counters and traces."""

    WORK_REQUEST = "work_request"
    WORK_GRANT = "work_grant"
    WORK_DENIED = "work_denied"
    WORK_REPORT = "work_report"
    TABLE_GOSSIP = "table_gossip"
    ROOT_REPORT = "root_report"

    @staticmethod
    def of(payload: object) -> str:
        """Classify a payload object into one of the kind labels."""
        if isinstance(payload, WorkRequest):
            return MessageKinds.WORK_REQUEST
        if isinstance(payload, WorkGrant):
            return MessageKinds.WORK_GRANT
        if isinstance(payload, WorkDenied):
            return MessageKinds.WORK_DENIED
        if isinstance(payload, WorkReportMsg):
            if payload.report.contains_root():
                return MessageKinds.ROOT_REPORT
            return MessageKinds.WORK_REPORT
        if isinstance(payload, TableGossipMsg):
            return MessageKinds.TABLE_GOSSIP
        return "unknown"
