"""Wire messages exchanged by the distributed B&B workers.

The algorithm uses a small set of message types (Sections 5 and 5.3.2):

* **work requests / grants / denials** — the on-demand dynamic load-balancing
  traffic; grants carry the *codes* of the donated subproblems (codes are
  self-contained, so the receiver can rebuild the subproblem states locally);
* **work reports** — compressed lists of newly completed codes, pushed to
  ``m`` random members;
* **table gossip** — occasional full snapshots of the contracted completed
  table, pushed to one random member;
* **delta gossip** — the anti-entropy refinement of table gossip: only the
  codes the receiver is not known to cover, acknowledged with a
  :class:`TableGossipAck` echoing the sender's table digest (see
  :class:`~repro.core.work_report.DeltaSnapshot`);
* the final **root report** announcing termination (a work report whose only
  code is the root).

Every message piggy-backs the sender's best-known solution, which is how the
paper circulates incumbent values ("embedded in the most frequently sent
messages").  Each class exposes ``wire_size()`` so the network latency model
and the traffic accounting see realistic sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..core.encoding import PathCode
from ..core.work_report import (
    BestSolution,
    CompletedTableSnapshot,
    DeltaSnapshot,
    WorkReport,
)

__all__ = [
    "WorkRequest",
    "WorkGrant",
    "WorkDenied",
    "WorkReportMsg",
    "TableGossipMsg",
    "DeltaGossipMsg",
    "TableGossipAck",
    "HeartbeatGossipMsg",
    "MessageKinds",
]

_HEADER_BYTES = 32
_BEST_BYTES = 10
_DIGEST_BYTES = 8


@dataclass(frozen=True, slots=True)
class WorkRequest:
    """A starving worker asking a randomly chosen member for work."""

    requester: str
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Requests are small: header plus the piggy-backed incumbent."""
        return _HEADER_BYTES + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class WorkGrant:
    """Work donated in response to a request: the codes of the subproblems."""

    donor: str
    codes: Tuple[PathCode, ...]
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Grant size grows with the number and depth of donated codes."""
        return _HEADER_BYTES + sum(code.wire_size() for code in self.codes) + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class WorkDenied:
    """Negative answer to a work request (the donor's pool was too small)."""

    donor: str
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Denials are as small as requests."""
        return _HEADER_BYTES + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class WorkReportMsg:
    """Envelope for a :class:`~repro.core.work_report.WorkReport`."""

    report: WorkReport

    def wire_size(self) -> int:
        """Delegates to the report's own size model."""
        return self.report.wire_size()

    @property
    def best(self) -> BestSolution:
        """The piggy-backed incumbent."""
        return self.report.best


@dataclass(frozen=True, slots=True)
class TableGossipMsg:
    """Envelope for a full completed-table snapshot."""

    snapshot: CompletedTableSnapshot

    def wire_size(self) -> int:
        """Delegates to the snapshot's own size model."""
        return self.snapshot.wire_size()

    @property
    def best(self) -> BestSolution:
        """The piggy-backed incumbent."""
        return self.snapshot.best


@dataclass(frozen=True, slots=True)
class DeltaGossipMsg:
    """Envelope for a :class:`~repro.core.work_report.DeltaSnapshot`."""

    delta: DeltaSnapshot

    def wire_size(self) -> int:
        """Delegates to the delta's own size model."""
        return self.delta.wire_size()

    @property
    def best(self) -> BestSolution:
        """The piggy-backed incumbent."""
        return self.delta.best


@dataclass(frozen=True, slots=True)
class TableGossipAck:
    """Acknowledgement of a delta gossip: echoes the sender's table digest.

    ``sender`` is the *acknowledging* process; ``digest`` is the
    ``full_digest`` of the :class:`~repro.core.work_report.DeltaSnapshot`
    that was merged.  Receiving it lets the original gossiper advance its
    per-peer basis (see
    :meth:`~repro.core.completion.CompletionTracker.note_snapshot_ack`);
    losing it merely causes a redundant re-send, never incorrectness.

    ``table_digest`` is the digest of the *acknowledging* process's own
    table right after the merge.  When it equals the original gossiper's
    current digest the two tables are identical, so the gossiper can mark
    the peer as covering everything it has — in the converged steady state
    this collapses subsequent deltas to suppressed empties.
    """

    sender: str
    digest: int
    table_digest: int = 0
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Acks are tiny: header, two 8-byte digests, piggy-backed incumbent."""
        return _HEADER_BYTES + 2 * _DIGEST_BYTES + self.best.wire_size()


@dataclass(frozen=True, slots=True)
class HeartbeatGossipMsg:
    """One failure-detection gossip round (van Renesse-style heartbeats).

    ``digest`` is the sender's heartbeat table as ``(member, counter)``
    pairs; ``incarnations`` carries the *non-zero* incarnation numbers the
    sender knows (sparse — a worker that never restarted is omitted), which
    is how a rejoining worker's reset heartbeat counter is distinguished
    from a stale one.  Like every frequently sent message, it piggy-backs
    the sender's incumbent.
    """

    sender: str
    digest: Tuple[Tuple[str, int], ...]
    incarnations: Tuple[Tuple[str, int], ...] = ()
    best: BestSolution = field(default_factory=BestSolution)

    def wire_size(self) -> int:
        """Header + 12 bytes per digest entry + 6 per incarnation entry."""
        return (
            _HEADER_BYTES
            + 12 * len(self.digest)
            + 6 * len(self.incarnations)
            + self.best.wire_size()
        )


class MessageKinds:
    """Canonical kind labels used by the traffic counters and traces."""

    WORK_REQUEST = "work_request"
    WORK_GRANT = "work_grant"
    WORK_DENIED = "work_denied"
    WORK_REPORT = "work_report"
    TABLE_GOSSIP = "table_gossip"
    DELTA_GOSSIP = "delta_gossip"
    GOSSIP_ACK = "gossip_ack"
    ROOT_REPORT = "root_report"
    HEARTBEAT = "heartbeat"

    #: Kinds that carry table-dissemination traffic (the delta-gossip
    #: benchmark compares the byte volume of exactly this family).
    TABLE_DISSEMINATION = (TABLE_GOSSIP, DELTA_GOSSIP, GOSSIP_ACK)

    @staticmethod
    def of(payload: object) -> str:
        """Classify a payload object into one of the kind labels."""
        if isinstance(payload, WorkRequest):
            return MessageKinds.WORK_REQUEST
        if isinstance(payload, WorkGrant):
            return MessageKinds.WORK_GRANT
        if isinstance(payload, WorkDenied):
            return MessageKinds.WORK_DENIED
        if isinstance(payload, WorkReportMsg):
            if payload.report.contains_root():
                return MessageKinds.ROOT_REPORT
            return MessageKinds.WORK_REPORT
        if isinstance(payload, TableGossipMsg):
            return MessageKinds.TABLE_GOSSIP
        if isinstance(payload, DeltaGossipMsg):
            return MessageKinds.DELTA_GOSSIP
        if isinstance(payload, TableGossipAck):
            return MessageKinds.GOSSIP_ACK
        if isinstance(payload, HeartbeatGossipMsg):
            return MessageKinds.HEARTBEAT
        return "unknown"
