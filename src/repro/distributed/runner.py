"""Run configuration and orchestration of simulated distributed B&B runs.

:class:`DistributedBnBSimulation` builds the whole experiment — engine,
network (latency / loss / partitions), workers, crash schedule, metrics and
trace — runs it to termination and returns a
:class:`~repro.distributed.stats.RunResult` with the paper's metrics filled
in.  :func:`run_tree_simulation` is the one-call convenience wrapper used by
the examples and most benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..bnb.basic_tree import BasicTree
from ..bnb.problem import BranchAndBoundProblem
from ..bnb.tree_problem import TreeReplayProblem
from ..core.arena import TrieArena
from ..obs import MetricsRegistry, Telemetry, TelemetryConfig, Tracer
from ..obs.ingest import ingest_run_result
from ..simulation.engine import SimulationEngine
from ..simulation.failures import ChurnInjector, CrashEvent, FailureInjector
from ..simulation.metrics import MetricsCollector
from ..simulation.network import LatencyModel, Network, Partition, TrafficStats
from ..simulation.rng import RngRegistry
from ..simulation.tracing import TimelineTrace
from .config import AlgorithmConfig
from .messages import MessageKinds
from .stats import RunResult, WorkerRunStats
from .worker import WorkerEntity

__all__ = [
    "NetworkConfig",
    "DistributedBnBSimulation",
    "assemble_run_result",
    "run_tree_simulation",
    "sequential_reference_time",
    "worker_names",
]


def worker_names(n: int, prefix: str = "worker") -> List[str]:
    """Canonical worker names (``worker-00``, ``worker-01``, …)."""
    width = max(2, len(str(max(0, n - 1))))
    return [f"{prefix}-{i:0{width}d}" for i in range(n)]


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Network-side parameters of a run."""

    latency: LatencyModel = field(default_factory=LatencyModel.paper_default)
    loss_probability: float = 0.0
    partitions: Sequence[Partition] = ()

    @classmethod
    def paper_default(cls) -> "NetworkConfig":
        """The paper's 1.5 ms + 0.005 ms/byte, lossless network."""
        return cls()


def assemble_run_result(
    workers: Sequence[WorkerEntity],
    *,
    n_workers: int,
    end_time: float,
    problem: BranchAndBoundProblem,
    reference_optimum: Optional[float],
    uniprocessor_time: Optional[float],
    metrics: MetricsCollector,
    network_stats: Optional[TrafficStats],
    kind_bytes: Optional[Dict[str, int]] = None,
    trace: Optional[TimelineTrace] = None,
    engine_counters: Optional[Dict[str, int]] = None,
) -> RunResult:
    """Aggregate per-worker outcomes into a :class:`RunResult`.

    Shared by the single-engine runner and the sharded engine (which passes
    the union of all shards' workers plus merged network statistics).
    """
    worker_stats: Dict[str, WorkerRunStats] = {}
    crashed: List[str] = []
    best_value: Optional[float] = None
    all_terminated = True
    makespan = 0.0
    total_expanded = 0
    total_bb_time = 0.0
    expanded_union: set = set()
    expanded_total_codes = 0

    for worker in workers:
        stats = worker.finalize_stats()
        worker_stats[worker.name] = stats
        total_expanded += stats.nodes_expanded
        total_bb_time += stats.time.get("bb", 0.0)
        expanded_union |= worker._expanded_codes
        expanded_total_codes += len(worker._expanded_codes)
        if stats.crashed:
            crashed.append(worker.name)
            continue
        if not stats.terminated:
            all_terminated = False
        if stats.terminated_at is not None:
            makespan = max(makespan, stats.terminated_at)
        if stats.best_value is not None:
            if best_value is None or problem.is_improvement(stats.best_value, best_value):
                best_value = stats.best_value

    if makespan == 0.0:
        makespan = end_time

    messages_by_kind: Dict[str, int] = {
        "work_requests": 0,
        "work_grants": 0,
        "work_denials": 0,
        "work_reports": 0,
        "table_gossips": 0,
        "delta_gossips": 0,
        "gossip_acks": 0,
        "heartbeats": 0,
    }
    counters = dict(engine_counters) if engine_counters else {}
    entity_steps = 0
    for worker in workers:
        stats = worker.stats
        messages_by_kind["work_requests"] += stats.work_requests_sent
        messages_by_kind["work_grants"] += stats.work_grants_sent
        messages_by_kind["work_denials"] += stats.work_denials_sent
        messages_by_kind["work_reports"] += stats.reports_sent
        messages_by_kind["table_gossips"] += stats.table_gossips_sent
        messages_by_kind["delta_gossips"] += stats.delta_gossips_sent
        messages_by_kind["gossip_acks"] += stats.gossip_acks_sent
        messages_by_kind["heartbeats"] += stats.heartbeats_sent
        entity_steps += stats.entity_steps
    counters["entity_steps"] = entity_steps

    redundant_nodes = expanded_total_codes - len(expanded_union)

    return RunResult(
        n_workers=n_workers,
        makespan=makespan,
        best_value=best_value,
        reference_optimum=reference_optimum,
        all_terminated=all_terminated,
        crashed_workers=crashed,
        workers=worker_stats,
        total_nodes_expanded=total_expanded,
        redundant_nodes_expanded=max(0, redundant_nodes),
        total_bb_time=total_bb_time,
        uniprocessor_time=uniprocessor_time,
        metrics=metrics,
        network=network_stats,
        total_bytes_sent=network_stats.bytes_sent if network_stats is not None else 0,
        messages_by_kind=messages_by_kind,
        bytes_by_kind=dict(kind_bytes) if kind_bytes else {},
        trace=trace,
        engine_counters=counters,
    )


class DistributedBnBSimulation:
    """Builds and runs one simulated distributed B&B execution."""

    def __init__(
        self,
        problem: BranchAndBoundProblem,
        n_workers: int,
        *,
        config: Optional[AlgorithmConfig] = None,
        network: Optional[NetworkConfig] = None,
        failures: Iterable[CrashEvent] = (),
        seed: int = 0,
        enable_trace: bool = False,
        reference_optimum: Optional[float] = None,
        uniprocessor_time: Optional[float] = None,
        expected_node_cost: float = 0.0,
        max_sim_time: Optional[float] = None,
        max_events: Optional[int] = None,
        use_arena: bool = True,
        telemetry: Optional[TelemetryConfig] = None,
        churn_events: Sequence[Tuple[float, str, str]] = (),
        churn_mode: str = "restart",
        worker_speeds: Optional[Mapping[str, float]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.problem = problem
        self.n_workers = n_workers
        self.expected_node_cost = expected_node_cost
        self.use_arena = use_arena
        self.config = config if config is not None else AlgorithmConfig.paper_default()
        self.network_config = network if network is not None else NetworkConfig.paper_default()
        self.failures = list(failures)
        self.seed = seed
        self.enable_trace = enable_trace
        self.reference_optimum = reference_optimum
        self.uniprocessor_time = uniprocessor_time
        self.max_sim_time = max_sim_time
        self.max_events = max_events

        # Built lazily by :meth:`build`.
        self.engine: Optional[SimulationEngine] = None
        self.net: Optional[Network] = None
        self.workers: List[WorkerEntity] = []
        #: Persistent scan position for :meth:`_stop_condition` (see there).
        self._stop_scan = 0
        self.metrics = MetricsCollector()
        self.trace: Optional[TimelineTrace] = TimelineTrace() if enable_trace else None
        self.injector = FailureInjector(self.failures)
        #: Non-permanent leave/return schedule (churn); a return resets the
        #: stop-condition scan because a rejoined worker is no longer
        #: terminated (the scan's monotonicity assumption briefly breaks).
        self.worker_speeds: Dict[str, float] = dict(worker_speeds or {})
        self.churn_injector: Optional[ChurnInjector] = (
            ChurnInjector(churn_events, mode=churn_mode, on_return=self._on_churn_return)
            if churn_events
            else None
        )

        # Run-wide telemetry (repro.obs).  Tracing needs per-worker state
        # intervals, so it forces an internal TimelineTrace even when the
        # caller did not ask for one on the result; ``self.trace`` (and
        # therefore ``RunResult.trace``) stays None unless ``enable_trace``.
        self.telemetry_config = telemetry
        self.tracer: Optional[Tracer] = None
        self._worker_timeline: Optional[TimelineTrace] = self.trace
        if telemetry is not None and telemetry.trace:
            self.tracer = Tracer(process="engine")
            if self._worker_timeline is None:
                self._worker_timeline = TimelineTrace()
        # When metrics are requested the registry exists *before* the run so
        # workers can observe histograms (gossip delta sizes, eviction
        # latencies) into it live; ingestion at the end reuses it.
        self.obs_registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if telemetry is not None and telemetry.metrics else None
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(self) -> "DistributedBnBSimulation":
        """Instantiate the engine, network, workers and failure schedule."""
        rng = RngRegistry(self.seed)
        self.engine = SimulationEngine()
        self.net = Network(
            self.engine,
            latency=self.network_config.latency,
            loss_probability=self.network_config.loss_probability,
            partitions=self.network_config.partitions,
            rng=rng.stream("network"),
        )
        # Per-kind traffic accounting (the network is protocol-agnostic, so
        # the classifier is installed here, where the protocol is known).
        self.net.classify = MessageKinds.of
        self.net.tracer = self.tracer

        names = worker_names(self.n_workers)
        root_sub = self.problem.root_subproblem()
        # One process-wide arena: every worker's completed table and all of
        # its per-peer gossip views intern their trie nodes here, so shared
        # completion state is stored once instead of once per view.
        arena = TrieArena() if self.use_arena else None
        self.workers = []
        self._stop_scan = 0
        for index, name in enumerate(names):
            worker = WorkerEntity(
                name,
                self.problem,
                self.config,
                names,
                rng=rng.stream(f"worker:{name}"),
                metrics=self.metrics,
                trace=self._worker_timeline,
                initial_work=[root_sub] if index == 0 else [],
                expected_node_cost=self.expected_node_cost,
                arena=arena,
                tracer=self.tracer,
                speed=self.worker_speeds.get(name, 1.0),
                obs_metrics=self.obs_registry,
            )
            self.net.register(worker)
            self.workers.append(worker)

        self.injector.install(self.engine, self.net)
        if self.churn_injector is not None:
            self.churn_injector.install(self.engine, self.net)
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _on_churn_return(self, name: str) -> None:
        # A rejoined worker may be un-terminated again: restart the
        # otherwise-monotone stop scan from the beginning.
        self._stop_scan = 0

    def _stop_condition(self) -> bool:
        # Evaluated after every event, so the naive all()-scan would cost
        # O(workers) per event.  "Dead or terminated" is monotone — a worker
        # that passed the test once passes it forever — so scanning resumes
        # where the last call found its counterexample: O(1) amortised.
        # (Churn breaks monotonicity at each return event, which resets the
        # scan; while a return is still pending the run must not stop.)
        if self.churn_injector is not None and self.churn_injector.pending_returns > 0:
            return False
        workers = self.workers
        i = self._stop_scan
        n = len(workers)
        while i < n:
            worker = workers[i]
            if worker.alive and not worker.terminated:
                self._stop_scan = i
                return False
            i += 1
        return True

    def run(self) -> RunResult:
        """Run the simulation to completion and assemble the result."""
        if self.engine is None:
            self.build()
        assert self.engine is not None and self.net is not None

        for worker in self.workers:
            worker.on_start()

        self.engine.run(
            until=self.max_sim_time,
            max_events=self.max_events,
            stop_when=self._stop_condition,
        )
        end_time = self.engine.now
        if self._worker_timeline is not None:
            self._worker_timeline.finish(end_time)

        result = self._collect_results(end_time)
        result.telemetry = self._build_telemetry(end_time, result)
        return result

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _collect_results(self, end_time: float) -> RunResult:
        assert self.net is not None and self.engine is not None
        return assemble_run_result(
            self.workers,
            n_workers=self.n_workers,
            end_time=end_time,
            problem=self.problem,
            reference_optimum=self.reference_optimum,
            uniprocessor_time=self.uniprocessor_time,
            metrics=self.metrics,
            network_stats=self.net.stats,
            kind_bytes=self.net.kind_bytes,
            trace=self.trace,
            engine_counters={
                "events_processed": self.engine.events_processed,
                "peak_heap_len": self.engine.peak_heap_len,
                "compactions": self.engine.compactions,
            },
        )

    def _build_telemetry(
        self, end_time: float, result: RunResult
    ) -> Optional[Telemetry]:
        """Assemble the run's :class:`~repro.obs.Telemetry`, if configured."""
        cfg = self.telemetry_config
        if cfg is None or not cfg.enabled:
            return None
        tracer: Optional[Tracer] = None
        if cfg.trace and self.tracer is not None:
            tracer = self.tracer
            tracer.span(
                "run",
                0.0,
                end_time,
                process="engine",
                category="engine",
                args={"workers": self.n_workers},
            )
            if self._worker_timeline is not None:
                tracer.add_timeline(self._worker_timeline, category="worker")
            for name, stats in result.workers.items():
                if stats.crashed and stats.crashed_at is not None:
                    tracer.event(
                        "crash", ts=stats.crashed_at, process=name, category="engine"
                    )
        metrics: Optional[MetricsRegistry] = None
        if cfg.metrics:
            metrics = ingest_run_result(
                self.obs_registry if self.obs_registry is not None else MetricsRegistry(),
                result,
            )
        return Telemetry(
            tracer=tracer,
            metrics=metrics,
            meta={"backend": "simulated", "clock": "sim-seconds"},
        )


def sequential_reference_time(
    tree: BasicTree, *, granularity: float = 1.0, prune: bool = True
) -> float:
    """Uniprocessor execution time of a tree: the cost of a sequential run.

    This is the reference the speedup curve of Figure 4 is measured against —
    the time a single processor would need on the same workload.  With
    ``prune=False`` (the paper's treatment of random test trees) this is just
    the sum of all node times; with pruning it is measured by an actual
    sequential run.
    """
    from ..bnb.pool import SelectionRule
    from ..bnb.sequential import SequentialSolver

    if not prune:
        return tree.total_node_time() * granularity
    problem = TreeReplayProblem(tree, granularity=granularity, prune=True)
    result = SequentialSolver(problem).solve()
    return result.total_cost


def run_tree_simulation(
    tree: BasicTree,
    n_workers: int,
    *,
    config: Optional[AlgorithmConfig] = None,
    network: Optional[NetworkConfig] = None,
    failures: Iterable[CrashEvent] = (),
    seed: int = 0,
    granularity: float = 1.0,
    prune: bool = True,
    enable_trace: bool = False,
    max_sim_time: Optional[float] = None,
    max_events: Optional[int] = None,
    uniprocessor_time: Optional[float] = None,
    compute_uniprocessor_time: bool = True,
    use_arena: bool = True,
    shards: int = 1,
    shard_processes: Optional[bool] = None,
    telemetry: Optional[TelemetryConfig] = None,
    churn_events: Sequence[Tuple[float, str, str]] = (),
    churn_mode: str = "restart",
    worker_speeds: Optional[Mapping[str, float]] = None,
) -> RunResult:
    """Run the distributed algorithm on a basic tree and return the result.

    This is the entry point the paper's experiments map onto: a precomputed
    (or random) basic tree, a processor count, a network model, an optional
    crash schedule, and the algorithm configuration.  ``uniprocessor_time``
    may be passed explicitly (parameter sweeps compute it once and reuse it);
    otherwise it is measured with a sequential pruned run unless
    ``compute_uniprocessor_time`` is disabled.

    ``shards > 1`` partitions the workers across that many simulation shards
    with deterministic cross-shard message exchange
    (:mod:`repro.simulation.sharding`); ``shard_processes`` selects OS
    processes (``None`` picks them automatically on multi-core hosts).

    As an *experiment-facing* entry point this is superseded by the unified
    Scenario API (``repro.scenario``, backend ``"simulated"``), which wraps
    it; it remains the supported programmatic runner underneath.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    if shards > n_workers:
        raise ValueError(
            f"cannot split {n_workers} worker(s) across {shards} shards: "
            "each shard needs at least one worker (reduce --shards or raise workers)"
        )
    if shards > 1 and (churn_events or worker_speeds):
        raise ValueError(
            "churn/worker speeds are not supported with shards > 1 "
            "(the failure detector and rejoin path need the single-process engine)"
        )
    if uniprocessor_time is None and compute_uniprocessor_time:
        uniprocessor_time = sequential_reference_time(tree, granularity=granularity, prune=prune)
    if shards > 1:
        from ..simulation.sharding import run_sharded_tree_simulation

        return run_sharded_tree_simulation(
            tree,
            n_workers,
            shards=shards,
            processes=shard_processes,
            config=config,
            network=network,
            failures=failures,
            seed=seed,
            granularity=granularity,
            prune=prune,
            enable_trace=enable_trace,
            max_sim_time=max_sim_time,
            max_events=max_events,
            uniprocessor_time=uniprocessor_time,
            use_arena=use_arena,
            telemetry=telemetry,
        )
    problem = TreeReplayProblem(tree, granularity=granularity, prune=prune)
    expected_node_cost = tree.mean_node_time() * granularity
    sim = DistributedBnBSimulation(
        problem,
        n_workers,
        config=config,
        network=network,
        failures=failures,
        seed=seed,
        enable_trace=enable_trace,
        reference_optimum=tree.optimal_value(),
        uniprocessor_time=uniprocessor_time,
        expected_node_cost=expected_node_cost,
        max_sim_time=max_sim_time,
        max_events=max_events,
        use_arena=use_arena,
        telemetry=telemetry,
        churn_events=churn_events,
        churn_mode=churn_mode,
        worker_speeds=worker_speeds,
    )
    return sim.run()
