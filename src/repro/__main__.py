"""``python -m repro`` — run declarative scenarios from the command line.

See :mod:`repro.scenario.cli` for the subcommands (``run``, ``compare``,
``list-scenarios``) and ``docs/SCENARIOS.md`` for the full usage guide.
"""

from .scenario.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
