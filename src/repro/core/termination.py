"""Almost-implicit termination detection (Section 5.4 of the paper).

The same tree encoding that drives failure recovery also solves termination
detection: when successive contractions of a process's completed-code table
produce the code of the **root** problem, every subproblem of the tree has
been completed and the computation is over.

Because the epidemic dissemination of work reports guarantees only *eventual*
consistency, some members may lack the information needed to reach the root
code on their own.  The paper therefore adds one final step: each member that
detects termination sends one last work report containing just the root code
to **all** members in its local membership view, so that everybody terminates
promptly instead of waiting for gossip to catch up (or worse, starting useless
recovery work).

:class:`TerminationDetector` packages this rule: it watches a
:class:`~repro.core.completion.CompletionTracker`, reports the transition into
the terminated state exactly once, and knows whether the local process still
owes the final root broadcast.
"""

from __future__ import annotations

from typing import Optional

from .completion import CompletionTracker
from .encoding import ROOT, PathCode
from .work_report import BestSolution, WorkReport

__all__ = ["TerminationDetector", "is_root_report", "make_root_report"]


def is_root_report(report: WorkReport) -> bool:
    """True when a received work report announces global termination."""
    return report.contains_root()


def make_root_report(sender: str, *, best: Optional[BestSolution] = None, sequence: int = 0) -> WorkReport:
    """Build the final root-code work report a terminating member broadcasts."""
    return WorkReport(
        sender=sender,
        codes=frozenset({ROOT}),
        best=best if best is not None else BestSolution(),
        sequence=sequence,
    )


class TerminationDetector:
    """Tracks the local view of global termination for one process.

    The detector distinguishes three ways a process can learn that the
    computation is over:

    * ``"local"`` — its own table contracted to the root code;
    * ``"root_report"`` — it received another member's final root report;
    * ``None`` — termination not yet detected.
    """

    def __init__(self, tracker: CompletionTracker) -> None:
        self._tracker = tracker
        self._detected_at: Optional[float] = None
        self._detected_via: Optional[str] = None
        self._root_broadcast_done = False

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    def check_local(self, now: float) -> bool:
        """Re-evaluate the local table; returns ``True`` on the first detection."""
        if self._detected_at is not None:
            return False
        if self._tracker.is_tree_complete():
            self._detected_at = now
            self._detected_via = "local"
            return True
        return False

    def observe_report(self, report: WorkReport, now: float) -> bool:
        """Process a received report; returns ``True`` on the first detection.

        A root report short-circuits detection.  Any other report is assumed
        to have already been merged into the tracker by the caller (the worker
        merges before notifying the detector); the detector then simply
        re-checks whether the table has contracted to the root.
        """
        if is_root_report(report):
            self._tracker.table.add(ROOT)
            if self._detected_at is None:
                self._detected_at = now
                self._detected_via = "root_report"
                return True
            return False
        return self.check_local(now)

    def mark_root_broadcast_sent(self) -> None:
        """Record that this process has sent its final root report."""
        self._root_broadcast_done = True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def terminated(self) -> bool:
        """True once termination has been detected by any means."""
        return self._detected_at is not None

    @property
    def detected_at(self) -> Optional[float]:
        """Simulated time of the first detection, or ``None``."""
        return self._detected_at

    @property
    def detected_via(self) -> Optional[str]:
        """How termination was detected: ``"local"``, ``"root_report"`` or ``None``."""
        return self._detected_via

    def needs_root_broadcast(self) -> bool:
        """True when the final root report still has to be sent.

        Only members that detected termination *locally* owe the broadcast —
        a member woken up by someone else's root report does not need to
        re-broadcast (the paper's rule: "each member that detected the
        termination will have to send one more work report ... to all members
        from its local membership list").
        """
        return (
            self._detected_at is not None
            and self._detected_via == "local"
            and not self._root_broadcast_done
        )

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return (
            f"TerminationDetector(terminated={self.terminated}, via={self._detected_via}, "
            f"at={self._detected_at})"
        )
