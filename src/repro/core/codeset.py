"""Sets of subproblem codes and the paper's *contraction* operation.

The fault-tolerance mechanism keeps, on every process, a table of the
subproblem codes that are known to be **completed** (Section 5.3.2 of the
paper: a subproblem is completed when it has been branched and either it is a
leaf or both of its children are completed).

Two observations make the table small and the mechanism cheap:

* if both children of a node are completed, the node itself is completed, so
  the two sibling codes can be replaced by the code of their parent
  ("recursive replacement of pairs of sibling codes with the code of their
  parent"); and
* a code whose ancestor is already in the table is redundant and can be
  deleted ("deletion of codes whose ancestors are also in the list").

Applying these two rules to a fixed point is what the paper calls *list
contraction* (or compression, when applied to an outgoing work report).  When
contraction reduces the table to the single root code ``()``, the whole tree
is complete and termination is detected (Section 5.4).

:class:`CodeSet` is the mutable container implementing these rules.  It is
backed by a trie over ``<variable, value>`` decisions so that insertion,
coverage queries and the sibling-merge cascade all cost ``O(depth)`` — the
per-operation cost the simulator charges as "list contraction time".
:func:`contract` is the standalone functional form used for one-shot
compression of outgoing reports, and :func:`contract_reference` is a naive
fixed-point implementation kept as a test oracle.

Performance invariants
----------------------
The container is tuned for the operations the simulator performs millions of
times per run, and keeps the following invariants (guarded by the
property-based equivalence tests against :func:`contract_reference`):

* **Dict-backed trie** — an interior trie node is a plain ``dict`` mapping a
  packed integer branch key ``(variable << 1) | value`` to its child, and a
  *completed* node is the sentinel value ``True`` (completed nodes never
  have children under the contraction invariant, so they need no dict at
  all).  Hot walks therefore perform one int-keyed dict lookup and two
  identity checks per level — no attribute access, no node objects, no
  tuple hashing — and the sibling of key ``k`` is simply ``k ^ 1``.
  :meth:`PathCode._key_path` caches the packed-key tuple on the code.
* **Allocation-free covered inserts** — :meth:`CodeSet.add` first walks only
  *existing* trie nodes; when the code turns out to be covered by a completed
  ancestor (or by itself) it returns without having allocated anything.
  Nodes for the missing suffix are created only once coverage has been ruled
  out.
* **Persistent walk chain** — the set remembers the dicts along the most
  recent insertion path.  Because B&B workers complete subproblems in
  near-DFS order, consecutive inserts usually share a deep prefix, which the
  next :meth:`CodeSet.add` skips with one C-level tuple compare instead of
  re-walking the trie.  The chain also serves as the parent list for the
  merge cascade, so cascades never re-walk either.  Merges and subsumptions
  invalidate exactly a suffix of the chain (tracked by a counter).
* **Memoised coverage queries** — :meth:`CodeSet.covers` caches results per
  code between mutations, collapsing the read-heavy phases (pool draining,
  grant filtering) to one dict probe per repeated query.
* **Incremental size counters** — ``len()``, :meth:`wire_size` and (between
  removals) :meth:`max_depth` are O(1) counter reads maintained by every
  mutation, never recomputed by re-iterating the trie.  ``max_depth`` falls
  back to one lazy trie walk after a merge/subsumption removed nodes (the
  only events that can lower it).
* **Cached contracted view** — :meth:`codes` memoises its frozenset until
  the next logical change, so repeated snapshotting (table gossip) is free.
* **Trie-to-trie merge** — :meth:`merge` walks the other set's trie directly
  and inserts raw pair tuples shallow-first, skipping `PathCode`
  construction and re-contraction of the (already contracted) input.
* **Incremental missing frontier** — the set of uncovered sibling subtrees
  (the paper's *complement*, :meth:`missing_frontier`) is maintained as
  codes are inserted and contracted, in O(changed) amortised per mutation:
  an insertion touches at most one frontier entry per created trie level,
  and a subsumption or merge cascade prunes exactly the frontier entries of
  the dying subtree while it is being walked for the size counters anyway.
  Maintenance is *dormant until the first complement query* (one activation
  walk), so sets that are never complemented — outgoing report compression,
  received-snapshot staging — pay nothing.  Queries between mutations are
  O(1) reads of a memoised frozenset, so a recovery decision no longer
  re-walks the whole trie.  :meth:`missing_frontier_reference` keeps the
  from-scratch walk as the property-test oracle.
* **Cached frozen view** — :meth:`frozen_view` returns a structural copy of
  the trie, memoised until the next mutation, so table-gossip snapshots can
  ship the contracted trie itself and receivers can merge trie-to-trie (or
  adopt the copy outright) instead of re-adding code by code.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .encoding import (
    _CODE_HEADER_BYTES,
    _PAIR_WIRE_BYTES,
    ROOT,
    Branch,
    PathCode,
)

__all__ = [
    "contract",
    "contract_reference",
    "covers",
    "CodeSet",
    "ContractionStats",
]

#: An interior trie node maps packed branch keys ``(variable << 1) | value``
#: to children; a completed node is the bare sentinel ``True`` (it can have
#: no children, see module docstring).
_TrieDict = Dict[int, Union[bool, dict]]


def _keys_to_pairs(keys: Iterable[int]) -> Tuple[Branch, ...]:
    """Decode a packed-key path back into ``(variable, value)`` pairs."""
    return tuple([(k >> 1, k & 1) for k in keys])


#: Upper bound on memoised coverage queries per set (reset on mutation).
_COVERS_CACHE_MAX = 8192

#: Sentinel node ids of :mod:`repro.core.arena` (duplicated here because the
#: arena imports this module; the arena asserts the values match).
_ARENA_DONE = 0
_ARENA_EMPTY = 1

#: Shared frontier view of an empty set: the whole tree is missing.
_ROOT_FRONTIER = frozenset({ROOT})

# Structural-digest constants — must match ``repro.core.work_report``'s
# ``table_digest`` exactly (:meth:`CodeSet.structural_digest` computes the
# same value by walking the trie directly; duplicated because work_report
# imports this module).
_FNV64_PRIME = 0x100000001B3
_FNV64_OFFSET = 0xCBF29CE484222325
_MASK64 = (1 << 64) - 1
_DONE_DIGEST = 0x9E3779B97F4A7C15


def _digest_node(node: _TrieDict) -> int:
    """Structural FNV digest of one trie node (see ``table_digest``)."""
    h = _FNV64_OFFSET
    for key in sorted(node):
        value = node[key]
        child = _DONE_DIGEST if value is True else _digest_node(value)
        h = ((h ^ (key + 1)) * _FNV64_PRIME) & _MASK64
        h = ((h ^ child) * _FNV64_PRIME) & _MASK64
    return h


def covers(codes: Iterable[PathCode], target: PathCode) -> bool:
    """True when ``target`` or any of its ancestors is in ``codes``.

    A completed-code set *covers* a subproblem when the set already records
    that subproblem (or an enclosing subtree) as completed.

    Cost model: a :class:`CodeSet` answers in ``O(depth)`` via its trie; a
    pre-built ``set``/``frozenset``/``dict`` is probed directly with one
    hash lookup per ancestor (no copy is made — pass one of these on hot
    paths); any other iterable must be materialised into a temporary set
    first, which costs O(len(codes)) *per call*.  An empty collection can
    never cover anything and returns immediately.
    """
    if isinstance(codes, CodeSet):
        return codes.covers(target)
    if isinstance(codes, (set, frozenset, dict)):
        code_set = codes
    else:
        # O(n) materialisation — callers on hot paths should pass a set.
        code_set = set(codes)
    if not code_set:
        return False
    if target in code_set:
        return True
    pairs = target.pairs
    make = PathCode._make
    for cut in range(len(pairs) - 1, -1, -1):
        if make(pairs[:cut]) in code_set:
            return True
    return False


class ContractionStats:
    """Counters describing the work done by contraction operations.

    The paper reports "list contraction time" as one of the overhead terms in
    Figure 3 and Table 1; these counters let the simulator charge a cost per
    elementary contraction step instead of wall-clock time, which keeps the
    simulation deterministic.
    """

    __slots__ = ("merges", "subsumptions", "insertions", "calls")

    def __init__(self) -> None:
        self.merges = 0
        self.subsumptions = 0
        self.insertions = 0
        self.calls = 0

    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "merges": self.merges,
            "subsumptions": self.subsumptions,
            "insertions": self.insertions,
            "calls": self.calls,
        }

    def elementary_operations(self) -> int:
        """Total elementary rewrite steps performed (merges + subsumptions + insertions)."""
        return self.merges + self.subsumptions + self.insertions

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return (
            f"ContractionStats(merges={self.merges}, subsumptions={self.subsumptions}, "
            f"insertions={self.insertions}, calls={self.calls})"
        )


def _completed_stats(children: _TrieDict) -> Tuple[int, int]:
    """Return ``(count, sum_of_relative_depths)`` of completed codes below.

    Depths are relative to the node owning ``children`` (its direct entries
    are at relative depth 1), letting the caller convert the aggregate into
    absolute wire bytes without materialising per-code objects.
    """
    total = 0
    depth_sum = 0
    stack = [(children, 1)]
    while stack:
        node, rel = stack.pop()
        deeper = rel + 1
        for value in node.values():
            if value is True:
                total += 1
                depth_sum += rel
            else:
                stack.append((value, deeper))
    return total, depth_sum


def _drop_subtree_frontier(
    children: _TrieDict, base: Tuple[int, ...], frontier: set
) -> Tuple[int, int]:
    """Collect :func:`_completed_stats` of a dying subtree while pruning its
    missing-frontier entries.

    ``children`` is the trie dict rooted at key path ``base`` that is about
    to be replaced by a completed leaf (subsumption or sibling merge).  Every
    frontier entry inside the subtree is, by the frontier invariant, the
    absent sibling of one of its edges, so one walk discards them all and
    returns the same ``(count, sum_of_relative_depths)`` aggregate as
    :func:`_completed_stats` — the caller pays a single traversal for both
    jobs, keeping frontier maintenance O(size of the removed subtree).
    """
    total = 0
    depth_sum = 0
    base_len = len(base)
    stack = [(children, base)]
    while stack:
        node, path = stack.pop()
        rel = len(path) - base_len + 1
        for key, value in node.items():
            if (key ^ 1) not in node:
                frontier.discard(path + (key ^ 1,))
            if value is True:
                total += 1
                depth_sum += rel
            else:
                stack.append((value, path + (key,)))
    return total, depth_sum


class CodeSet:
    """A contracted set of completed subproblem codes.

    The set maintains the contraction invariant after every insertion:

    * no element is an ancestor or descendant of another element, and
    * no two elements are siblings.

    Membership (``code in codeset``) tests exact membership of the contracted
    representation; :meth:`covers` tests logical completion (the code or one
    of its ancestors is present), which is the query the algorithm actually
    needs.
    """

    __slots__ = (
        "_root",
        "_complete",
        "_count",
        "_wire",
        "_max_depth",
        "_max_depth_dirty",
        "_codes_cache",
        "_covers_cache",
        "_frontier",
        "_frontier_cache",
        "_frozen_cache",
        "_chain",
        "_last_keys",
        "_last_valid",
        "_arena",
        "_anid",
        "_apending",
        "stats",
    )

    def __init__(self, codes: Optional[Iterable[PathCode]] = None) -> None:
        #: Trie of branch dicts; ``True`` values are completed leaves.
        self._root: _TrieDict = {}
        #: Whether the root code itself is completed (the root has no parent
        #: dict to hold its sentinel, so it gets an explicit flag).
        self._complete = False
        self._count = 0
        #: Incrementally maintained total wire size of the contracted codes.
        self._wire = 0
        #: Incrementally maintained depth of the deepest code; exact while
        #: ``_max_depth_dirty`` is False, recomputed lazily otherwise.
        self._max_depth = 0
        self._max_depth_dirty = False
        #: Memoised frozenset of the contracted codes (None = stale).
        self._codes_cache: Optional[frozenset] = None
        #: Memoised coverage-query results (reset on every logical change).
        self._covers_cache: Dict[PathCode, bool] = {}
        #: Incrementally maintained missing frontier, as raw packed-key paths
        #: (see :meth:`missing_frontier`).  Invariant while not ``None``: for
        #: every edge ``(dict, key)`` present in the trie whose sibling key
        #: is absent from the same dict, the sibling's key path is in this
        #: set — and nothing else is.  ``None`` means maintenance is dormant:
        #: it activates on the first frontier query (one trie walk) so pure
        #: insertion/merge workloads that never complement pay nothing.
        self._frontier: Optional[set] = None
        #: Memoised PathCode view of ``_frontier`` (None = stale).
        self._frontier_cache: Optional[frozenset] = None
        #: Memoised structural copy handed out by :meth:`frozen_view`.
        self._frozen_cache: Optional["CodeSet"] = None
        #: Persistent walk chain: ``_chain[i]`` is the interior dict at depth
        #: ``i`` along the most recent insertion path (``_chain[0]`` is
        #: always the root dict).  B&B workers complete subproblems in
        #: near-DFS order, so consecutive inserts share deep prefixes; the
        #: chain lets :meth:`add` resume below the shared prefix with cheap
        #: int comparisons instead of re-walking the trie, and doubles as
        #: the parent list for the merge cascade.  ``_last_valid`` is the
        #: number of leading chain entries still alive (merges and
        #: subsumptions kill exactly a suffix).
        self._chain: List[_TrieDict] = [self._root]
        self._last_keys: Tuple[int, ...] = ()
        self._last_valid = 1
        #: Optional :class:`repro.core.arena.TrieArena` shadow.  When
        #: attached, ``_anid`` mirrors this set's logical content as an
        #: interned arena node id, so derived views (``codes()``, digests,
        #: deltas) are shared with every other holder of the same content.
        #: The nested-dict trie stays authoritative — including its
        #: contraction stats, which the simulation charges time from.
        self._arena = None
        self._anid = _ARENA_EMPTY
        #: Novel key paths inserted since the last shadow read — the arena
        #: mirror is batched (see :meth:`_arena_sync`).
        self._apending: List[Tuple[int, ...]] = []
        self.stats = ContractionStats()
        if codes:
            self.update(codes)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, code: PathCode) -> bool:
        try:
            keys = code._keys
        except AttributeError:
            keys = code._key_path()
        if not keys:
            return self._complete
        node = self._root
        for k in keys[:-1]:
            node = node.get(k)
            if node is None or node is True:
                return False
        return node.get(keys[-1]) is True

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[PathCode]:
        yield from self._iter_completed()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CodeSet):
            return self.codes() == other.codes()
        if isinstance(other, (set, frozenset)):
            return set(self._iter_completed()) == set(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        preview = ", ".join(sorted(c.encode() for c in self._iter_completed())[:6])
        return f"CodeSet(n={self._count}, [{preview}...])"

    def _iter_completed(self) -> Iterator[PathCode]:
        make = PathCode._make
        for path in self._iter_completed_keys():
            yield make(_keys_to_pairs(path))

    def _iter_completed_keys(self) -> Iterator[Tuple[int, ...]]:
        """Yield the packed-key paths of the contracted codes (no PathCode)."""
        if self._complete:
            yield ()
            return
        stack: List[Tuple[_TrieDict, Tuple[int, ...]]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            for key, value in node.items():
                if value is True:
                    yield path + (key,)
                else:
                    stack.append((value, path + (key,)))

    def codes(self) -> frozenset:
        """Return the contracted codes as a frozen set (memoised until changed).

        With an arena shadow attached the frozenset comes from the arena's
        per-node memo, so every table or view in the group holding the same
        logical content hands out the *same object* — receivers recognise it
        by identity and merge in O(1).
        """
        cache = self._codes_cache
        if cache is None:
            arena = self._arena
            if arena is not None:
                cache = arena.codes_at(self._arena_sync())
            else:
                cache = frozenset(self._iter_completed())
            self._codes_cache = cache
        return cache

    def covers(self, code: PathCode) -> bool:
        """True when ``code`` is known completed (itself or via an ancestor).

        Results are memoised per code until the next logical change to the
        set: between mutations (the common read-heavy phase — draining a
        subproblem pool, filtering a grant) a repeated query is a single
        dict probe on the code's cached hash instead of a trie walk.
        """
        if self._complete:
            return True
        cache = self._covers_cache
        cached = cache.get(code)
        if cached is not None:
            return cached
        try:
            keys = code._keys
        except AttributeError:
            keys = code._key_path()
        node = self._root
        result = False
        for k in keys:
            node = node.get(k)
            if node is None:
                break
            if node is True:
                result = True
                break
        if len(cache) < _COVERS_CACHE_MAX:
            cache[code] = result
        return result

    def is_complete(self) -> bool:
        """True when the whole tree is completed (the root code is present)."""
        return self._complete

    def wire_size(self) -> int:
        """Total estimated encoded size of the set, in bytes (O(1) counter)."""
        return self._wire

    def max_depth(self) -> int:
        """Depth of the deepest code in the set (0 for an empty set).

        O(1) while only insertions have happened since the last call; one
        lazy trie walk after a merge or subsumption removed deep codes.
        """
        if self._max_depth_dirty:
            deepest = 0
            stack: List[Tuple[_TrieDict, int]] = [(self._root, 1)]
            while stack:
                node, depth = stack.pop()
                deeper = depth + 1
                for value in node.values():
                    if value is True:
                        if depth > deepest:
                            deepest = depth
                    else:
                        stack.append((value, deeper))
            self._max_depth = deepest
            self._max_depth_dirty = False
        return self._max_depth

    def structural_digest(self) -> int:
        """Order-independent table digest, walking the trie directly.

        Produces exactly ``work_report.table_digest(self.codes())`` — the
        trie *is* the canonical layout the digest is defined over — without
        materialising the codes frozenset or rebuilding a trie from it.
        """
        if self._complete:
            return (_DONE_DIGEST ^ _FNV64_PRIME) & _MASK64
        if not self._count:
            return 0
        return (_digest_node(self._root) ^ (self._count * _FNV64_PRIME)) & _MASK64

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, code: Union[PathCode, Tuple[Branch, ...]]) -> bool:
        """Insert a completed code, restoring the contraction invariant.

        Returns ``True`` when the logical content of the set changed (the code
        was not already covered).  Insertion cascades sibling merges upward,
        so a single ``add`` may replace a long chain of codes by one ancestor —
        this is exactly how termination eventually surfaces as the root code.

        ``code`` is normally a :class:`PathCode`; the trie-to-trie fast paths
        (:meth:`merge`) pass raw packed-key tuples to skip object
        construction.
        """
        try:
            keys = code._keys
        except AttributeError:
            if type(code) is PathCode:
                keys = code._key_path()
            else:  # raw key tuple from a trie-to-trie fast path
                keys = code
        stats = self.stats
        stats.calls += 1
        if self._complete:
            return False

        # Resume from the persistent walk chain: skip the longest prefix
        # shared with the previous insertion path whose chain entries are
        # still alive.  An int comparison per level replaces a dict lookup —
        # for the near-DFS completion order of a real B&B run, almost the
        # whole walk.
        chain = self._chain  # chain[i] = interior dict at depth i
        n = len(keys)
        idx = 0
        limit = self._last_valid - 1
        if limit > 0:
            last = self._last_keys
            if n < limit:
                limit = n
            if len(last) < limit:
                limit = len(last)
            if limit > 0 and keys[0] == last[0]:
                # Near-DFS insertion order almost always shares the whole
                # usable prefix, so try one C-level slice compare (guarded
                # by the cheap endpoint probes) before scanning.
                if keys[limit - 1] == last[limit - 1] and keys[:limit] == last[:limit]:
                    idx = limit
                else:
                    idx = 1
                    while idx < limit and keys[idx] == last[idx]:
                        idx += 1
        node = chain[idx]
        if len(chain) <= n:
            chain.extend([None] * (n + 1 - len(chain)))

        # Phase 1: walk only nodes that already exist.  A completed node on
        # the way down means the code is covered — return without having
        # allocated a single trie node.  Chain slots are overwritten in
        # place (``_last_valid`` bounds the live prefix), so the walk pays
        # one list-item store per level and never reallocates.
        while idx < n:
            child = node.get(keys[idx])
            if child is None:
                break
            if child is True:
                # Covered.  The chain entries written so far stay valid.
                self._last_keys = keys
                self._last_valid = idx + 1
                return False
            idx += 1
            chain[idx] = child
            node = child

        stats.insertions += 1
        if self._arena is not None:
            # Record the (not covered) insertion for the arena shadow; the
            # mirror is rebuilt lazily in one batch when the shadow is next
            # read (:meth:`_arena_sync`), so a gossip-quiet stretch of
            # completions costs one merge instead of one spine rebuild each.
            self._apending.append(keys)
        self._codes_cache = None
        self._frontier_cache = None
        self._frozen_cache = None
        if self._covers_cache:
            self._covers_cache = {}
        created = n - idx
        frontier = self._frontier

        if created:
            if frontier is not None:
                # Frontier maintenance at the first created level: the edge
                # ``keys[idx]`` is about to appear in the existing dict
                # ``node``.  If its sibling edge already exists, the inserted
                # path itself was a frontier entry and stops being missing;
                # otherwise the sibling subtree becomes the new missing
                # entry.  Every deeper created level is a fresh single-entry
                # dict, so its sibling is missing by construction.
                sib = keys[idx] ^ 1
                if sib in node:
                    frontier.discard(keys[: idx + 1])
                else:
                    frontier.add(keys[:idx] + (sib,))
                for level in range(idx + 1, n):
                    frontier.add(keys[:level] + (keys[level] ^ 1,))
            # Phase 2: the code is not covered; create the missing suffix.
            # A freshly created interior dict has exactly one entry, so when
            # two or more levels are created no sibling merge can possibly
            # fire and the cascade is skipped outright.
            while idx < n - 1:
                new: _TrieDict = {}
                node[keys[idx]] = new
                idx += 1
                chain[idx] = new
                node = new
            node[keys[n - 1]] = True
            self._count += 1
            self._wire += _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * n
            if not self._max_depth_dirty and n > self._max_depth:
                self._max_depth = n
            if created > 1:
                self._last_keys = keys
                self._last_valid = n  # chain holds depths 0..n-1
                return True
        else:
            # The code's node already existed as an interior dict (every
            # interior dict leads to at least one completed leaf): the new
            # code subsumes everything below it.  The dying subtree is walked
            # once, yielding the size aggregate and (when frontier
            # maintenance is active) pruning its frontier entries together.
            if frontier is None:
                removed, rel_depth_sum = _completed_stats(node)
            else:
                removed, rel_depth_sum = _drop_subtree_frontier(node, keys, frontier)
            stats.subsumptions += removed
            self._count -= removed
            self._wire -= removed * _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * (
                removed * n + rel_depth_sum
            )
            self._max_depth_dirty = True
            if n == 0:
                self._complete = True
                root: _TrieDict = {}
                self._root = root
                chain[0] = root
                self._frontier = None
                self._last_keys = ()
                self._last_valid = 1
                self._count += 1
                self._wire += _CODE_HEADER_BYTES
                return True
            chain[n - 1][keys[n - 1]] = True  # the dict at depth n is gone
            self._count += 1
            self._wire += _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * n

        # Sibling-merge probe at the insertion level — the overwhelmingly
        # common outcome is "no merge", which exits here.
        i = n - 1
        if chain[i].get(keys[i] ^ 1) is not True:
            self._last_keys = keys
            self._last_valid = n
            return True

        # Cascade sibling merges toward the root; the chain already holds
        # every parent.  Loop invariant at the top: a merge fires at level
        # ``i`` (both children of ``chain[i]`` are completed).
        while True:
            parent = chain[i]
            # Both children completed: replace them by the parent.  The
            # parent cannot have other completed descendants because it has
            # exactly these two children subtrees in a binary tree encoding.
            # In the overwhelmingly common case it holds exactly the two
            # completed leaves (no frontier entries can live between a
            # present sibling pair), so the aggregate is known without a
            # traversal; otherwise the dying dict is walked once for the
            # aggregate and its frontier entries together.
            if len(parent) == 2:
                removed = 2
                rel_depth_sum = 2
            elif frontier is None:
                removed, rel_depth_sum = _completed_stats(parent)
            else:
                removed, rel_depth_sum = _drop_subtree_frontier(
                    parent, keys[:i], frontier
                )
            self._count += 1 - removed
            self._wire += _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * i - (
                removed * _CODE_HEADER_BYTES
                + _PAIR_WIRE_BYTES * (removed * i + rel_depth_sum)
            )
            self._max_depth_dirty = True
            stats.merges += 1
            if i == 0:
                self._complete = True
                root = {}
                self._root = root
                chain[0] = root
                self._frontier = None
                self._last_keys = ()
                self._last_valid = 1
                return True
            up = chain[i - 1]
            up[keys[i - 1]] = True
            if up.get(keys[i - 1] ^ 1) is not True:
                # The merged dict at depth i (and everything deeper) died.
                self._last_keys = keys
                self._last_valid = i
                return True
            i -= 1

    def update(self, codes: Iterable[PathCode]) -> bool:
        """Insert many codes; returns ``True`` when anything changed.

        The batch is inserted shallow-first: once a shallow subtree code is
        in, every deeper code it covers is rejected by the allocation-free
        phase-1 walk, and merge cascades fire at most once per subtree
        instead of rippling after every deep insertion.
        """
        add = self.add
        changed = False
        for code in sorted(codes, key=len):
            if add(code):
                changed = True
        return changed

    def merge(self, other: "CodeSet") -> bool:
        """Merge another contracted set into this one.

        Walks the other trie directly (no intermediate ``frozenset``, no
        `PathCode` construction) and inserts the raw pair tuples
        shallow-first.  The input is already contracted, so no rule can fire
        between its own elements — only against this set's contents.
        """
        add = self.add
        changed = False
        for keys in sorted(other._iter_completed_keys(), key=len):
            if add(keys):
                changed = True
        return changed

    def clear(self) -> None:
        """Remove every code (used when reinitialising a joining member)."""
        self._root = {}
        self._complete = False
        self._count = 0
        self._wire = 0
        self._max_depth = 0
        self._max_depth_dirty = False
        self._codes_cache = None
        self._covers_cache = {}
        self._frontier = None
        self._frontier_cache = None
        self._frozen_cache = None
        self._chain = [self._root]
        self._last_keys = ()
        self._last_valid = 1
        self._anid = _ARENA_EMPTY
        self._apending.clear()

    def copy(self) -> "CodeSet":
        """Return an independent copy (statistics are not copied).

        The trie is cloned structurally — no re-insertion, no cascades.
        """
        if self._arena is not None:
            self._arena_sync()
        clone = CodeSet()
        stack = [(self._root, clone._root)]
        while stack:
            src, dst = stack.pop()
            for pair, value in src.items():
                if value is True:
                    dst[pair] = True
                else:
                    twin: _TrieDict = {}
                    dst[pair] = twin
                    stack.append((value, twin))
        clone._complete = self._complete
        clone._count = self._count
        clone._wire = self._wire
        clone._max_depth = self._max_depth
        clone._max_depth_dirty = self._max_depth_dirty
        clone._codes_cache = self._codes_cache
        clone._frontier = None if self._frontier is None else set(self._frontier)
        clone._frontier_cache = self._frontier_cache
        clone._arena = self._arena
        clone._anid = self._anid
        # The covers memo is deliberately not shared: the clone is typically
        # about to diverge from the original.
        return clone

    def frozen_view(self) -> "CodeSet":
        """A structural copy of this set, memoised until the next mutation.

        Table-gossip snapshots attach this view so receivers can merge
        trie-to-trie (:meth:`merge`) or, when their own table is still empty,
        adopt it outright (:meth:`adopt_from`) instead of re-adding the
        sender's table code by code.  Because the view is refreshed lazily,
        repeated snapshotting of an unchanged table reuses one copy.

        The returned set is *logically frozen*: the owner never mutates it,
        and receivers must only read it (merge sources are read-only).
        """
        view = self._frozen_cache
        if view is None:
            view = self.copy()
            self._frozen_cache = view
        return view

    def adopt_from(self, other: "CodeSet", codes: Optional[frozenset] = None) -> bool:
        """Become a structural copy of ``other``; this set must be empty.

        This is the fast path for a receiver whose table is still blank (a
        fresh joiner catching up from a snapshot): one structural clone
        replaces ``len(other)`` individual insertions, and when the sender's
        contracted ``codes`` frozenset is supplied it is *shared* as this
        set's memoised :meth:`codes` view — no recomputation, no re-hashing.

        Returns ``True`` when anything was adopted (i.e. ``other`` was not
        itself empty).  Raises :class:`ValueError` when this set already has
        content — callers must fall back to :meth:`merge`.
        """
        if self._count or self._complete:
            raise ValueError("adopt_from requires an empty CodeSet")
        if not other._count and not other._complete:
            return False
        donor = other.copy()
        self._root = donor._root
        self._complete = donor._complete
        self._count = donor._count
        self._wire = donor._wire
        self._max_depth = donor._max_depth
        self._max_depth_dirty = donor._max_depth_dirty
        self._codes_cache = codes if codes is not None else donor._codes_cache
        self._covers_cache = {}
        self._frontier = donor._frontier
        self._frontier_cache = donor._frontier_cache
        self._frozen_cache = None
        self._chain = [self._root]
        self._last_keys = ()
        self._last_valid = 1
        arena = self._arena
        if arena is not None:
            onid = arena.node_of(other)
            if onid is not None:
                self._anid = onid
            else:
                self._anid = arena.node_from_keys(self._iter_completed_keys())
        return True

    # ------------------------------------------------------------------ #
    # Arena shadow
    # ------------------------------------------------------------------ #
    def attach_arena(self, arena) -> None:
        """Shadow this set's content in a :class:`repro.core.arena.TrieArena`.

        From this point every mutation keeps an interned arena node id in
        sync with the trie, so derived views are shared group-wide.  The
        nested-dict trie — and its :class:`ContractionStats` — remains the
        authoritative implementation.
        """
        self._arena = arena
        self._apending.clear()
        if self._complete:
            self._anid = _ARENA_DONE
        elif self._count:
            self._anid = arena.node_from_keys(self._iter_completed_keys())
        else:
            self._anid = _ARENA_EMPTY

    def _arena_sync(self) -> int:
        """Flush the batched mirror and return the up-to-date arena node id.

        ``add`` only records each novel key path; the interned node is
        rebuilt here, once per *read* of the shadow, by interning the whole
        pending batch as one small trie and merging it in.  Between gossip
        reads this replaces per-code spine rebuilds (one intern per trie
        level per code) with a single memoised merge.
        """
        pend = self._apending
        if pend:
            arena = self._arena
            if len(pend) == 1:
                self._anid = arena.insert(self._anid, pend[0])[0]
            else:
                self._anid = arena.merge(self._anid, arena.node_from_keys(pend))
            pend.clear()
        return self._anid

    def _arena_commit(self, nid: int) -> None:
        """Adopt ``nid`` as the mirror state, discarding the pending batch.

        For callers that already know the interned node equal to this set's
        content — e.g. a tracker that merged a received delta whose arena
        node was computed once by the sender — this replaces the batch
        flush's ``node_from_keys`` + ``merge`` with a pointer store.  The
        caller is responsible for ``nid`` actually matching the dict state
        (canonical contracted form is unique, so "same content" is exactly
        "same id").
        """
        self._apending.clear()
        self._anid = nid

    def arena_id(self) -> Optional[int]:
        """Arena node id of the current content (``None`` when no shadow)."""
        if self._arena is None:
            return None
        return self._arena_sync()

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def missing_frontier(self) -> frozenset:
        """Minimal set of subtree codes *not* covered by this set.

        The returned codes are pairwise disjoint, none is covered, and
        together with the completed set they cover the whole tree: this is the
        paper's *complement* operation.  A subtree is missing exactly where a
        path explores one branch of a decision but the sibling branch is
        absent.

        The frontier is maintained *incrementally*: the first query activates
        maintenance with one trie walk, and from then on every mutation
        updates the frontier in O(changed) amortised (see the module
        docstring) — sets that are never complemented (report compression,
        snapshot merging) pay nothing.  Between mutations the query is an
        O(1) read of a memoised frozenset; after a mutation it pays one
        conversion of the raw key paths into :class:`PathCode` objects.  The
        from-scratch walk survives as :meth:`missing_frontier_reference`, the
        property-test oracle.

        For an empty set the whole tree is missing (``{ROOT}``); for a
        complete set the frontier is empty.  The returned frozenset is shared
        between calls — treat it as immutable.
        """
        if self._complete:
            return frozenset()
        if self._count == 0:
            return _ROOT_FRONTIER
        if self._arena is not None:
            # Shadowed sets share the arena's per-node frontier memo (and its
            # interned PathCodes) instead of rebuilding a private frozenset
            # after every mutation.
            return self._arena.frontier_at(self._arena_sync())
        cache = self._frontier_cache
        if cache is None:
            frontier = self._frontier
            if frontier is None:
                # First complement query: activate incremental maintenance.
                frontier = set()
                stack: List[Tuple[_TrieDict, Tuple[int, ...]]] = [(self._root, ())]
                while stack:
                    node, path = stack.pop()
                    for key, child in node.items():
                        if (key ^ 1) not in node:
                            frontier.add(path + (key ^ 1,))
                        if child is not True:
                            stack.append((child, path + (key,)))
                self._frontier = frontier
            make = PathCode._make
            cache = frozenset(make(_keys_to_pairs(path)) for path in frontier)
            self._frontier_cache = cache
        return cache

    def missing_frontier_reference(self) -> Set[PathCode]:
        """Recompute the missing frontier by walking the whole trie.

        This is the original from-scratch implementation, kept as the oracle
        the property-based tests pin :meth:`missing_frontier` against.
        """
        if self._complete:
            return set()
        if self._count == 0:
            return {ROOT}
        make = PathCode._make
        frontier: Set[PathCode] = set()
        stack: List[Tuple[_TrieDict, Tuple[int, ...]]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            for key, child in node.items():
                sibling_key = key ^ 1
                if sibling_key not in node:
                    frontier.add(make(_keys_to_pairs(path + (sibling_key,))))
                if child is not True:
                    stack.append((child, path + (key,)))
        return frontier

    def uncovered_siblings(self) -> Set[PathCode]:
        """Codes adjacent to the completed region that are *not* completed.

        For every element of the contracted set, its sibling subtree has not
        been reported complete (otherwise the pair would have merged).  These
        siblings are exactly the candidates the recovery mechanism considers
        when it suspects work has been lost (Section 5.3.2: "chooses an
        uncompleted problem by complementing the code of a solved problem
        whose sibling is not solved").
        """
        result: Set[PathCode] = set()
        for code in self._iter_completed():
            sibling = code.sibling()
            if sibling is not None and not self.covers(sibling):
                result.add(sibling)
        return result


def contract(codes: Iterable[PathCode]) -> Set[PathCode]:
    """Contract a collection of completed codes to its minimal form.

    Repeatedly merges completed sibling pairs into their parent and drops
    codes subsumed by a completed ancestor, until no rule applies.  The input
    is not modified; a new set is returned.
    """
    return set(CodeSet(codes).codes())


def contract_reference(codes: Iterable[PathCode]) -> Set[PathCode]:
    """Naive fixed-point contraction used as a test oracle.

    Applies the two rewrite rules exhaustively with no cleverness.  Quadratic
    in the size of the input; only used by the test-suite to validate
    :func:`contract` and the incremental :class:`CodeSet`.
    """

    def _has_proper_ancestor(present: Set[PathCode], code: PathCode) -> bool:
        for ancestor in code.ancestors(include_self=False):
            if ancestor in present:
                return True
        return False

    present: Set[PathCode] = set(codes)
    changed = True
    while changed:
        changed = False
        # Rule 1: drop codes subsumed by an ancestor.
        for code in list(present):
            if _has_proper_ancestor(present, code):
                present.discard(code)
                changed = True
        # Rule 2: merge sibling pairs.
        for code in sorted(present, key=lambda c: -c.depth):
            if code not in present:
                continue
            sibling = code.sibling()
            if sibling is not None and sibling in present:
                present.discard(code)
                present.discard(sibling)
                parent = code.parent()
                assert parent is not None
                present.add(parent)
                changed = True
    return present
