"""Sets of subproblem codes and the paper's *contraction* operation.

The fault-tolerance mechanism keeps, on every process, a table of the
subproblem codes that are known to be **completed** (Section 5.3.2 of the
paper: a subproblem is completed when it has been branched and either it is a
leaf or both of its children are completed).

Two observations make the table small and the mechanism cheap:

* if both children of a node are completed, the node itself is completed, so
  the two sibling codes can be replaced by the code of their parent
  ("recursive replacement of pairs of sibling codes with the code of their
  parent"); and
* a code whose ancestor is already in the table is redundant and can be
  deleted ("deletion of codes whose ancestors are also in the list").

Applying these two rules to a fixed point is what the paper calls *list
contraction* (or compression, when applied to an outgoing work report).  When
contraction reduces the table to the single root code ``()``, the whole tree
is complete and termination is detected (Section 5.4).

:class:`CodeSet` is the mutable container implementing these rules.  It is
backed by a trie over ``<variable, value>`` decisions so that insertion,
coverage queries and the sibling-merge cascade all cost ``O(depth)`` — the
per-operation cost the simulator charges as "list contraction time".
:func:`contract` is the standalone functional form used for one-shot
compression of outgoing reports, and :func:`contract_reference` is a naive
fixed-point implementation kept as a test oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .encoding import ROOT, Branch, PathCode

__all__ = [
    "contract",
    "contract_reference",
    "covers",
    "CodeSet",
    "ContractionStats",
]


def covers(codes: Iterable[PathCode], target: PathCode) -> bool:
    """True when ``target`` or any of its ancestors is in ``codes``.

    A completed-code set *covers* a subproblem when the set already records
    that subproblem (or an enclosing subtree) as completed.
    """
    if isinstance(codes, CodeSet):
        return codes.covers(target)
    code_set = codes if isinstance(codes, (set, frozenset)) else set(codes)
    for candidate in target.ancestors(include_self=True):
        if candidate in code_set:
            return True
    return False


class ContractionStats:
    """Counters describing the work done by contraction operations.

    The paper reports "list contraction time" as one of the overhead terms in
    Figure 3 and Table 1; these counters let the simulator charge a cost per
    elementary contraction step instead of wall-clock time, which keeps the
    simulation deterministic.
    """

    __slots__ = ("merges", "subsumptions", "insertions", "calls")

    def __init__(self) -> None:
        self.merges = 0
        self.subsumptions = 0
        self.insertions = 0
        self.calls = 0

    def snapshot(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "merges": self.merges,
            "subsumptions": self.subsumptions,
            "insertions": self.insertions,
            "calls": self.calls,
        }

    def elementary_operations(self) -> int:
        """Total elementary rewrite steps performed (merges + subsumptions + insertions)."""
        return self.merges + self.subsumptions + self.insertions

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return (
            f"ContractionStats(merges={self.merges}, subsumptions={self.subsumptions}, "
            f"insertions={self.insertions}, calls={self.calls})"
        )


class _TrieNode:
    """One node of the completion trie."""

    __slots__ = ("children", "completed")

    def __init__(self) -> None:
        self.children: Dict[Branch, "_TrieNode"] = {}
        self.completed = False

    def count_completed(self) -> int:
        """Number of completed codes in this subtree (iterative DFS)."""
        total = 0
        stack = [self]
        while stack:
            node = stack.pop()
            if node.completed:
                total += 1
            stack.extend(node.children.values())
        return total


class CodeSet:
    """A contracted set of completed subproblem codes.

    The set maintains the contraction invariant after every insertion:

    * no element is an ancestor or descendant of another element, and
    * no two elements are siblings.

    Membership (``code in codeset``) tests exact membership of the contracted
    representation; :meth:`covers` tests logical completion (the code or one
    of its ancestors is present), which is the query the algorithm actually
    needs.
    """

    __slots__ = ("_root", "_count", "stats")

    def __init__(self, codes: Optional[Iterable[PathCode]] = None) -> None:
        self._root = _TrieNode()
        self._count = 0
        self.stats = ContractionStats()
        if codes:
            self.update(codes)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, code: PathCode) -> bool:
        node = self._find(code)
        return node is not None and node.completed

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __iter__(self) -> Iterator[PathCode]:
        yield from self._iter_completed()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CodeSet):
            return self.codes() == other.codes()
        if isinstance(other, (set, frozenset)):
            return set(self._iter_completed()) == set(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        preview = ", ".join(sorted(c.encode() for c in self._iter_completed())[:6])
        return f"CodeSet(n={self._count}, [{preview}...])"

    def _find(self, code: PathCode) -> Optional[_TrieNode]:
        node = self._root
        for pair in code.pairs:
            node = node.children.get(pair)
            if node is None:
                return None
        return node

    def _iter_completed(self) -> Iterator[PathCode]:
        stack: List[Tuple[_TrieNode, Tuple[Branch, ...]]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            if node.completed:
                yield PathCode(path)
                continue  # contracted invariant: no completed descendants
            for pair, child in node.children.items():
                stack.append((child, path + (pair,)))

    def codes(self) -> frozenset:
        """Return the contracted codes as a frozen set."""
        return frozenset(self._iter_completed())

    def covers(self, code: PathCode) -> bool:
        """True when ``code`` is known completed (itself or via an ancestor)."""
        node = self._root
        if node.completed:
            return True
        for pair in code.pairs:
            node = node.children.get(pair)
            if node is None:
                return False
            if node.completed:
                return True
        return False

    def is_complete(self) -> bool:
        """True when the whole tree is completed (the root code is present)."""
        return self._root.completed

    def wire_size(self) -> int:
        """Total estimated encoded size of the set, in bytes."""
        return sum(code.wire_size() for code in self._iter_completed())

    def max_depth(self) -> int:
        """Depth of the deepest code in the set (0 for an empty set)."""
        return max((code.depth for code in self._iter_completed()), default=0)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, code: PathCode) -> bool:
        """Insert a completed code, restoring the contraction invariant.

        Returns ``True`` when the logical content of the set changed (the code
        was not already covered).  Insertion cascades sibling merges upward,
        so a single ``add`` may replace a long chain of codes by one ancestor —
        this is exactly how termination eventually surfaces as the root code.
        """
        self.stats.calls += 1

        # Walk down, creating nodes; an already-completed ancestor means the
        # code is covered and nothing changes.
        path: List[Tuple[_TrieNode, Branch]] = []  # (parent node, branch taken)
        node = self._root
        if node.completed:
            return False
        for pair in code.pairs:
            child = node.children.get(pair)
            if child is None:
                child = _TrieNode()
                node.children[pair] = child
            path.append((node, pair))
            node = child
            if node.completed:
                # Covered by an ancestor or by the code itself.  Creating the
                # intermediate nodes above is harmless: they have no completed
                # descendants other than this chain, and are reachable only on
                # this path.
                return False

        self.stats.insertions += 1

        # The new code subsumes everything below it.
        if node.children:
            removed = node.count_completed()
            self.stats.subsumptions += removed
            self._count -= removed
            node.children.clear()
        node.completed = True
        self._count += 1

        # Cascade sibling merges toward the root.
        while path:
            parent, pair = path.pop()
            var, val = pair
            sibling = parent.children.get((var, 1 - val))
            if sibling is None or not sibling.completed:
                break
            # Both children completed: replace them by the parent.  The parent
            # cannot have other completed descendants because it has exactly
            # these two children subtrees in a binary tree encoding.
            removed = parent.count_completed()
            self._count -= removed
            parent.children.clear()
            parent.completed = True
            self._count += 1
            self.stats.merges += 1
        return True

    def update(self, codes: Iterable[PathCode]) -> bool:
        """Insert many codes; returns ``True`` when anything changed."""
        changed = False
        for code in codes:
            changed |= self.add(code)
        return changed

    def merge(self, other: "CodeSet") -> bool:
        """Merge another contracted set into this one."""
        return self.update(other.codes())

    def clear(self) -> None:
        """Remove every code (used when reinitialising a joining member)."""
        self._root = _TrieNode()
        self._count = 0

    def copy(self) -> "CodeSet":
        """Return an independent copy (statistics are not copied)."""
        clone = CodeSet()
        clone.update(self._iter_completed())
        return clone

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def missing_frontier(self) -> Set[PathCode]:
        """Minimal set of subtree codes *not* covered by this set.

        The returned codes are pairwise disjoint, none is covered, and
        together with the completed set they cover the whole tree: this is the
        paper's *complement* operation.  It is computed by walking the trie:
        wherever a path explores one branch of a decision but the sibling
        branch is absent, that sibling subtree is missing.

        For an empty set the whole tree is missing (``{ROOT}``); for a
        complete set the frontier is empty.
        """
        if self._root.completed:
            return set()
        if self._count == 0:
            return {ROOT}
        frontier: Set[PathCode] = set()
        stack: List[Tuple[_TrieNode, Tuple[Branch, ...]]] = [(self._root, ())]
        while stack:
            node, path = stack.pop()
            if node.completed:
                continue
            for (var, val), child in node.children.items():
                sibling_key = (var, 1 - val)
                if sibling_key not in node.children:
                    frontier.add(PathCode(path + (sibling_key,)))
                stack.append((child, path + ((var, val),)))
        return frontier

    def uncovered_siblings(self) -> Set[PathCode]:
        """Codes adjacent to the completed region that are *not* completed.

        For every element of the contracted set, its sibling subtree has not
        been reported complete (otherwise the pair would have merged).  These
        siblings are exactly the candidates the recovery mechanism considers
        when it suspects work has been lost (Section 5.3.2: "chooses an
        uncompleted problem by complementing the code of a solved problem
        whose sibling is not solved").
        """
        result: Set[PathCode] = set()
        for code in self._iter_completed():
            sibling = code.sibling()
            if sibling is not None and not self.covers(sibling):
                result.add(sibling)
        return result


def contract(codes: Iterable[PathCode]) -> Set[PathCode]:
    """Contract a collection of completed codes to its minimal form.

    Repeatedly merges completed sibling pairs into their parent and drops
    codes subsumed by a completed ancestor, until no rule applies.  The input
    is not modified; a new set is returned.
    """
    return set(CodeSet(codes).codes())


def contract_reference(codes: Iterable[PathCode]) -> Set[PathCode]:
    """Naive fixed-point contraction used as a test oracle.

    Applies the two rewrite rules exhaustively with no cleverness.  Quadratic
    in the size of the input; only used by the test-suite to validate
    :func:`contract` and the incremental :class:`CodeSet`.
    """

    def _has_proper_ancestor(present: Set[PathCode], code: PathCode) -> bool:
        for ancestor in code.ancestors(include_self=False):
            if ancestor in present:
                return True
        return False

    present: Set[PathCode] = set(codes)
    changed = True
    while changed:
        changed = False
        # Rule 1: drop codes subsumed by an ancestor.
        for code in list(present):
            if _has_proper_ancestor(present, code):
                present.discard(code)
                changed = True
        # Rule 2: merge sibling pairs.
        for code in sorted(present, key=lambda c: -c.depth):
            if code not in present:
                continue
            sibling = code.sibling()
            if sibling is not None and sibling in present:
                present.discard(code)
                present.discard(sibling)
                parent = code.parent()
                assert parent is not None
                present.add(parent)
                changed = True
    return present
