"""Complement computation: finding subproblems nobody reported completed.

Given the contracted table of completed codes that a process has accumulated
(its own work plus everything learned from gossiped work reports), the
*complement* is the set of subtrees of the B&B tree that are **not** covered
by the table.  Section 5.3.2 of the paper uses the complement to recover lost
work: a process that runs out of work and fails to obtain any from the
load-balancing mechanism "chooses an uncompleted problem (by complementing the
code of a solved problem whose sibling is not solved) and solves it".

Because the table is contracted, the complement has a particularly simple
minimal representation: it is exactly the set of siblings of table entries
that are not themselves covered (see :meth:`repro.core.codeset.CodeSet.
uncovered_siblings`).  This module adds the selection policies used to pick
*which* uncompleted subtree to regenerate, which is the knob the paper points
at for reducing redundant work.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Iterable, Optional, Sequence, Set

from .codeset import CodeSet
from .encoding import ROOT, PathCode, common_prefix_length

__all__ = [
    "SelectionStrategy",
    "complement_frontier",
    "minimal_complement",
    "select_recovery_candidate",
]


class SelectionStrategy(str, Enum):
    """Policy for choosing the uncompleted subproblem to regenerate.

    * ``DEEPEST`` — pick the deepest uncovered sibling: the smallest missing
      subtree, so the redundant-work exposure is minimal.  This is the
      library default.
    * ``SHALLOWEST`` — pick the shallowest uncovered sibling: recovers the
      largest missing region at once (fewer recovery rounds, more potential
      redundancy).
    * ``RANDOM`` — uniform random choice; reduces the chance of two recovering
      processes picking the same subtree, which the paper identifies as the
      main source of redundant work.
    * ``NEAR_LAST_COMPLETED`` — prefer the candidate sharing the longest
      prefix with the last problem completed locally ("using the location of
      the last problem completed locally", Section 5.3.2).
    """

    DEEPEST = "deepest"
    SHALLOWEST = "shallowest"
    RANDOM = "random"
    NEAR_LAST_COMPLETED = "near_last_completed"


def complement_frontier(completed: CodeSet) -> Set[PathCode]:
    """Return the minimal set of codes whose subtrees are not known completed.

    The returned codes are pairwise disjoint subtrees and, together with the
    completed table, cover the whole tree.  For an empty table the whole tree
    is missing, so ``{ROOT}`` is returned; for a table containing the root the
    complement is empty.

    The computation walks the completion trie (every decision explored on one
    side but absent on the other contributes the absent sibling), which is a
    superset of the paper's literal phrasing "complementing the code of a
    solved problem whose sibling is not solved" — the literal sibling set is
    available as :meth:`repro.core.codeset.CodeSet.uncovered_siblings` and the
    two coincide after enough recoveries have merged the table upward.
    """
    return completed.missing_frontier()


def minimal_complement(completed: Iterable[PathCode]) -> Set[PathCode]:
    """Convenience wrapper accepting any iterable of completed codes."""
    table = completed if isinstance(completed, CodeSet) else CodeSet(completed)
    return complement_frontier(table)


def select_recovery_candidate(
    completed: CodeSet,
    *,
    strategy: SelectionStrategy = SelectionStrategy.DEEPEST,
    last_completed: Optional[PathCode] = None,
    rng: Optional[random.Random] = None,
    exclude: Optional[Iterable[PathCode]] = None,
) -> Optional[PathCode]:
    """Pick one uncompleted subproblem to regenerate, or ``None`` if complete.

    Parameters
    ----------
    completed:
        The contracted table of known-completed codes.
    strategy:
        Selection policy, see :class:`SelectionStrategy`.
    last_completed:
        The code of the last problem this process completed locally; only used
        by :attr:`SelectionStrategy.NEAR_LAST_COMPLETED`.
    rng:
        Random source for :attr:`SelectionStrategy.RANDOM`; a module-level
        generator is used when omitted (the simulator always passes a seeded
        per-worker stream so runs stay deterministic).
    exclude:
        Codes (or subtrees) the caller is already working on and does not want
        to be offered again — for instance a recovery problem picked earlier
        that is still being solved.
    """
    candidates = complement_frontier(completed)
    if exclude:
        excluded = list(exclude)
        candidates = {
            c
            for c in candidates
            if not any(e == c or e.is_ancestor_of(c) or c.is_ancestor_of(e) for e in excluded)
        }
    if not candidates:
        return None

    # The min/max keys below end in ``c.pairs``, which is a total order, so
    # they are deterministic regardless of set iteration order; only RANDOM
    # needs the candidates sorted into a reproducible base order first.
    if strategy == SelectionStrategy.DEEPEST:
        return max(candidates, key=lambda c: (c.depth, c.pairs))
    if strategy == SelectionStrategy.SHALLOWEST:
        return min(candidates, key=lambda c: (c.depth, c.pairs))
    if strategy == SelectionStrategy.RANDOM:
        chooser = rng if rng is not None else random
        return chooser.choice(sorted(candidates))
    if strategy == SelectionStrategy.NEAR_LAST_COMPLETED:
        if last_completed is None:
            return max(candidates, key=lambda c: (c.depth, c.pairs))
        return max(
            candidates,
            key=lambda c: (common_prefix_length(c, last_completed), c.depth, c.pairs),
        )
    raise ValueError(f"unknown selection strategy: {strategy!r}")


def complement_covers_tree(
    completed: CodeSet, frontier: Sequence[PathCode]
) -> bool:
    """Check the structural complement invariants used by the property tests.

    Every frontier code must be uncovered by the completed table, and the
    frontier codes must be pairwise disjoint subtrees (no duplicates, no
    ancestor/descendant pairs).  The "together they cover the tree" half of
    the invariant needs knowledge of the tree and is checked probe-wise by the
    property-based tests instead.
    """
    for i, code in enumerate(frontier):
        if completed.covers(code):
            return False
        for other in frontier[i + 1 :]:
            if code == other or code.is_ancestor_of(other) or other.is_ancestor_of(code):
                return False
    return True
