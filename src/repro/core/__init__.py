"""Core contribution of the paper: tree-code fault tolerance for B&B.

This package implements the problem-specific fault-tolerance mechanism of
Iamnitchi & Foster (ICPP 2000):

* :mod:`repro.core.encoding` — the ``<variable, value>`` path encoding of
  subproblems (:class:`~repro.core.encoding.PathCode`);
* :mod:`repro.core.codeset` — contracted sets of completed codes and the
  sibling-merge / ancestor-subsumption contraction rules;
* :mod:`repro.core.arena` — the interned completion-trie arena: hash-consed
  nodes shared by tables and per-peer gossip views at scale;
* :mod:`repro.core.completion` — per-process completion tracking and the
  work-report emission policy;
* :mod:`repro.core.complement` — complement computation and recovery-candidate
  selection;
* :mod:`repro.core.recovery` — the starvation-triggered recovery policy and
  redundant-work accounting;
* :mod:`repro.core.termination` — almost-implicit termination detection via
  the root code;
* :mod:`repro.core.work_report` — the work-report / table-snapshot payloads
  and the message byte-size model.

The classes here are transport-agnostic: the simulated workers in
:mod:`repro.distributed` and the real ``multiprocessing`` workers in
:mod:`repro.realexec` both build on exactly these objects.
"""

from .arena import ArenaCodeSet, TrieArena
from .codeset import CodeSet, ContractionStats, contract, contract_reference, covers
from .complement import (
    SelectionStrategy,
    complement_covers_tree,
    complement_frontier,
    minimal_complement,
    select_recovery_candidate,
)
from .completion import CompletionTracker, PeerGossipView
from .encoding import ROOT, Branch, PathCode, common_prefix_length
from .recovery import RecoveryDecision, RecoveryPolicy, RecoveryStats
from .termination import TerminationDetector, is_root_report, make_root_report
from .work_report import (
    BestSolution,
    CompletedTableSnapshot,
    DeltaSnapshot,
    WorkReport,
    compress_report_codes,
    table_digest,
)

__all__ = [
    "Branch",
    "PathCode",
    "ROOT",
    "common_prefix_length",
    "CodeSet",
    "ContractionStats",
    "TrieArena",
    "ArenaCodeSet",
    "contract",
    "contract_reference",
    "covers",
    "SelectionStrategy",
    "complement_frontier",
    "complement_covers_tree",
    "minimal_complement",
    "select_recovery_candidate",
    "CompletionTracker",
    "PeerGossipView",
    "RecoveryPolicy",
    "RecoveryStats",
    "RecoveryDecision",
    "TerminationDetector",
    "is_root_report",
    "make_root_report",
    "BestSolution",
    "WorkReport",
    "CompletedTableSnapshot",
    "DeltaSnapshot",
    "compress_report_codes",
    "table_digest",
]
