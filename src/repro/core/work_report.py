"""Work-report and completed-table message payloads.

Processes disseminate knowledge about completed subproblems with two kinds of
epidemic messages (Section 5.3.2):

* **work reports** — the list of codes a process completed locally since its
  previous report, compressed before sending; emitted when the local list
  reaches ``c`` codes or has not been updated for a while, and sent to ``m``
  randomly chosen members; and
* **table gossip** — occasionally a member sends its whole contracted table of
  completed problems to one randomly chosen member, to bring newly joined (or
  poorly connected) members up to date and to increase consistency.

Both payloads also piggy-back the sender's best-known solution value, which is
how the paper solves the information-sharing problem ("circulating the
best-known solution among processes, embedded in the most frequently sent
messages", Section 5).

These classes are plain value objects: the simulator wraps them in simulated
network messages, and the ``realexec`` backend ships them as :mod:`repro.wire`
binary frames over pipes.

Performance invariants: the payloads are immutable, so :meth:`WorkReport.
wire_size` and :meth:`CompletedTableSnapshot.wire_size` are computed once on
first request and cached on the instance (the network model asks for the size
of the same payload at send, delivery and receive time).  Per-code sizes are
O(1) reads of :meth:`PathCode.wire_size`, which is precomputed at code
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from .codeset import CodeSet
from .encoding import PathCode

__all__ = [
    "BestSolution",
    "WorkReport",
    "CompletedTableSnapshot",
    "compress_report_codes",
]

#: Fixed overhead charged per message by the byte-size model (headers,
#: sender identity, sequence number).
_MESSAGE_HEADER_BYTES = 32
#: Bytes charged for an embedded best-known-solution value.
_BEST_SOLUTION_BYTES = 10


@dataclass(frozen=True, slots=True)
class BestSolution:
    """The best feasible solution value known to a process.

    ``value`` is the objective value and ``origin`` identifies the process
    that first found it (useful for tracing, not required by the algorithm).
    ``None`` value means no feasible solution is known yet.
    """

    value: Optional[float] = None
    origin: Optional[str] = None

    def is_better_than(self, other: "BestSolution", *, minimize: bool = True) -> bool:
        """Compare two incumbent values under the given optimisation sense."""
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value if minimize else self.value > other.value

    def wire_size(self) -> int:
        """Bytes contributed to a message that embeds this value."""
        return 0 if self.value is None else _BEST_SOLUTION_BYTES


def _cached_payload_wire(payload) -> int:
    """Shared wire-size computation for the immutable report payloads.

    Computed once per payload and stored in its ``_wire`` slot (-1 sentinel
    = not yet computed); both payload classes share this single definition
    of the byte model so they can never disagree on message size.
    """
    wire = payload._wire
    if wire < 0:
        wire = (
            _MESSAGE_HEADER_BYTES
            + sum(code.wire_size() for code in payload.codes)
            + payload.best.wire_size()
        )
        object.__setattr__(payload, "_wire", wire)
    return wire


def compress_report_codes(
    codes: Iterable[PathCode],
    known_table: Optional[CodeSet] = None,
) -> FrozenSet[PathCode]:
    """Compress an outgoing list of completed codes.

    Applies the paper's two compression rules (sibling merge and ancestor
    subsumption) to the outgoing list, and additionally drops codes already
    covered by ``known_table`` when one is supplied — there is no point in
    re-announcing work the receiver set is already assumed to know, and the
    paper notes compression works best "when processors are sufficiently
    loaded" because whole locally-completed subtrees collapse to single codes.
    """
    compressed = CodeSet(codes).codes()  # already a frozenset (cached view)
    if known_table is not None:
        covers = known_table.covers
        return frozenset(c for c in compressed if not covers(c))
    return compressed


@dataclass(frozen=True, slots=True)
class WorkReport:
    """A compressed list of newly completed subproblem codes.

    Attributes
    ----------
    sender:
        Identifier of the reporting process.
    codes:
        Compressed completed codes (pairwise non-redundant).
    best:
        The sender's best-known solution, piggy-backed on the report.
    sequence:
        Per-sender sequence number, used only for tracing and duplicate
        accounting in the metrics — the algorithm itself is idempotent under
        duplicated or reordered reports.
    """

    sender: str
    codes: FrozenSet[PathCode]
    best: BestSolution = field(default_factory=BestSolution)
    sequence: int = 0
    #: Cached wire size (-1 = not computed yet); excluded from equality.
    _wire: int = field(default=-1, init=False, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        sender: str,
        codes: Iterable[PathCode],
        *,
        best: Optional[BestSolution] = None,
        known_table: Optional[CodeSet] = None,
        sequence: int = 0,
    ) -> "WorkReport":
        """Compress ``codes`` and build the report."""
        return cls(
            sender=sender,
            codes=compress_report_codes(codes, known_table),
            best=best if best is not None else BestSolution(),
            sequence=sequence,
        )

    @property
    def is_empty(self) -> bool:
        """True when the report carries no completion information."""
        return not self.codes

    def wire_size(self) -> int:
        """Estimated encoded size in bytes (drives the latency model).

        Computed once and cached: the payload is immutable and the network
        model asks for the size several times per message.
        """
        return _cached_payload_wire(self)

    def contains_root(self) -> bool:
        """True when this is a termination announcement (root-code report)."""
        return any(code.is_root for code in self.codes)


@dataclass(frozen=True, slots=True)
class CompletedTableSnapshot:
    """A full copy of a process's contracted completed-code table.

    Sent occasionally to a randomly chosen member "in order to inform new
    members of the current state of the execution and to increase the degree
    of consistency" (Section 5.3.2).
    """

    sender: str
    codes: FrozenSet[PathCode]
    best: BestSolution = field(default_factory=BestSolution)
    #: Cached wire size (-1 = not computed yet); excluded from equality.
    _wire: int = field(default=-1, init=False, repr=False, compare=False)

    @classmethod
    def from_table(
        cls, sender: str, table: CodeSet, *, best: Optional[BestSolution] = None
    ) -> "CompletedTableSnapshot":
        """Snapshot a live table."""
        return cls(
            sender=sender,
            codes=table.codes(),
            best=best if best is not None else BestSolution(),
        )

    def wire_size(self) -> int:
        """Estimated encoded size in bytes (computed once, then cached)."""
        return _cached_payload_wire(self)

    def as_report(self, sequence: int = 0) -> WorkReport:
        """View the snapshot as a (large) work report for uniform handling."""
        return WorkReport(sender=self.sender, codes=self.codes, best=self.best, sequence=sequence)
