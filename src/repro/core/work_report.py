"""Work-report and completed-table message payloads.

Processes disseminate knowledge about completed subproblems with two kinds of
epidemic messages (Section 5.3.2):

* **work reports** — the list of codes a process completed locally since its
  previous report, compressed before sending; emitted when the local list
  reaches ``c`` codes or has not been updated for a while, and sent to ``m``
  randomly chosen members; and
* **table gossip** — occasionally a member sends its whole contracted table of
  completed problems to one randomly chosen member, to bring newly joined (or
  poorly connected) members up to date and to increase consistency.

Both payloads also piggy-back the sender's best-known solution value, which is
how the paper solves the information-sharing problem ("circulating the
best-known solution among processes, embedded in the most frequently sent
messages", Section 5).

These classes are plain value objects: the simulator wraps them in simulated
network messages, and the ``realexec`` backend ships them as :mod:`repro.wire`
binary frames over pipes.

Performance invariants: the payloads are immutable, so :meth:`WorkReport.
wire_size` and :meth:`CompletedTableSnapshot.wire_size` are computed once on
first request and cached on the instance (the network model asks for the size
of the same payload at send, delivery and receive time).  Per-code sizes are
O(1) reads of :meth:`PathCode.wire_size`, which is precomputed at code
construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from .codeset import CodeSet
from .encoding import PathCode

__all__ = [
    "BestSolution",
    "WorkReport",
    "CompletedTableSnapshot",
    "DeltaSnapshot",
    "compress_report_codes",
    "table_digest",
]

#: Fixed overhead charged per message by the byte-size model (headers,
#: sender identity, sequence number).
_MESSAGE_HEADER_BYTES = 32
#: Bytes charged for an embedded best-known-solution value.
_BEST_SOLUTION_BYTES = 10
#: Bytes charged for a table digest embedded in a delta snapshot / ack
#: (fixed 8-byte field on the wire, see ``repro.wire``).
_DIGEST_BYTES = 8


_FNV64_PRIME = 0x100000001B3
_FNV64_OFFSET = 0xCBF29CE484222325
_MASK64 = (1 << 64) - 1
#: Digest of a subtree that is entirely completed (a trie DONE leaf).
_DONE_DIGEST = 0x9E3779B97F4A7C15
#: Trie marker for "a code terminates here" (packed keys are >= 0).
_DONE_MARK = -1


def _trie_digest(node: dict) -> int:
    """Recursive structural digest of a nested-dict completion trie."""
    if _DONE_MARK in node:
        return _DONE_DIGEST
    h = _FNV64_OFFSET
    for key in sorted(k for k in node if k >= 0):
        h = ((h ^ (key + 1)) * _FNV64_PRIME) & _MASK64
        h = ((h ^ _trie_digest(node[key])) * _FNV64_PRIME) & _MASK64
    return h


def table_digest(codes) -> int:
    """Order-independent 64-bit digest of a set of completed codes.

    The digest is *structural*: the codes are laid out as a canonical
    completion trie (sorted packed branch keys, completed nodes subsuming
    their subtrees) and FNV-folded bottom-up, so any two processes holding
    the same contracted table compute the same value regardless of
    iteration order, interpreter or hash randomisation — and a shared
    :class:`~repro.core.arena.TrieArena` can compute the identical value in
    O(1) from the per-node digests it interns bottom-up.  Delta gossip uses
    it as the acknowledgement token: a receiver echoes the digest of the
    sender's full table, and the sender advances its per-peer basis only on
    an exact match.

    A collision (two different tables with equal digests) can at worst make
    a sender skip codes one particular peer still misses — the epidemic work
    reports still deliver them — so 64 opportunistic bits are plenty.
    """
    root: dict = {}
    count = 0
    for code in codes:
        count += 1
        try:
            keys = code._keys
        except AttributeError:
            keys = code._key_path()
        node = root
        for key in keys:
            node = node.setdefault(key, {})
        node[_DONE_MARK] = True
    if count == 0:
        return 0
    return (_trie_digest(root) ^ (count * _FNV64_PRIME)) & _MASK64


@dataclass(frozen=True, slots=True)
class BestSolution:
    """The best feasible solution value known to a process.

    ``value`` is the objective value and ``origin`` identifies the process
    that first found it (useful for tracing, not required by the algorithm).
    ``None`` value means no feasible solution is known yet.
    """

    value: Optional[float] = None
    origin: Optional[str] = None

    def is_better_than(self, other: "BestSolution", *, minimize: bool = True) -> bool:
        """Compare two incumbent values under the given optimisation sense."""
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value if minimize else self.value > other.value

    def wire_size(self) -> int:
        """Bytes contributed to a message that embeds this value."""
        return 0 if self.value is None else _BEST_SOLUTION_BYTES


def _cached_payload_wire(payload) -> int:
    """Shared wire-size computation for the immutable report payloads.

    Computed once per payload and stored in its ``_wire`` slot (-1 sentinel
    = not yet computed); both payload classes share this single definition
    of the byte model so they can never disagree on message size.
    """
    wire = payload._wire
    if wire < 0:
        wire = (
            _MESSAGE_HEADER_BYTES
            + sum(code.wire_size() for code in payload.codes)
            + payload.best.wire_size()
        )
        object.__setattr__(payload, "_wire", wire)
    return wire


def compress_report_codes(
    codes: Iterable[PathCode],
    known_table: Optional[CodeSet] = None,
) -> FrozenSet[PathCode]:
    """Compress an outgoing list of completed codes.

    Applies the paper's two compression rules (sibling merge and ancestor
    subsumption) to the outgoing list, and additionally drops codes already
    covered by ``known_table`` when one is supplied — there is no point in
    re-announcing work the receiver set is already assumed to know, and the
    paper notes compression works best "when processors are sufficiently
    loaded" because whole locally-completed subtrees collapse to single codes.
    """
    compressed = CodeSet(codes).codes()  # already a frozenset (cached view)
    if known_table is not None:
        covers = known_table.covers
        return frozenset(c for c in compressed if not covers(c))
    return compressed


@dataclass(frozen=True, slots=True)
class WorkReport:
    """A compressed list of newly completed subproblem codes.

    Attributes
    ----------
    sender:
        Identifier of the reporting process.
    codes:
        Compressed completed codes (pairwise non-redundant).
    best:
        The sender's best-known solution, piggy-backed on the report.
    sequence:
        Per-sender sequence number, used only for tracing and duplicate
        accounting in the metrics — the algorithm itself is idempotent under
        duplicated or reordered reports.
    """

    sender: str
    codes: FrozenSet[PathCode]
    best: BestSolution = field(default_factory=BestSolution)
    sequence: int = 0
    #: Cached wire size (-1 = not computed yet); excluded from equality.
    _wire: int = field(default=-1, init=False, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        sender: str,
        codes: Iterable[PathCode],
        *,
        best: Optional[BestSolution] = None,
        known_table: Optional[CodeSet] = None,
        sequence: int = 0,
    ) -> "WorkReport":
        """Compress ``codes`` and build the report."""
        return cls(
            sender=sender,
            codes=compress_report_codes(codes, known_table),
            best=best if best is not None else BestSolution(),
            sequence=sequence,
        )

    @property
    def is_empty(self) -> bool:
        """True when the report carries no completion information."""
        return not self.codes

    def wire_size(self) -> int:
        """Estimated encoded size in bytes (drives the latency model).

        Computed once and cached: the payload is immutable and the network
        model asks for the size several times per message.
        """
        return _cached_payload_wire(self)

    def contains_root(self) -> bool:
        """True when this is a termination announcement (root-code report)."""
        return any(code.is_root for code in self.codes)


@dataclass(frozen=True, slots=True)
class CompletedTableSnapshot:
    """A full copy of a process's contracted completed-code table.

    Sent occasionally to a randomly chosen member "in order to inform new
    members of the current state of the execution and to increase the degree
    of consistency" (Section 5.3.2).

    When built from a live table with :meth:`from_table`, the snapshot also
    carries the sender's memoised *frozen trie view*
    (:meth:`~repro.core.codeset.CodeSet.frozen_view`) so an in-process
    receiver can merge trie-to-trie — or adopt the copy outright when its own
    table is still empty — instead of re-adding the table code by code.  The
    view never crosses the wire (the codec ships only ``codes``); a decoded
    snapshot simply has no view and receivers fall back to per-code merging.
    """

    sender: str
    codes: FrozenSet[PathCode]
    best: BestSolution = field(default_factory=BestSolution)
    #: Cached wire size (-1 = not computed yet); excluded from equality.
    _wire: int = field(default=-1, init=False, repr=False, compare=False)
    #: Frozen trie view of the sender's table (in-process fast path only);
    #: excluded from equality and never serialised.
    _trie: Optional[CodeSet] = field(default=None, init=False, repr=False, compare=False)

    @classmethod
    def from_table(
        cls, sender: str, table: CodeSet, *, best: Optional[BestSolution] = None
    ) -> "CompletedTableSnapshot":
        """Snapshot a live table, attaching its frozen trie view."""
        snapshot = cls(
            sender=sender,
            codes=table.codes(),
            best=best if best is not None else BestSolution(),
        )
        object.__setattr__(snapshot, "_trie", table.frozen_view())
        return snapshot

    def shared_trie(self) -> Optional[CodeSet]:
        """The sender's frozen trie view, when this snapshot never left the
        process (``None`` for snapshots decoded off the wire).  Read-only."""
        return self._trie

    def wire_size(self) -> int:
        """Estimated encoded size in bytes (computed once, then cached)."""
        return _cached_payload_wire(self)

    def as_report(self, sequence: int = 0) -> WorkReport:
        """View the snapshot as a (large) work report for uniform handling."""
        return WorkReport(sender=self.sender, codes=self.codes, best=self.best, sequence=sequence)


@dataclass(frozen=True, slots=True)
class DeltaSnapshot:
    """The codes of a table that one peer is *not* known to cover yet.

    Delta gossip replaces the occasional whole-table
    :class:`CompletedTableSnapshot` push with an anti-entropy exchange: the
    sender keeps, per peer, the digest of the last table state that peer
    acknowledged (see
    :class:`~repro.core.completion.PeerGossipView`) and ships only the codes
    of its current table that the acknowledged basis does not cover.  The
    receiver merges the codes — they are ordinary completed-code facts, so a
    lost or reordered delta can never corrupt anything — and echoes
    ``full_digest`` back; only that acknowledgement lets the sender advance
    the peer's basis.  Until an ack arrives, every new delta re-ships the
    unacknowledged codes, which is what makes the scheme converge under
    arbitrary message loss (the property tests pin this against
    whole-snapshot gossip).

    Attributes
    ----------
    sender:
        Identifier of the gossiping process.
    codes:
        Contracted codes not covered by the peer's acknowledged basis.  With
        an empty basis (first contact) this is the whole table, so a delta
        stream needs no special bootstrap message.
    full_digest:
        :func:`table_digest` of the sender's *entire* table at send time —
        the acknowledgement token.
    sequence:
        Per sender→peer delta sequence number (tracing only; the protocol is
        idempotent under loss, duplication and reordering).
    best:
        The sender's best-known solution, piggy-backed as on every message.
    """

    sender: str
    codes: FrozenSet[PathCode]
    full_digest: int = 0
    sequence: int = 0
    best: BestSolution = field(default_factory=BestSolution)
    #: Cached wire size (-1 = not computed yet); excluded from equality.
    _wire: int = field(default=-1, init=False, repr=False, compare=False)

    @property
    def is_empty(self) -> bool:
        """True when the peer's acknowledged basis already covers the table."""
        return not self.codes

    def wire_size(self) -> int:
        """Estimated encoded size in bytes: header, codes, digest, incumbent."""
        wire = self._wire
        if wire < 0:
            wire = _cached_payload_wire(self) + _DIGEST_BYTES
            object.__setattr__(self, "_wire", wire)
        return wire

    def as_report(self, sequence: int = 0) -> WorkReport:
        """View the delta as a work report for uniform merge handling."""
        return WorkReport(sender=self.sender, codes=self.codes, best=self.best, sequence=sequence)
