"""Interned completion-trie arena: structural sharing across tables and views.

A simulated group of *n* workers holds one completed-code table per worker
plus up to one :class:`~repro.core.completion.PeerGossipView` per (worker,
peer) pair.  With the nested-dict :class:`~repro.core.codeset.CodeSet`, every
one of those objects owns a private trie, so the same completed region —
which epidemic dissemination, by design, replicates everywhere — is stored,
digested and frozenset-ed O(n) or O(n²) times.  That is the memory and CPU
wall between the seed engine and the 1k–10k-worker runs the paper targets.

:class:`TrieArena` removes the duplication by *hash-consing* the trie: every
node is an immutable ``(keys, children)`` pair interned in one shared,
append-only flat-array arena, so

* two tables (or views) with equal logical content are the **same integer**
  node id — a per-peer view costs O(pointer), not O(table);
* ``merge``/``diff`` between two ids memoise on the id pair, so the gossip
  fabric pays for each distinct table-state combination once per *group*,
  not once per worker pair;
* ``codes()`` frozensets, table digests and missing frontiers memoise per
  node id and are shared by every holder of that id.

Contraction (the paper's sibling-merge + ancestor-subsumption rewrite) is
applied *on intern*: an arena node is always in canonical contracted form,
which is a unique normal form of the completed region — that uniqueness is
exactly what makes "equal content ⇒ equal id" hold.

:class:`ArenaCodeSet` wraps an arena node id behind the full ``CodeSet``
API (it *is* a ``CodeSet`` subclass, so ``isinstance`` fast paths keep
firing), with O(1) ``copy``/``frozen_view`` and O(pointer) ``update``/
``merge`` when the input is recognisably arena-backed.  The nested-dict
``CodeSet`` remains the correctness oracle: the seeded property suite in
``tests/core/test_arena_property.py`` pins the two implementations to each
other over randomized insert/cover/merge/digest/frontier streams.

Sentinel node ids
-----------------
``DONE`` (0) is the completed subtree — a set containing exactly the subtree
root's own code.  ``EMPTY`` (1) is the empty set.  Both are pre-interned so
identity tests against them are plain int compares.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

from .codeset import CodeSet, ContractionStats
from .encoding import (
    _CODE_HEADER_BYTES,
    _PAIR_WIRE_BYTES,
    ROOT,
    Branch,
    PathCode,
)

__all__ = ["TrieArena", "ArenaCodeSet", "DONE", "EMPTY"]

#: Node id of the completed subtree (the subtree root's code is in the set).
DONE = 0
#: Node id of the empty set.
EMPTY = 1

#: Shared frontier view of an empty set: the whole tree is missing.
_ROOT_FRONTIER = frozenset({ROOT})
_EMPTY_FROZENSET: frozenset = frozenset()

#: Memo caps.  Entries are rebuilt on demand after a reset, so the caps only
#: bound worst-case memory on very long runs, never correctness.
_CODES_MEMO_MAX = 32768
_DIFF_MEMO_MAX = 262144
_MERGE_MEMO_MAX = 262144
_FRONTIER_MEMO_MAX = 4096

# Structural-digest constants — must match ``repro.core.work_report``'s
# ``table_digest`` exactly (the arena computes the same value bottom-up).
_FNV64_PRIME = 0x100000001B3
_FNV64_OFFSET = 0xCBF29CE484222325
_MASK64 = (1 << 64) - 1
_DONE_DIGEST = 0x9E3779B97F4A7C15


def _keys_to_pairs(keys: Tuple[int, ...]) -> Tuple[Branch, ...]:
    return tuple([(k >> 1, k & 1) for k in keys])


class TrieArena:
    """One shared, append-only arena of interned completion-trie nodes.

    Nodes are stored in parallel flat arrays indexed by node id: the sorted
    packed-key tuple, the aligned child-id tuple, and three per-subtree
    aggregates (contracted code count, sum of relative code depths, max
    relative depth) computed bottom-up at intern time so ``len``/
    ``wire_size``/``max_depth`` of any node are O(1) array reads.

    The arena is append-only and nodes are immutable, so ids handed out once
    stay valid forever — that is what makes an id a *snapshot*.
    """

    __slots__ = (
        "_keys",
        "_children",
        "_count",
        "_depth_sum",
        "_max_depth",
        "_digest",
        "_intern",
        "_codes_memo",
        "_codes_ids",
        "_path_codes",
        "_frontier_memo",
        "_merge_memo",
        "_diff_memo",
    )

    def __init__(self) -> None:
        # Parallel node arrays; slots 0/1 are the DONE/EMPTY sentinels.
        self._keys: List[Tuple[int, ...]] = [(), ()]
        self._children: List[Tuple[int, ...]] = [(), ()]
        self._count: List[int] = [1, 0]
        self._depth_sum: List[int] = [0, 0]
        self._max_depth: List[int] = [0, 0]
        #: Structural per-node digest, computed bottom-up at intern time so
        #: :meth:`digest` of any table state is an O(1) array read.
        self._digest: List[int] = [_DONE_DIGEST, 0]
        #: ``(keys, children) -> nid`` interning map (sentinels excluded:
        #: both have empty keys and are distinguished by identity).
        self._intern: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], int] = {}
        #: ``nid -> frozenset of contracted PathCodes`` (root-level memo).
        self._codes_memo: Dict[int, FrozenSet[PathCode]] = {
            DONE: frozenset({ROOT}),
            EMPTY: _EMPTY_FROZENSET,
        }
        #: Reverse map ``id(frozenset) -> (frozenset, nid)``.  Entries hold a
        #: strong reference to the frozenset so the recorded ``id`` can never
        #: dangle.  This is what lets a receiver recognise a message's shared
        #: ``codes()`` frozenset and merge the whole thing in O(1); external
        #: frozensets are registered on first sight (:meth:`node_from_codes`)
        #: so every later receiver of the same object gets the O(1) path.
        self._codes_ids: Dict[int, Tuple[FrozenSet[PathCode], int]] = {
            id(self._codes_memo[DONE]): (self._codes_memo[DONE], DONE),
            id(_EMPTY_FROZENSET): (_EMPTY_FROZENSET, EMPTY),
        }
        #: ``packed key path -> PathCode`` intern table: distinct code paths
        #: are bounded by the tree, while table *states* containing them are
        #: not — materialising a state must not re-build its codes.
        self._path_codes: Dict[Tuple[int, ...], PathCode] = {}
        self._frontier_memo: Dict[int, FrozenSet[PathCode]] = {}
        #: ``(a, b) -> merged nid`` with ``a < b`` (merge is commutative).
        self._merge_memo: Dict[int, int] = {}
        #: ``(a, b) -> nid of (codes of a not covered by b)``.
        self._diff_memo: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Number of interned nodes (including the two sentinels)."""
        return len(self._keys)

    def _intern_node(self, keys: Tuple[int, ...], children: Tuple[int, ...]) -> int:
        """Intern a canonical interior node, computing its aggregates once."""
        probe = (keys, children)
        nid = self._intern.get(probe)
        if nid is not None:
            return nid
        nid = len(self._keys)
        counts = self._count
        dsums = self._depth_sum
        mdepths = self._max_depth
        digests = self._digest
        count = 0
        dsum = 0
        mdepth = 0
        h = _FNV64_OFFSET
        for i, child in enumerate(children):
            c = counts[child]
            count += c
            dsum += dsums[child] + c  # every code moves one level deeper
            d = mdepths[child] + 1
            if d > mdepth:
                mdepth = d
            h = ((h ^ (keys[i] + 1)) * _FNV64_PRIME) & _MASK64
            h = ((h ^ digests[child]) * _FNV64_PRIME) & _MASK64
        self._intern[probe] = nid
        self._keys.append(keys)
        self._children.append(children)
        counts.append(count)
        dsums.append(dsum)
        mdepths.append(mdepth)
        digests.append(h)
        return nid

    # ------------------------------------------------------------------ #
    # O(1) aggregates
    # ------------------------------------------------------------------ #
    def count(self, nid: int) -> int:
        """Number of contracted codes in the subtree of ``nid``."""
        return self._count[nid]

    def wire_size(self, nid: int) -> int:
        """Total estimated encoded size of the set rooted at ``nid``."""
        return self._count[nid] * _CODE_HEADER_BYTES + _PAIR_WIRE_BYTES * self._depth_sum[nid]

    def max_depth(self, nid: int) -> int:
        """Depth of the deepest code in the set rooted at ``nid``."""
        return self._max_depth[nid]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def child(self, nid: int, key: int) -> int:
        """Child id under branch ``key`` (``EMPTY`` when absent)."""
        keys = self._keys[nid]
        for i, k in enumerate(keys):
            if k == key:
                return self._children[nid][i]
        return EMPTY

    def covers(self, nid: int, keys: Tuple[int, ...]) -> bool:
        """True when the code with packed-key path ``keys`` is covered."""
        node_keys = self._keys
        node_children = self._children
        for key in keys:
            if nid == DONE:
                return True
            if nid == EMPTY:
                return False
            ks = node_keys[nid]
            for i, k in enumerate(ks):
                if k == key:
                    nid = node_children[nid][i]
                    break
            else:
                return False
        return nid == DONE

    def contains(self, nid: int, keys: Tuple[int, ...]) -> bool:
        """Exact membership of the contracted representation."""
        node_keys = self._keys
        node_children = self._children
        for key in keys:
            if nid == DONE or nid == EMPTY:
                return False
            ks = node_keys[nid]
            for i, k in enumerate(ks):
                if k == key:
                    nid = node_children[nid][i]
                    break
            else:
                return False
        return nid == DONE

    def iter_completed_keys(self, nid: int) -> Iterator[Tuple[int, ...]]:
        """Yield the packed-key paths of the contracted codes under ``nid``."""
        if nid == EMPTY:
            return
        if nid == DONE:
            yield ()
            return
        node_keys = self._keys
        node_children = self._children
        stack: List[Tuple[int, Tuple[int, ...]]] = [(nid, ())]
        while stack:
            node, path = stack.pop()
            keys = node_keys[node]
            children = node_children[node]
            for i in range(len(keys)):
                child = children[i]
                if child == DONE:
                    yield path + (keys[i],)
                else:
                    stack.append((child, path + (keys[i],)))

    # ------------------------------------------------------------------ #
    # Insert (contract-on-intern)
    # ------------------------------------------------------------------ #
    def insert(self, nid: int, keys: Tuple[int, ...]) -> Tuple[int, int, int]:
        """Insert a (not covered) completed code into the set ``nid``.

        Returns ``(new_nid, subsumed, merges)`` where ``subsumed`` is the
        number of existing codes removed because the inserted code is their
        ancestor, and ``merges`` the number of sibling-merge cascade levels
        that fired — exactly the :class:`ContractionStats` deltas the
        nested-dict ``CodeSet`` would have recorded for the same insertion.

        The caller must have ruled out coverage first (:meth:`covers`); the
        recursion assumes it.
        """
        return self._insert(nid, keys, 0)

    def insert_quiet(self, nid: int, keys: Tuple[int, ...]) -> int:
        """Insert without stats; returns ``nid`` unchanged when covered."""
        if self.covers(nid, keys):
            return nid
        return self._insert(nid, keys, 0)[0]

    def _insert(self, nid: int, keys: Tuple[int, ...], i: int) -> Tuple[int, int, int]:
        if i == len(keys):
            # The inserted code's own node: everything below is subsumed.
            if nid == EMPTY:
                return DONE, 0, 0
            return DONE, self._count[nid], 0
        key = keys[i]
        if nid == EMPTY:
            node_keys: Tuple[int, ...] = ()
            node_children: Tuple[int, ...] = ()
            child = EMPTY
            pos = -1
        else:
            node_keys = self._keys[nid]
            node_children = self._children[nid]
            child = EMPTY
            pos = -1
            for j, k in enumerate(node_keys):
                if k == key:
                    child = node_children[j]
                    pos = j
                    break
        new_child, subsumed, merges = self._insert(child, keys, i + 1)
        if new_child == DONE:
            # Sibling-merge probe: both children of this node completed —
            # the pair (and with it everything else under this node, which
            # the completed parent subsumes) collapses into this node.
            sibling = key ^ 1
            for j, k in enumerate(node_keys):
                if k == sibling and node_children[j] == DONE:
                    return DONE, subsumed, merges + 1
        if pos >= 0:
            children = node_children[:pos] + (new_child,) + node_children[pos + 1 :]
            return self._intern_node(node_keys, children), subsumed, merges
        # Insert the new branch keeping the key tuple sorted (canonical).
        at = 0
        for k in node_keys:
            if k > key:
                break
            at += 1
        new_keys = node_keys[:at] + (key,) + node_keys[at:]
        children = node_children[:at] + (new_child,) + node_children[at:]
        return self._intern_node(new_keys, children), subsumed, merges

    # ------------------------------------------------------------------ #
    # Merge and diff (memoised on id pairs)
    # ------------------------------------------------------------------ #
    def merge(self, a: int, b: int) -> int:
        """Node id of the contracted union of ``a`` and ``b``."""
        if a == b:
            return a
        if a == DONE or b == DONE:
            return DONE
        if a == EMPTY:
            return b
        if b == EMPTY:
            return a
        # Keys are packed into one int (ids stay far below 2**32): cheaper
        # to hash than a tuple, and half the memo's memory.
        probe = (a << 32) | b if a < b else (b << 32) | a
        memo = self._merge_memo
        cached = memo.get(probe)
        if cached is not None:
            return cached
        a_keys = self._keys[a]
        a_children = self._children[a]
        b_keys = self._keys[b]
        b_children = self._children[b]
        # Two-pointer walk over the (sorted) key tuples: output keys stay
        # sorted by construction, so no dict and no final sort.
        keys: List[int] = []
        children: List[int] = []
        i = j = 0
        na = len(a_keys)
        nb = len(b_keys)
        while i < na and j < nb:
            ka = a_keys[i]
            kb = b_keys[j]
            if ka < kb:
                keys.append(ka)
                children.append(a_children[i])
                i += 1
            elif kb < ka:
                keys.append(kb)
                children.append(b_children[j])
                j += 1
            else:
                keys.append(ka)
                children.append(self.merge(a_children[i], b_children[j]))
                i += 1
                j += 1
        if i < na:
            keys.extend(a_keys[i:])
            children.extend(a_children[i:])
        elif j < nb:
            keys.extend(b_keys[j:])
            children.extend(b_children[j:])
        # Contraction after the pointwise merge: a sibling pair that became
        # DONE+DONE collapses this whole node (the completed parent subsumes
        # every other branch).  Siblings differ only in the low bit, so they
        # are adjacent in the sorted key order.
        result = None
        for idx in range(1, len(keys)):
            if (
                children[idx] == DONE
                and children[idx - 1] == DONE
                and keys[idx] == (keys[idx - 1] | 1)
            ):
                result = DONE
                break
        if result is None:
            result = self._intern_node(tuple(keys), tuple(children))
        if len(memo) >= _MERGE_MEMO_MAX:
            memo.clear()
        memo[probe] = result
        return result

    def diff(self, a: int, b: int) -> FrozenSet[PathCode]:
        """The codes of ``a`` not covered by ``b`` (the delta to ship)."""
        return self.codes_at(self._diff_node(a, b))

    def _diff_node(self, a: int, b: int) -> int:
        if b == DONE or a == EMPTY or a == b:
            return EMPTY
        if b == EMPTY or a == DONE:
            # ``b`` covers nothing here; ``a == DONE`` keeps its root code
            # (``b != DONE`` was established above).
            return a
        probe = (a << 32) | b
        memo = self._diff_memo
        cached = memo.get(probe)
        if cached is not None:
            return cached
        a_keys = self._keys[a]
        a_children = self._children[a]
        kept_keys: List[int] = []
        kept_children: List[int] = []
        for i, key in enumerate(a_keys):
            d = self._diff_node(a_children[i], self.child(b, key))
            if d != EMPTY:
                kept_keys.append(key)
                kept_children.append(d)
        if not kept_keys:
            result = EMPTY
        else:
            result = self._intern_node(tuple(kept_keys), tuple(kept_children))
        if len(memo) >= _DIFF_MEMO_MAX:
            memo.clear()
        memo[probe] = result
        return result

    # ------------------------------------------------------------------ #
    # Shared derived views
    # ------------------------------------------------------------------ #
    def _path_code(self, path: Tuple[int, ...]) -> PathCode:
        """Interned :class:`PathCode` for a packed key path."""
        code = self._path_codes.get(path)
        if code is None:
            code = PathCode._make(_keys_to_pairs(path))
            self._path_codes[path] = code
        return code

    def _reset_codes_ids(self) -> None:
        memo = self._codes_memo
        self._codes_ids = {
            id(memo[DONE]): (memo[DONE], DONE),
            id(_EMPTY_FROZENSET): (_EMPTY_FROZENSET, EMPTY),
        }

    def codes_at(self, nid: int) -> FrozenSet[PathCode]:
        """Contracted codes of ``nid`` as one shared frozenset per id."""
        memo = self._codes_memo
        cached = memo.get(nid)
        if cached is not None:
            return cached
        # Inline trie walk (the generator equivalent resumes once per node,
        # which dominates for the small post-contraction tables this
        # materialises tens of thousands of times per run).
        node_keys = self._keys
        node_children = self._children
        path_codes = self._path_codes
        make = PathCode._make
        out: List[PathCode] = []
        stack: List[Tuple[int, Tuple[int, ...]]] = [(nid, ())]
        while stack:
            node, path = stack.pop()
            keys = node_keys[node]
            children = node_children[node]
            for i in range(len(keys)):
                child = children[i]
                p = path + (keys[i],)
                if child == DONE:
                    code = path_codes.get(p)
                    if code is None:
                        code = make(_keys_to_pairs(p))
                        path_codes[p] = code
                    out.append(code)
                else:
                    stack.append((child, p))
        result = frozenset(out)
        if len(memo) >= _CODES_MEMO_MAX:
            # Keep the sentinels (their reverse-map entries must stay valid).
            memo.clear()
            memo[DONE] = frozenset({ROOT})
            memo[EMPTY] = _EMPTY_FROZENSET
            self._reset_codes_ids()
        memo[nid] = result
        self._codes_ids[id(result)] = (result, nid)
        return result

    def node_for_codes(self, codes: FrozenSet[PathCode]) -> Optional[int]:
        """Node id whose codes frozenset is this very object.

        Identity-based (``id()``): only frozensets handed out by this arena
        or previously registered via :meth:`node_from_codes` are recognised.
        A miss means "unknown", never "not equal" — callers fall back to
        building the node (:meth:`node_from_codes`) or per-code merging.
        """
        entry = self._codes_ids.get(id(codes))
        return None if entry is None else entry[1]

    def node_from_codes(self, codes: FrozenSet[PathCode]) -> int:
        """Node id for an arbitrary codes frozenset, registered by identity.

        The first sight of a frozenset pays one per-code build; the result
        is recorded against the *object* so every later holder of the same
        frozenset — e.g. each receiver of one fanned-out delta message —
        resolves it in O(1).
        """
        entry = self._codes_ids.get(id(codes))
        if entry is not None:
            return entry[1]
        paths = []
        for code in codes:
            try:
                paths.append(code._keys)
            except AttributeError:
                paths.append(code._key_path())
        nid = self.node_from_keys(paths)
        ids = self._codes_ids
        if len(ids) >= _CODES_MEMO_MAX:
            self._reset_codes_ids()
            ids = self._codes_ids
        ids[id(codes)] = (codes, nid)
        return nid

    def digest(self, nid: int) -> int:
        """Order-independent table digest of ``nid`` — an O(1) array read.

        Matches ``work_report.table_digest`` of :meth:`codes_at` exactly:
        the per-node structural digests are folded bottom-up at intern time,
        so no table state ever pays an O(table) digest walk.
        """
        if nid == EMPTY:
            return 0
        return (self._digest[nid] ^ (self._count[nid] * _FNV64_PRIME)) & _MASK64

    def frontier_at(self, nid: int) -> FrozenSet[PathCode]:
        """Missing frontier (the paper's complement) of ``nid``, shared."""
        if nid == DONE:
            return _EMPTY_FROZENSET
        if nid == EMPTY:
            return _ROOT_FRONTIER
        memo = self._frontier_memo
        cached = memo.get(nid)
        if cached is not None:
            return cached
        make = self._path_code
        node_keys = self._keys
        node_children = self._children
        frontier: List[PathCode] = []
        stack: List[Tuple[int, Tuple[int, ...]]] = [(nid, ())]
        while stack:
            node, path = stack.pop()
            keys = node_keys[node]
            children = node_children[node]
            for i, key in enumerate(keys):
                sibling = key ^ 1
                present = False
                for k in keys:
                    if k == sibling:
                        present = True
                        break
                if not present:
                    frontier.append(make(path + (sibling,)))
                child = children[i]
                if child != DONE:
                    stack.append((child, path + (key,)))
        result = frozenset(frontier)
        if len(memo) >= _FRONTIER_MEMO_MAX:
            memo.clear()
        memo[nid] = result
        return result

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #
    def node_of(self, codes: "CodeSet") -> Optional[int]:
        """Current node id of an arena-backed set, ``None`` otherwise."""
        if isinstance(codes, ArenaCodeSet):
            if codes._arena is self:
                return codes._nid
            return None
        if isinstance(codes, CodeSet) and codes._arena is self:
            return codes._arena_sync()
        return None

    def node_from_keys(self, key_paths) -> int:
        """Build (or find) the node for an iterable of packed-key paths.

        The paths are laid out as one scratch nested-dict trie and interned
        bottom-up with contraction, so every node of the result is interned
        exactly once — no per-path spine rebuilds.  The input need not be
        contracted: completed marks subsume their subtrees and completed
        sibling pairs collapse upward during the fold, yielding the same
        canonical form sequential insertion would.
        """
        root: Dict = {}
        any_path = False
        for keys in key_paths:
            any_path = True
            node = root
            for k in keys:
                nxt = node.get(k)
                if nxt is None:
                    nxt = {}
                    node[k] = nxt
                node = nxt
            node[-1] = True  # completed here (packed keys are >= 0)
        if not any_path:
            return EMPTY
        return self._intern_tree(root)

    def _intern_tree(self, node: Dict) -> int:
        """Intern a scratch nested-dict trie bottom-up, contracting."""
        if -1 in node:
            return DONE
        keys: List[int] = []
        children: List[int] = []
        prev_done_key = -2
        for k in sorted(node):
            child = self._intern_tree(node[k])
            if child == DONE:
                # Sibling keys differ only in the low bit, so a completed
                # pair is adjacent in sorted order; the pair collapses into
                # the (completed) parent, which subsumes everything else.
                if prev_done_key == (k ^ 1):
                    return DONE
                prev_done_key = k
            keys.append(k)
            children.append(child)
        return self._intern_node(tuple(keys), tuple(children))


class ArenaCodeSet(CodeSet):
    """A ``CodeSet`` whose storage is a shared :class:`TrieArena` node id.

    Logical behaviour — membership, coverage, contraction, digests,
    frontiers, the ``add`` return value and the per-``add``
    :class:`ContractionStats` deltas — is pinned to the nested-dict
    ``CodeSet`` by the seeded property suite.  What changes is the cost
    model: ``copy``/``frozen_view`` are O(1), ``update``/``merge``/
    ``adopt_from`` are O(pointer) when the input is recognisably
    arena-backed (an arena ``codes()`` frozenset or another set sharing
    this arena), and every derived view (``codes``, digests via
    :meth:`TrieArena.digest`, ``missing_frontier``) is shared group-wide
    per distinct table state.

    One intentional divergence: the bulk fast paths (``update``/``merge``/
    ``adopt_from`` taking the O(pointer) route) do not decompose into
    per-code :class:`ContractionStats`; only :meth:`add` maintains exact
    stats.  Production users of this class (peer gossip views) never read
    stats — the simulation's contraction-time charging reads the *owner
    table*'s stats, and owner tables stay nested-dict ``CodeSet``\\ s.
    """

    __slots__ = ("_nid",)

    def __init__(self, arena: TrieArena, codes=None) -> None:
        # Deliberately no super().__init__(): the nested-dict slots stay
        # unset; every inherited method that would touch them is overridden.
        self._arena = arena
        self._anid = EMPTY  # keeps TrieArena.node_of's CodeSet branch honest
        self._nid = EMPTY
        self.stats = ContractionStats()
        if codes:
            self.update(codes)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, code: PathCode) -> bool:
        try:
            keys = code._keys
        except AttributeError:
            keys = code._key_path()
        return self._arena.contains(self._nid, keys)

    def __len__(self) -> int:
        return self._arena.count(self._nid)

    def __bool__(self) -> bool:
        return self._arena.count(self._nid) > 0

    def __iter__(self) -> Iterator[PathCode]:
        return iter(self.codes())

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return f"ArenaCodeSet(nid={self._nid}, n={len(self)})"

    def _iter_completed(self) -> Iterator[PathCode]:
        return iter(self.codes())

    def _iter_completed_keys(self) -> Iterator[Tuple[int, ...]]:
        return self._arena.iter_completed_keys(self._nid)

    def codes(self) -> frozenset:
        return self._arena.codes_at(self._nid)

    def covers(self, code: PathCode) -> bool:
        try:
            keys = code._keys
        except AttributeError:
            keys = code._key_path()
        return self._arena.covers(self._nid, keys)

    def is_complete(self) -> bool:
        return self._nid == DONE

    def wire_size(self) -> int:
        return self._arena.wire_size(self._nid)

    def max_depth(self) -> int:
        return self._arena.max_depth(self._nid)

    def structural_digest(self) -> int:
        return self._arena.digest(self._nid)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def _set_nid(self, nid: int) -> None:
        self._nid = nid
        self._anid = nid

    def _arena_sync(self) -> int:
        return self._nid  # storage IS the arena node; nothing is batched

    def add(self, code: Union[PathCode, Tuple[Branch, ...]]) -> bool:
        try:
            keys = code._keys
        except AttributeError:
            if type(code) is PathCode:
                keys = code._key_path()
            else:  # raw key tuple from a trie-to-trie fast path
                keys = code
        stats = self.stats
        stats.calls += 1
        arena = self._arena
        nid = self._nid
        if arena.covers(nid, keys):
            return False
        new_nid, subsumed, merges = arena.insert(nid, keys)
        stats.insertions += 1
        stats.subsumptions += subsumed
        stats.merges += merges
        self._set_nid(new_nid)
        return True

    def update(self, codes) -> bool:
        if type(codes) is frozenset:
            # Resolve (building and registering on first sight) the node of
            # the whole frozenset, then fold it in with one memoised merge.
            return self.merge_nid(self._arena.node_from_codes(codes))
        add = self.add
        changed = False
        for code in sorted(codes, key=len):
            if add(code):
                changed = True
        return changed

    def merge_nid(self, nid: int) -> bool:
        """Fold an arena node id into this set — O(pointer), memoised."""
        merged = self._arena.merge(self._nid, nid)
        if merged == self._nid:
            return False
        self._set_nid(merged)
        return True

    def merge(self, other: "CodeSet") -> bool:
        onid = self._arena.node_of(other)
        if onid is not None:
            merged = self._arena.merge(self._nid, onid)
            if merged == self._nid:
                return False
            self._set_nid(merged)
            return True
        add = self.add
        changed = False
        for keys in sorted(other._iter_completed_keys(), key=len):
            if add(keys):
                changed = True
        return changed

    def clear(self) -> None:
        self._set_nid(EMPTY)

    def copy(self) -> "ArenaCodeSet":
        """O(1): the clone shares the arena and snapshots the node id."""
        clone = ArenaCodeSet(self._arena)
        clone._set_nid(self._nid)
        return clone

    def frozen_view(self) -> "ArenaCodeSet":
        """O(1) snapshot — arena nodes are immutable, the id *is* the view."""
        return self.copy()

    def adopt_from(self, other: "CodeSet", codes=None) -> bool:
        if self._nid != EMPTY:
            raise ValueError("adopt_from requires an empty CodeSet")
        onid = self._arena.node_of(other)
        if onid is None:
            if not len(other) and not other.is_complete():
                return False
            onid = self._arena.node_from_keys(other._iter_completed_keys())
        if onid == EMPTY:
            return False
        self._set_nid(onid)
        return True

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def missing_frontier(self) -> frozenset:
        return self._arena.frontier_at(self._nid)

    def missing_frontier_reference(self):
        return set(self._arena.frontier_at(self._nid))

    def uncovered_siblings(self):
        result = set()
        for code in self.codes():
            sibling = code.sibling()
            if sibling is not None and not self.covers(sibling):
                result.add(sibling)
        return result
