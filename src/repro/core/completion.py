"""Completion tracking: the per-process bookkeeping of completed subproblems.

Every process participating in the distributed B&B computation keeps two data
structures (Section 5.3.2 of the paper):

* a **list of new locally completed subproblems** — codes completed since the
  last work report was sent; and
* a **table of completed problems it knows about** — everything it completed
  itself plus everything learned from received work reports and table gossip.

:class:`CompletionTracker` bundles both, implements the report-emission policy
(send after ``c`` new codes or after a staleness timeout), merges incoming
reports into the table with contraction, and exposes the two queries the rest
of the algorithm needs: "is the whole tree complete?" (termination) and "what
is still missing?" (recovery, via :mod:`repro.core.complement`).

A subtlety worth spelling out: the paper distinguishes *solved* (the branching
operation has been performed) from *completed* (solved and either a leaf or
both children completed).  The tracker works purely at the *completed* level;
propagating completion from children to parents falls out of the contraction
rule "two completed siblings collapse into their parent".  A worker therefore
only ever registers **leaves** of its local search (fathomed, pruned or
infeasible nodes) as completed, and interior nodes become completed implicitly
when both of their subtrees have.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from .codeset import CodeSet
from .complement import SelectionStrategy, complement_frontier, select_recovery_candidate
from .encoding import PathCode
from .work_report import BestSolution, CompletedTableSnapshot, WorkReport

__all__ = ["CompletionTracker"]


class CompletionTracker:
    """Tracks locally and globally known completed subproblems for one process.

    Parameters
    ----------
    owner:
        Identifier of the owning process (stamped on outgoing reports).
    report_threshold:
        The paper's ``c``: number of newly completed codes that triggers a
        work report.
    report_staleness:
        Maximum simulated time the new-codes list may sit unreported before a
        report is sent anyway ("or the list has not been updated for a long
        time").  ``None`` disables the staleness rule.
    """

    def __init__(
        self,
        owner: str,
        *,
        report_threshold: int = 8,
        report_staleness: Optional[float] = None,
    ) -> None:
        if report_threshold < 1:
            raise ValueError("report_threshold must be at least 1")
        self.owner = owner
        self.report_threshold = report_threshold
        self.report_staleness = report_staleness

        #: Contracted table of every completed code known to this process.
        self.table = CodeSet()
        #: Codes completed locally since the last report (not yet compressed).
        self._new_local: List[PathCode] = []
        #: Simulated time of the last report emission (or of construction).
        self._last_report_time: float = 0.0
        #: Simulated time the new-codes list last changed.
        self._last_local_update: float = 0.0
        #: Sequence number for outgoing reports.
        self._sequence = 0
        #: The last code completed locally (recovery locality hint).
        self.last_completed: Optional[PathCode] = None
        #: Number of codes learned from remote reports that were already known
        #: (redundant information received) — feeds the storage/communication
        #: accounting in the benchmarks.
        self.redundant_codes_received = 0
        #: Total codes received from remote reports.
        self.codes_received = 0
        #: Total completed codes registered locally.
        self.codes_completed_locally = 0
        #: Encoded bytes of completion information produced by local work.
        self.bytes_stored_local = 0
        #: Encoded bytes of completion information learned from other members
        #: (replicated knowledge — the paper's "redundant" storage).
        self.bytes_stored_remote = 0
        #: Incrementally maintained wire size of the pending (unreported)
        #: codes, so :meth:`storage_bytes` never re-sums the list.
        self._pending_wire = 0

    # ------------------------------------------------------------------ #
    # Local completion
    # ------------------------------------------------------------------ #
    def record_completed(self, code: PathCode, *, now: float = 0.0) -> None:
        """Register a subproblem completed by the local B&B loop."""
        self.codes_completed_locally += 1
        self.last_completed = code
        self._new_local.append(code)
        self._last_local_update = now
        wire = code.wire_size()
        self.bytes_stored_local += wire
        self._pending_wire += wire
        self.table.add(code)

    def record_completed_many(self, codes: Iterable[PathCode], *, now: float = 0.0) -> None:
        """Register several locally completed subproblems at once."""
        for code in codes:
            self.record_completed(code, now=now)

    # ------------------------------------------------------------------ #
    # Report emission
    # ------------------------------------------------------------------ #
    @property
    def pending_report_size(self) -> int:
        """Number of completed codes waiting to be reported."""
        return len(self._new_local)

    def should_send_report(self, now: float) -> bool:
        """Apply the paper's emission rule: threshold ``c`` or staleness."""
        if len(self._new_local) >= self.report_threshold:
            return True
        if (
            self.report_staleness is not None
            and self._new_local
            and (now - self._last_report_time) >= self.report_staleness
        ):
            return True
        return False

    def build_report(
        self,
        *,
        now: float = 0.0,
        best: Optional[BestSolution] = None,
        compress: bool = True,
        compress_against_table: bool = False,
    ) -> WorkReport:
        """Compress the pending codes into a work report and clear the list.

        ``compress_against_table=False`` (the default) reproduces the paper's
        behaviour: the outgoing list is compressed against itself only.  The
        ablation benchmarks flip ``compress_against_table`` to measure how
        much additional suppression the table provides, and set
        ``compress=False`` to measure the cost of not compressing at all.
        """
        self._sequence += 1
        if compress:
            report = WorkReport.build(
                self.owner,
                self._new_local,
                best=best,
                known_table=None if not compress_against_table else self.table,
                sequence=self._sequence,
            )
        else:
            report = WorkReport(
                sender=self.owner,
                codes=frozenset(self._new_local),
                best=best if best is not None else BestSolution(),
                sequence=self._sequence,
            )
        self._new_local.clear()
        self._pending_wire = 0
        self._last_report_time = now
        self._last_local_update = now
        return report

    def build_table_snapshot(self, *, best: Optional[BestSolution] = None) -> CompletedTableSnapshot:
        """Snapshot the whole contracted table for occasional table gossip."""
        return CompletedTableSnapshot.from_table(self.owner, self.table, best=best)

    # ------------------------------------------------------------------ #
    # Remote information
    # ------------------------------------------------------------------ #
    def merge_report(self, report: WorkReport) -> bool:
        """Merge a received work report (or table snapshot) into the table.

        Returns ``True`` when the table's logical content changed.  The
        counters feeding the redundant-communication statistics are updated as
        a side effect.
        """
        changed = False
        table_add = self.table.add
        for code in report.codes:
            self.codes_received += 1
            # A single trie walk does both jobs: ``add`` returns False exactly
            # when the code was already covered (the redundant case).
            if table_add(code):
                self.bytes_stored_remote += code.wire_size()
                changed = True
            else:
                self.redundant_codes_received += 1
        return changed

    def merge_snapshot(self, snapshot: CompletedTableSnapshot) -> bool:
        """Merge a received full-table snapshot."""
        return self.merge_report(snapshot.as_report())

    # ------------------------------------------------------------------ #
    # Queries used by recovery and termination
    # ------------------------------------------------------------------ #
    def is_tree_complete(self) -> bool:
        """True when the contracted table has collapsed to the root code."""
        return self.table.is_complete()

    def missing_subtrees(self) -> Set[PathCode]:
        """Minimal set of subtrees not known to be completed."""
        return complement_frontier(self.table)

    def choose_recovery_problem(
        self,
        *,
        strategy: SelectionStrategy = SelectionStrategy.DEEPEST,
        rng=None,
        exclude: Optional[Iterable[PathCode]] = None,
    ) -> Optional[PathCode]:
        """Pick an uncompleted subtree to regenerate (``None`` when complete)."""
        return select_recovery_candidate(
            self.table,
            strategy=strategy,
            last_completed=self.last_completed,
            rng=rng,
            exclude=exclude,
        )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def storage_bytes(self) -> int:
        """Estimated bytes of completion state held by this process.

        Counts both the contracted table and the pending-report list, matching
        the paper's "storage space" metric which measures the replicated
        completion information across the system.  Both terms are O(1)
        counter reads (the table maintains its wire size incrementally).
        """
        return self.table.wire_size() + self._pending_wire

    def remote_information_share(self) -> float:
        """Fraction of stored completion knowledge that came from other members.

        Used to estimate the "redundant" (replicated) portion of the storage
        footprint reported in the paper's Table 1.
        """
        total = self.bytes_stored_local + self.bytes_stored_remote
        if total == 0:
            return 0.0
        return self.bytes_stored_remote / total

    def __repr__(self) -> str:  # pragma: no cover - repr formatting only
        return (
            f"CompletionTracker(owner={self.owner!r}, table={len(self.table)} codes, "
            f"pending={len(self._new_local)}, complete={self.is_tree_complete()})"
        )
